"""Figure 12: effectiveness of adaptive key partitioning.

Synthetic streams whose keys follow Normal(mu = domain/2, sigma), with
sigma swept from 10 to 5000 (paper Section VI-C1): small sigma means nearly
all traffic lands on one indexing server under a static uniform partition.

(a) Insertion throughput: per-server load shares are computed by running
    the *real* partitioner (uniform vs. frequency-fitted) against the
    observed key histogram; the shares feed the shared pipeline model at
    the paper's 12-node topology -- the most-loaded server bounds system
    throughput.
(b) Query latency: a real (scaled-down) Waterwheel deployment ingests the
    stream with the balancer enabled vs. disabled, then answers queries
    with 0.1 key selectivity over the recent 60 seconds.  Key ranges cover
    10% of the observed key *mass* (quantile ranges), since a fixed slice
    of the raw domain would span the whole normal bulk at small sigma and
    no partitioning could differentiate.  Balanced partitions produce
    narrower data regions, so more chunks are pruned per query.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro import Waterwheel, small_config
from repro.core.partitioning import KeyPartition, partition_loads
from repro.simulation import CostModel, PipelineTopology, system_insertion_rate
from repro.workloads import NormalKeyGenerator

KEY_DOMAIN = 1 << 16
SIGMAS = (10, 100, 1000, 5000)
TUPLE_BYTES = 30
N_SAMPLE = 60_000  # tuples used to build the observed key histogram
N_SYSTEM = 30_000  # tuples ingested by the real system for Figure 12(b)
N_QUERIES = 60


def _exact_histogram(sigma: int, n: int = N_SAMPLE):
    counts = [0.0] * KEY_DOMAIN
    gen = NormalKeyGenerator(0, KEY_DOMAIN, sigma=sigma, seed=sigma)
    for t in gen.generate(n):
        counts[t.key] += 1.0
    return counts


def run_fig12a():
    """Rows: (sigma, adaptive tuples/s, non-adaptive tuples/s)."""
    costs = CostModel()
    topology = PipelineTopology(n_nodes=12)
    n_servers = topology.n_indexing
    rows = []
    for sigma in SIGMAS:
        histogram = _exact_histogram(sigma)
        uniform = KeyPartition.uniform(0, KEY_DOMAIN, n_servers)
        fitted = KeyPartition.from_frequencies(0, KEY_DOMAIN, n_servers, histogram)
        rates = {}
        for name, partition in (("adaptive", fitted), ("static", uniform)):
            loads = partition_loads(partition, histogram)
            # Pad to the full server count (servers beyond the partition's
            # intervals receive nothing).
            shares = loads + [0.0] * (n_servers - len(loads))
            rates[name] = system_insertion_rate(
                costs, topology, TUPLE_BYTES, 16 << 20, shares=shares
            )
        rows.append((sigma, rates["adaptive"], rates["static"]))
    return rows


def run_fig12b():
    """Rows: (sigma, adaptive latency ms, non-adaptive latency ms)."""
    import random as _random

    rows = []
    for sigma in SIGMAS:
        latencies = {}
        for name, adaptive in (("adaptive", True), ("static", False)):
            cfg = small_config(
                key_lo=0,
                key_hi=KEY_DOMAIN,
                n_nodes=4,
                chunk_bytes=32_768,
                tuple_size=TUPLE_BYTES,
                frequency_buckets=1024,
            )
            ww = Waterwheel(cfg, adaptive_partitioning=adaptive)
            gen = NormalKeyGenerator(
                0, KEY_DOMAIN, sigma=sigma, records_per_second=1000.0, seed=sigma
            )
            data = gen.records(N_SYSTEM)
            for t in data:
                ww.insert(t)
            now = data[-1].ts
            # Quantile-based key ranges: each covers 10% of the key mass.
            sorted_keys = sorted(t.key for t in data)
            rng = _random.Random(sigma)
            samples = []
            for _ in range(N_QUERIES):
                q = rng.uniform(0.0, 0.9)
                k_lo = sorted_keys[int(q * len(sorted_keys))]
                k_hi = sorted_keys[min(len(sorted_keys) - 1, int((q + 0.1) * len(sorted_keys)))]
                res = ww.query(k_lo, max(k_lo, k_hi), max(0.0, now - 60.0), now)
                samples.append(res.latency * 1000)
            latencies[name] = mean(samples)
        rows.append((sigma, latencies["adaptive"], latencies["static"]))
    return rows


def main():
    print_table(
        "Figure 12(a): insertion throughput vs key skew (12 nodes)",
        ["sigma", "adaptive (tuples/s)", "static (tuples/s)"],
        run_fig12a(),
    )
    print_table(
        "Figure 12(b): query latency vs key skew",
        ["sigma", "adaptive (ms)", "static (ms)"],
        run_fig12b(),
    )


def test_fig12a_throughput(benchmark):
    rows = benchmark.pedantic(run_fig12a, rounds=1, iterations=1)
    for sigma, adaptive, static in rows:
        assert adaptive > static, sigma
    # Static partitioning recovers as the distribution widens; adaptive
    # stays near the balanced optimum throughout.
    statics = [static for _s, _a, static in rows]
    assert statics[-1] > statics[0]
    adaptives = [a for _s, a, _st in rows]
    assert min(adaptives) > 0.5 * max(adaptives)


def test_fig12b_query_latency(benchmark):
    rows = benchmark.pedantic(run_fig12b, rounds=1, iterations=1)
    wins = sum(1 for _sigma, adaptive, static in rows if adaptive < static)
    assert wins >= len(rows) - 1  # adaptive at least ties almost everywhere


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
