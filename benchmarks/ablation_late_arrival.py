"""Ablation: the late-arrival visibility window Delta-t (Section IV-D).

The coordinator decomposes queries from region metadata that is *not*
refreshed on every tuple: an indexing server's advertised left temporal
boundary can be stale by the time late tuples arrive.  Waterwheel widens
each advertised region by Delta-t so tuples up to Delta-t late stay
visible without per-tuple metadata updates.

This harness replays a stream with injected lateness (up to ``MAX_DELAY``
seconds), snapshots each indexing server's advertised region as of a
metadata epoch (emulating staleness), lets late tuples keep arriving, and
then checks -- for each Delta-t -- whether recent-window queries decomposed
against the stale snapshot would still consult the servers holding the
late tuples.  Completeness climbs to 100% once Delta-t covers the real
lateness; larger Delta-t costs more fresh-data subqueries per query.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro.core.model import KeyInterval, Region, TimeInterval
from repro.workloads import uniform_records, with_lateness

DELTAS = (0.0, 0.5, 1.0, 2.0, 4.0)
MAX_DELAY = 3.0
N_TUPLES = 20_000
WINDOW = 1.0  # short windows around the event time


def run_experiment():
    """Rows: (delta_t, completeness %, extra consults per query).

    Simplified single-server model of the decomposition decision: the
    server advertises its in-memory region when a flush epoch ends; the
    coordinator widens it by Delta-t.  A late tuple is *visible* to a
    recent-window query iff the widened advertised region overlaps the
    query window at the moment the tuple is actually in memory.
    """
    arrivals = list(
        with_lateness(
            uniform_records(N_TUPLES, records_per_second=1000.0, seed=81),
            late_fraction=0.05,
            max_delay=MAX_DELAY,
            seed=82,
        )
    )
    rows = []
    for delta in DELTAS:
        missed = 0
        late_total = 0
        consults = []
        epoch_start = None  # advertised left boundary (stale metadata)
        running_max = 0.0
        for i, t in enumerate(arrivals):
            if epoch_start is None:
                epoch_start = t.ts
            running_max = max(running_max, t.ts)
            # Every 2000 tuples a flush ends the epoch: fresh metadata.
            if i % 2000 == 1999:
                epoch_start = None
                continue
            if t.ts < running_max:  # a late tuple just arrived
                late_total += 1
                advertised = Region(
                    KeyInterval(0, 1 << 20),
                    TimeInterval(epoch_start - delta, float("inf")),
                )
                # A query for the short window *around the tuple's event
                # time* -- which should return it -- consults the server
                # only if the widened advertised region overlaps it.
                query = Region(
                    KeyInterval(0, 1 << 20),
                    TimeInterval(max(0.0, t.ts - WINDOW / 2), t.ts + WINDOW / 2),
                )
                if not advertised.overlaps(query):
                    missed += 1
            # Cost proxy: how much earlier than the true boundary the
            # widened region makes the server answer queries.
            consults.append(delta)
        completeness = 100.0 * (1.0 - missed / max(1, late_total))
        rows.append((delta, completeness, mean(consults)))
    return rows


def main():
    print_table(
        "Ablation: late-arrival visibility window Delta-t",
        ["delta_t (s)", "late-tuple completeness %", "extra window (s)"],
        run_experiment(),
    )


def test_ablation_late_arrival(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    completeness = [c for _d, c, _e in rows]
    # Completeness is monotone in Delta-t ...
    assert completeness == sorted(completeness)
    # ... reaches 100% once Delta-t covers the injected lateness ...
    by_delta = {d: c for d, c, _e in rows}
    assert by_delta[4.0] == 100.0
    # ... and Delta-t = 0 misses a visible share of late tuples.
    assert by_delta[0.0] < 99.0


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
