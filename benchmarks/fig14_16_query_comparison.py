"""Figures 14 and 16: query latency vs. HBase-like and Druid-like stores.

The same stream is ingested into all three systems (Waterwheel for real;
the baselines into their own real storage structures), then queries with
four temporal windows (recent 5 s / 60 s / 5 min, historic 5 min) and key
selectivity {0.01, 0.05, 0.1} run against each; latencies are simulated
seconds from the shared cost model.  Figure 14 uses the Network-like
workload, Figure 16 the T-Drive-like one.

Paper's shapes reproduced:
* Waterwheel is fastest everywhere (it prunes on *both* domains);
* HBase's latency grows with key selectivity (it scans the whole key range
  and post-filters on time), and the gap to Waterwheel widens;
* Druid's latency is flat across key selectivities but high (it scans the
  whole time range and post-filters on key).
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro import Waterwheel, small_config
from repro.baselines import DruidLike, HBaseLike
from repro.workloads import (
    TEMPORAL_MODES,
    NetworkGenerator,
    QueryGenerator,
    TDriveGenerator,
)

N_TUPLES = 60_000
N_QUERIES = 25
SELECTIVITIES = (0.01, 0.05, 0.1)


def _build_systems(dataset: str, transport=None):
    if dataset == "Network":
        gen = NetworkGenerator(records_per_second=100.0, seed=31)
        key_lo, key_hi = gen.key_domain
        tuple_size = 50
    else:
        gen = TDriveGenerator(n_taxis=300, report_interval=3.0, seed=31)
        key_lo, key_hi = gen.key_domain
        tuple_size = 36
    data = gen.records(N_TUPLES)
    now = max(t.ts for t in data)

    ww = Waterwheel(
        small_config(
            key_lo=key_lo,
            key_hi=key_hi,
            n_nodes=4,
            chunk_bytes=128 * 1024,
            tuple_size=tuple_size,
            sketch_granularity=max(1.0, now / 600.0),
        ),
        transport=transport,
    )
    ww.insert_many(data)

    hbase = HBaseLike(key_lo, key_hi, n_regions=8, memtable_bytes=128 * 1024)
    hbase.insert_many(data)

    druid = DruidLike(segment_duration=max(10.0, now / 40.0), n_historicals=8)
    druid.insert_many(data)
    return ww, hbase, druid, key_lo, key_hi, now


def run_experiment(dataset: str, transport=None):
    """Rows: (temporal mode, key selectivity, ww ms, hbase ms, druid ms)."""
    ww, hbase, druid, key_lo, key_hi, now = _build_systems(dataset, transport)
    qgen = QueryGenerator(key_lo, key_hi, seed=37)
    rows = []
    for mode in TEMPORAL_MODES:
        for selectivity in SELECTIVITIES:
            specs = qgen.batch(N_QUERIES, selectivity, mode, now=now)
            ww_lat, hb_lat, dr_lat = [], [], []
            for s in specs:
                ww_res = ww.query(s.key_lo, s.key_hi, s.t_lo, s.t_hi)
                hb_res = hbase.query(s.key_lo, s.key_hi, s.t_lo, s.t_hi)
                dr_res = druid.query(s.key_lo, s.key_hi, s.t_lo, s.t_hi)
                # All three systems must agree on the result set.
                reference = sorted((t.key, t.ts) for t in hb_res.tuples)
                assert sorted((t.key, t.ts) for t in ww_res.tuples) == reference
                assert sorted((t.key, t.ts) for t in dr_res.tuples) == reference
                ww_lat.append(ww_res.latency * 1000)
                hb_lat.append(hb_res.latency * 1000)
                dr_lat.append(dr_res.latency * 1000)
            rows.append(
                (mode, selectivity, mean(ww_lat), mean(hb_lat), mean(dr_lat))
            )
    return rows


def _check_shapes(rows):
    for mode, selectivity, ww_ms, hb_ms, dr_ms in rows:
        # Waterwheel is fastest in every cell.
        assert ww_ms < hb_ms, (mode, selectivity)
        assert ww_ms < dr_ms, (mode, selectivity)
    # HBase latency grows with key selectivity (per temporal mode) ...
    for mode in TEMPORAL_MODES:
        series = sorted(
            (sel, hb) for m, sel, _ww, hb, _dr in rows if m == mode
        )
        assert series[-1][1] > series[0][1], mode
    # ... while Druid's stays roughly flat across key selectivities.
    for mode in TEMPORAL_MODES:
        druid_series = [dr for m, _sel, _ww, _hb, dr in rows if m == mode]
        assert max(druid_series) < 2.0 * min(druid_series), mode


def main():
    from _common import pop_transport_flag

    transport = pop_transport_flag(sys.argv)
    suffix = f" [{transport} transport]" if transport else ""
    for figure, dataset in (("14", "Network"), ("16", "T-Drive")):
        rows = run_experiment(dataset, transport)
        print_table(
            f"Figure {figure}: query latency comparison on {dataset} (ms)"
            + suffix,
            ["temporal range", "key sel", "waterwheel", "hbase-like", "druid-like"],
            rows,
        )


def test_fig14_network_query_comparison(benchmark):
    rows = benchmark.pedantic(run_experiment, args=("Network",), rounds=1, iterations=1)
    _check_shapes(rows)


def test_fig16_tdrive_query_comparison(benchmark):
    rows = benchmark.pedantic(run_experiment, args=("T-Drive",), rounds=1, iterations=1)
    _check_shapes(rows)


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
