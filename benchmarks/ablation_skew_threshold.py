"""Ablation: the template-update skewness threshold (Eq. 1's trigger).

DESIGN.md calls out the threshold (paper default 0.2) as a design choice:
too eager and the tree spends its time rebuilding; too lazy and leaves
overflow, making inserts and scans linear in the hot leaf.  A drifting key
distribution (mean moving across the domain) is streamed into template
trees with different thresholds; we report update counts, final skewness,
mean insert cost and total maintenance work.
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro.btree import TemplateBTree
from repro.workloads import DriftingKeyGenerator

N_TUPLES = 60_000
THRESHOLDS = (0.05, 0.2, 1.0, 1e9)  # 1e9 = never update
KEY_DOMAIN = 1 << 20


def _two_phase_hotspot():
    """Phase 1: a tight hotspot at 10% of the domain; phase 2: the hotspot
    jumps to 90%.  Without template updates both hotspots pile into a
    handful of leaves of the initial uniform template."""
    half = N_TUPLES // 2
    phase1 = DriftingKeyGenerator(
        key_lo=0, key_hi=KEY_DOMAIN, mu=KEY_DOMAIN * 0.1,
        sigma=KEY_DOMAIN * 0.003, drift_per_record=0.0, seed=71,
    ).records(half)
    phase2 = DriftingKeyGenerator(
        key_lo=0, key_hi=KEY_DOMAIN, mu=KEY_DOMAIN * 0.9,
        sigma=KEY_DOMAIN * 0.003, drift_per_record=0.0, seed=72,
    ).records(half, t0=half * 0.001)
    return phase1 + phase2


def run_experiment():
    """Rows: (threshold, updates, final skew, insert us/op, update ms)."""
    data = _two_phase_hotspot()
    rows = []
    for threshold in THRESHOLDS:
        tree = TemplateBTree(
            0,
            KEY_DOMAIN,
            n_leaves=N_TUPLES // 256,
            fanout=64,
            skew_threshold=threshold,
            check_every=2048,
        )
        started = time.perf_counter()
        for t in data:
            tree.insert(t)
        elapsed = time.perf_counter() - started
        insert_us = (
            (elapsed - tree.stats.template_update_seconds) / N_TUPLES * 1e6
        )
        rows.append(
            (
                threshold if threshold < 1e9 else "never",
                tree.stats.template_updates,
                tree.skewness(),
                insert_us,
                tree.stats.template_update_seconds * 1000,
            )
        )
    return rows


def main():
    print_table(
        "Ablation: skew threshold under a drifting key distribution",
        ["threshold", "updates", "final skew", "insert us/op", "update time (ms)"],
        run_experiment(),
    )


def test_ablation_skew_threshold(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_threshold = {row[0]: row for row in rows}
    # Lower thresholds update more often.
    updates = [row[1] for row in rows]
    assert updates == sorted(updates, reverse=True)
    # Never updating leaves the tree badly skewed under drift ...
    assert by_threshold["never"][2] > 5.0
    # ... while the paper's 0.2 keeps skew bounded.
    assert by_threshold[0.2][2] < 1.0
    # And inserts into the never-updated (overflowing) leaves cost more
    # than inserts under the maintained template.
    assert by_threshold["never"][3] > by_threshold[0.2][3]


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
