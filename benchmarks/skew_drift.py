"""Sustained ingest throughput under a drifting hot key range.

Reproduces the shape of the paper's key-distribution-drift experiment
(Section III-D): throughput with vs. without adaptive repartitioning while
the hot range moves.

A normal key cluster (sigma ~4% of the domain) drifts across 60% of the key
domain over the stream, so *no* static partition stays balanced: whichever
server owns the hot range saturates, and the hot range keeps moving.  The
adaptive balancer re-cuts boundaries as the dispatchers' frequency windows
track the drift; the in-flight data for moved intervals stays on its old
server (the *actual* regions overlap) so queries remain exact mid-migration.

Both deployments (balancer enabled vs. disabled) ingest the same stream
through the real system.  Per measurement window we record the per-server
delivery shares the live partition actually produced, feed them to the
shared pipeline model at the deployment's topology (the most-loaded server
bounds each window), and report the *sustained* rate: total tuples divided
by the summed per-window window/rate times -- so a single unbalanced window
drags the whole run, exactly as a backlogged server would.

Results land under the ``"skew_drift"`` key of BENCH_ingest.json; both
this harness and ``ingest_throughput.py`` merge over the existing file,
so they can be regenerated in either order.

Usage:
    PYTHONPATH=src python benchmarks/skew_drift.py
        [--records N] [--window W] [--out PATH]
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro import Waterwheel, small_config
from repro.simulation import PipelineTopology, system_insertion_rate
from repro.workloads import SYNTHETIC_TUPLE_BYTES, DriftingKeyGenerator

KEY_DOMAIN = 1 << 16
SIGMA = KEY_DOMAIN * 0.04  # hot cluster narrower than one server's quarter
MODEL_CHUNK_BYTES = 16 << 20  # paper default chunk for the throughput model
DEFAULT_RECORDS = 40_000
DEFAULT_WINDOW = 2_000
SEED = 13


def _stream(n_records):
    """Hot cluster starting at 20% of the domain, drifting to 80%."""
    gen = DriftingKeyGenerator(
        key_lo=0,
        key_hi=KEY_DOMAIN,
        mu=KEY_DOMAIN * 0.2,
        sigma=SIGMA,
        drift_per_record=(KEY_DOMAIN * 0.6) / n_records,
        seed=SEED,
    )
    return gen.records(n_records)


def _build(adaptive, window):
    cfg = small_config(
        key_lo=0,
        key_hi=KEY_DOMAIN,
        n_nodes=4,
        chunk_bytes=32_768,
        tuple_size=SYNTHETIC_TUPLE_BYTES,
        frequency_buckets=1024,
        rebalance_check_every=max(1, window // 2),
    )
    return Waterwheel(cfg, adaptive_partitioning=adaptive)


def run_one(data, adaptive, window):
    """Ingest ``data``; returns (sustained tuples/s, window rows, system)."""
    ww = _build(adaptive, window)
    cfg = ww.config
    topology = PipelineTopology(
        n_nodes=cfg.n_nodes,
        dispatchers_per_node=cfg.dispatchers_per_node,
        indexing_per_node=cfg.indexing_per_node,
    )
    rows = []
    elapsed = 0.0
    for start in range(0, len(data), window):
        chunk = data[start : start + window]
        counts = [0.0] * cfg.n_indexing_servers
        for t in chunk:
            # The share the live partition routes to each server *right
            # now* -- rebalances taking effect mid-window show up here.
            counts[ww.shared_partition.current.server_for(t.key)] += 1.0
            ww.insert(t)
        rate = system_insertion_rate(
            cfg.costs,
            topology,
            SYNTHETIC_TUPLE_BYTES,
            MODEL_CHUNK_BYTES,
            shares=counts,
        )
        elapsed += len(chunk) / rate
        rows.append(
            {
                "window": len(rows),
                "max_share": max(counts) / sum(counts),
                "modeled_tuples_per_s": rate,
            }
        )
    return len(data) / elapsed, rows, ww


def run_experiment(n_records=DEFAULT_RECORDS, window=DEFAULT_WINDOW):
    data = _stream(n_records)
    on_rate, on_rows, on = run_one(data, True, window)
    off_rate, off_rows, off = run_one(data, False, window)

    # Equivalence guard: migration must not change what queries see.
    t_hi = data[-1].ts + 1.0
    res_on = on.query(0, KEY_DOMAIN, 0.0, t_hi)
    res_off = off.query(0, KEY_DOMAIN, 0.0, t_hi)
    key_ts = lambda rs: sorted((t.key, t.ts, t.payload) for t in rs.tuples)
    if key_ts(res_on) != key_ts(res_off) or len(res_on.tuples) != len(data):
        raise AssertionError("rebalancing changed query results")

    return {
        "records": n_records,
        "window": window,
        "sigma": SIGMA,
        "rebalances": on.balancer.rebalance_count,
        "migrated_tuples": on.balancer.migrated_tuples,
        "enabled_tuples_per_s": on_rate,
        "disabled_tuples_per_s": off_rate,
        "speedup": on_rate / off_rate,
        "enabled_windows": on_rows,
        "disabled_windows": off_rows,
    }


def _parse_args(argv):
    records = DEFAULT_RECORDS
    window = DEFAULT_WINDOW
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_ingest.json",
    )
    it = iter(argv)
    for arg in it:
        if arg == "--records":
            records = int(next(it))
        elif arg == "--window":
            window = int(next(it))
        elif arg == "--out":
            out = next(it)
        else:
            raise SystemExit(f"unknown argument {arg!r}")
    return records, window, out


def main():
    records, window, out = _parse_args(sys.argv[1:])
    result = run_experiment(records, window)
    pick = lambda rows: rows[:: max(1, len(rows) // 8)]
    print_table(
        f"Skew drift: moving hot range, {records} tuples "
        f"({result['rebalances']} rebalances)",
        ["window", "enabled max share", "disabled max share"],
        [
            (er["window"], er["max_share"], dr["max_share"])
            for er, dr in zip(
                pick(result["enabled_windows"]), pick(result["disabled_windows"])
            )
        ],
    )
    print_table(
        "Sustained modeled ingest throughput",
        ["balancer", "tuples/s", "speedup"],
        [
            ("enabled", result["enabled_tuples_per_s"], result["speedup"]),
            ("disabled", result["disabled_tuples_per_s"], 1.0),
        ],
    )
    # ingest_throughput.py owns the top-level keys of this file; merge
    # under our own key instead of clobbering its results.
    merged = {}
    if os.path.exists(out):
        try:
            with open(out) as fh:
                merged = json.load(fh)
        except (OSError, ValueError):
            merged = {}
    merged["skew_drift"] = {
        k: v
        for k, v in result.items()
        if k not in ("enabled_windows", "disabled_windows")
    }
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)
    print(
        f"\nwrote {out} (skew_drift speedup {result['speedup']:.2f}x, "
        f"{result['rebalances']} rebalances)"
    )
    return result


def test_skew_drift_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(n_records=12_000, window=1_000),
        rounds=1,
        iterations=1,
    )
    assert result["rebalances"] >= 1
    assert result["speedup"] >= 1.3


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
