"""Recovery MTTR: supervised crash recovery cost vs. indexing-tree size.

Section V's recovery story is durable-log replay: an indexing server's
volatile state (its template B+tree plus late buffer) is rebuilt by
replaying its log partition from the last flush checkpoint.  This
benchmark measures, as a function of the replayable backlog (= tuples
resident in the tree at crash time):

* **time to recover** -- wall seconds from the crash until the supervisor
  has detected the death (heartbeat poll), replayed the log and lifted the
  dispatcher quarantine;
* **replay throughput** -- tuples replayed per wall second.

A second table times standby-coordinator promotion (R-tree catalog rebuilt
from the metastore) against the number of registered chunks.

Writes ``BENCH_recovery.json`` at the repo root.

Usage::

    python benchmarks/recovery_mttr.py [--sizes N1,N2,...] [--repeats R]
        [--out PATH]

CI smoke runs use small ``--sizes`` to keep runtime negligible.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro import Waterwheel, small_config
from repro.workloads import uniform_records

DEFAULT_SIZES = (5_000, 20_000, 50_000)
DEFAULT_REPEATS = 3

#: One indexing server holds the whole backlog (single node) and chunks
#: are kept large so the tree -- not flushed chunks -- carries the state:
#: replay size equals tree size, the quantity the paper's recovery pays for.
BENCH_CONFIG = dict(n_nodes=1, key_hi=1 << 20, chunk_bytes=1 << 22)

#: Chunk-count sweep for the coordinator-promotion table (small chunks so
#: the catalog actually grows).
COORD_CONFIG = dict(n_nodes=3, key_hi=1 << 20, chunk_bytes=8192)


def time_recovery(n_records: int, repeats: int) -> dict:
    """Best-of-``repeats`` supervised recovery of one crashed server."""
    best = None
    for attempt in range(repeats):
        ww = Waterwheel(small_config(**BENCH_CONFIG))
        supervisor = ww.supervise(suspect_after=1, dead_after=1)
        stream = uniform_records(n_records, key_hi=1 << 20, seed=11 + attempt)
        ww.insert_batch(stream)
        backlog = ww.indexing_servers[0].in_memory_tuples
        ww.kill_indexing_server(0)

        started = time.perf_counter()
        reports = supervisor.poll_until_quiet()
        elapsed = time.perf_counter() - started

        replayed = sum(r.tuples_replayed for r in reports)
        assert ww.indexing_servers[0].alive
        assert replayed == backlog, (replayed, backlog)
        row = {
            "tree_tuples": backlog,
            "mttr_s": elapsed,
            "replayed_per_s": replayed / elapsed if elapsed else 0.0,
        }
        if best is None or row["mttr_s"] < best["mttr_s"]:
            best = row
        ww.close()
    return best


def time_promotion(n_records: int, repeats: int) -> dict:
    """Best-of-``repeats`` standby-coordinator catalog rebuild."""
    ww = Waterwheel(small_config(**COORD_CONFIG))
    ww.insert_batch(uniform_records(n_records, key_hi=1 << 20, seed=23))
    chunks = ww.chunk_count
    best = None
    for _ in range(repeats):
        ww.kill_coordinator()
        started = time.perf_counter()
        ww.promote_coordinator()
        elapsed = time.perf_counter() - started
        assert ww.coordinator.catalog_size == chunks
        if best is None or elapsed < best:
            best = elapsed
    ww.close()
    return {
        "chunks": chunks,
        "promote_s": best,
        "chunks_per_s": chunks / best if best else 0.0,
    }


def run_experiment(sizes, repeats):
    recovery_rows = [time_recovery(n, repeats) for n in sizes]
    promotion_rows = [
        time_promotion(n, repeats) for n in (sizes[0], sizes[-1])
    ]
    return {
        "sizes": list(sizes),
        "repeats": repeats,
        "config": dict(BENCH_CONFIG),
        "recovery": recovery_rows,
        "coordinator_promotion": promotion_rows,
        "replayed_per_s": recovery_rows[-1]["replayed_per_s"],
    }


def _parse_args(argv):
    sizes = list(DEFAULT_SIZES)
    repeats = DEFAULT_REPEATS
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_recovery.json",
    )
    it = iter(argv)
    for arg in it:
        if arg == "--sizes":
            sizes = [int(s) for s in next(it).split(",")]
        elif arg == "--repeats":
            repeats = int(next(it))
        elif arg == "--out":
            out = next(it)
        else:
            raise SystemExit(f"unknown argument {arg!r}")
    return sizes, repeats, out


def main():
    sizes, repeats, out = _parse_args(sys.argv[1:])
    result = run_experiment(sizes, repeats)
    print_table(
        f"Supervised recovery MTTR (wall clock, best of {repeats})",
        ["tree tuples", "MTTR (s)", "replayed/s"],
        [
            [r["tree_tuples"], r["mttr_s"], r["replayed_per_s"]]
            for r in result["recovery"]
        ],
    )
    print_table(
        "Standby-coordinator promotion (catalog rebuild from metastore)",
        ["chunks", "promote (s)", "chunks/s"],
        [
            [r["chunks"], r["promote_s"], r["chunks_per_s"]]
            for r in result["coordinator_promotion"]
        ],
    )
    with open(out, "w") as fh:
        json.dump(result, fh, indent=2)
    print(f"\nwrote {out}")
    return 0


# --- pytest entry point -------------------------------------------------------


def test_recovery_scales_with_tree_size():
    """Replay-driven MTTR grows with the backlog; throughput stays within
    an order of magnitude across sizes (no superlinear cliff)."""
    small, large = 2_000, 8_000
    row_small = time_recovery(small, repeats=2)
    row_large = time_recovery(large, repeats=2)
    assert row_small["tree_tuples"] == small
    assert row_large["tree_tuples"] == large
    assert row_large["mttr_s"] > 0
    assert row_large["replayed_per_s"] > row_small["replayed_per_s"] / 10


if __name__ == "__main__":
    sys.exit(main())
