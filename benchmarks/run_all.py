#!/usr/bin/env python
"""Print every paper table/figure and ablation in one run.

``pytest benchmarks/ --benchmark-only`` times the harnesses and asserts
each figure's qualitative shape; this script instead *prints the tables*
the way the paper reports them -- handy for eyeballing or regenerating
EXPERIMENTS.md.

Run:  python benchmarks/run_all.py [--skip-slow]
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).parent

#: Execution order: paper artifacts first, then the extra ablations.
MODULES = [
    "table1_capability",
    "fig07_tree_insertion",
    "fig08_09_mixed_workloads",
    "fig10_template_update",
    "fig11_chunk_size",
    "fig12_adaptive_partitioning",
    "fig13_dispatch_policies",
    "fig14_16_query_comparison",
    "fig15_insertion_comparison",
    "fig17_scalability",
    "ablation_bloom",
    "ablation_skew_threshold",
    "ablation_late_arrival",
    "ablation_secondary",
    "ablation_cache_size",
    "ablation_compaction",
    "wallclock_throughput",
]

SLOW = {"ablation_secondary", "ablation_cache_size"}


def load(name: str):
    """Import a benchmark module by file path (the directory is not a
    package)."""
    spec = importlib.util.spec_from_file_location(name, HERE / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    skip_slow = "--skip-slow" in argv
    started = time.perf_counter()
    for name in MODULES:
        if skip_slow and name in SLOW:
            print(f"\n=== {name} skipped (--skip-slow) ===")
            continue
        module_start = time.perf_counter()
        load(name).main()
        print(f"[{name} took {time.perf_counter() - module_start:.1f}s]")
    print(f"\nall benches printed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    from _common import bench_entry

    sys.exit(bench_entry(main))
