"""Multi-query scheduler throughput and result-cache effectiveness.

Two claims, both measured in wall clock on the threaded message plane:

1. **Concurrent scheduling wins.**  Running a mixed query batch through
   the :class:`~repro.core.scheduler.QueryScheduler` with 8 workers keeps
   every query server busy -- one query's DFS waits overlap another
   query's decode -- where serial submission leaves servers idle between
   queries.  Target: >= 1.5x aggregate throughput at 8 concurrent
   queries vs the same batch serially.

2. **The result cache skips repeat chunk reads.**  Chunks are immutable,
   so the coordinator's subquery result cache answers repeated
   historical subqueries without touching the query servers at all.
   Target: >= 30% chunk-read reduction (bytes) on a repeated batch with
   the cache warm vs the same repeat with the cache disabled.

Both scheduled and serial executions are cross-checked for identical
query results before any timing is trusted.  Results are merged into
``BENCH_query.json`` under a ``concurrent_queries`` key (the transport
benchmark's rows are preserved under ``query_transport``).

Usage::

    python benchmarks/concurrent_queries.py [--records N] [--queries Q]
        [--concurrency C] [--repeats R] [--sleep S] [--out PATH]

CI smoke runs use small ``--records`` / ``--sleep`` to keep runtime low.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro import DataTuple, Waterwheel, small_config

DEFAULT_RECORDS = 16_000
DEFAULT_QUERIES = 24
DEFAULT_CONCURRENCY = 8
DEFAULT_REPEATS = 3
#: Per-chunk DFS access floor (seconds); see query_transport.py.  Higher
#: than the transport benchmark's default because selective queries read
#: few chunks each -- the floor, not decode CPU, must dominate for the
#: scheduling comparison to reflect an I/O-bound deployment.
DEFAULT_READ_SLEEP = 0.01
RESULT_CACHE_BYTES = 8 << 20


def make_stream(n, seed=13):
    rng = random.Random(seed)
    clock = 0.0
    out = []
    for i in range(n):
        clock += rng.expovariate(1000.0)
        out.append(DataTuple(rng.randrange(0, 10_000), clock, payload=i))
    return out


def make_queries(n_queries, now, seed=17):
    """A mixed batch the way concurrent clients offer it: mostly selective
    drill-downs (a narrow key slice over a short historical window, each
    touching a couple of chunks on a couple of query servers) plus an
    occasional medium scan.  Selective queries are where scheduling pays:
    serially each one occupies one or two servers and leaves the rest
    idle; eight in flight keep every server's DFS pipeline busy."""
    rng = random.Random(seed)
    specs = []
    for i in range(n_queries):
        if i % 12 == 0:  # medium scan: a fifth of the keys, longer window
            lo = rng.randrange(0, 7_000)
            hi = lo + rng.randrange(2_000, 3_000)
            frac = 0.15
        else:  # selective drill-down
            lo = rng.randrange(0, 9_500)
            hi = lo + rng.randrange(100, 800)
            frac = rng.uniform(0.03, 0.12)
        t_lo = rng.uniform(0.0, now * (1.0 - frac))
        specs.append((lo, min(hi, 10_000), t_lo, t_lo + now * frac))
    return specs


def build_system(stream, read_sleep, result_cache_bytes=0):
    ww = Waterwheel(
        small_config(
            dfs_read_sleep=read_sleep,
            result_cache_bytes=result_cache_bytes,
        ),
        transport="threaded",
    )
    ww.insert_many(stream)
    # The batch targets historical windows; flush so every subquery is a
    # chunk read (the resource both claims are about).
    ww.flush_all()
    return ww


def clear_caches(ww):
    for server in ww.query_servers:
        server.clear_cache()
    ww.coordinator.result_cache.clear()


def run_serial(ww, specs):
    clear_caches(ww)
    started = time.perf_counter()
    results = [ww.query(*s) for s in specs]
    return time.perf_counter() - started, results


def run_scheduled(ww, specs, concurrency):
    clear_caches(ww)
    sched = ww.scheduler(
        max_concurrency=concurrency, queue_limit=max(len(specs), 1)
    )
    started = time.perf_counter()
    tickets = [ww.submit(*s) for s in specs]
    results = [t.result() for t in tickets]
    wall = time.perf_counter() - started
    if sched.shed:
        raise AssertionError("benchmark batch should never shed")
    return wall, results


def check_equivalent(res_a, res_b):
    for a, b in zip(res_a, res_b):
        if sorted((t.key, t.ts) for t in a.tuples) != sorted(
            (t.key, t.ts) for t in b.tuples
        ):
            raise AssertionError("scheduled and serial results disagree")
        if a.partial or b.partial:
            raise AssertionError("unexpected partial result on healthy cluster")


def measure_repeat_bytes(ww, specs):
    """Bytes read by a *repeated* batch (first run warms every cache)."""
    clear_caches(ww)
    for s in specs:
        ww.query(*s)
    repeat = [ww.query(*s) for s in specs]
    return sum(r.bytes_read for r in repeat), repeat


def run_experiment(n_records, n_queries, concurrency, repeats, read_sleep):
    stream = make_stream(n_records)
    now = max(t.ts for t in stream)
    specs = make_queries(n_queries, now)

    # --- claim 1: scheduler throughput (cache off isolates scheduling) ---
    ww = build_system(stream, read_sleep)
    try:
        serial_wall, serial_res = run_serial(ww, specs)
        sched_wall, sched_res = run_scheduled(ww, specs, concurrency)
        check_equivalent(serial_res, sched_res)
        for _ in range(repeats - 1):
            s, _ = run_serial(ww, specs)
            serial_wall = min(serial_wall, s)
            s, _ = run_scheduled(ww, specs, concurrency)
            sched_wall = min(sched_wall, s)
        chunk_count = ww.chunk_count
        n_nodes = ww.config.n_nodes
        chunk_bytes = ww.config.chunk_bytes
    finally:
        ww.close()

    # --- claim 2: warm result cache vs no result cache on a repeat ------
    ww_nocache = build_system(stream, read_sleep)
    try:
        bytes_nocache, _ = measure_repeat_bytes(ww_nocache, specs)
    finally:
        ww_nocache.close()
    ww_cache = build_system(stream, read_sleep, RESULT_CACHE_BYTES)
    try:
        bytes_cache, repeat_res = measure_repeat_bytes(ww_cache, specs)
        cache_stats = ww_cache.coordinator.result_cache.stats()
        result_cache_hits = sum(r.result_cache_hits for r in repeat_res)
    finally:
        ww_cache.close()

    speedup = serial_wall / sched_wall
    read_reduction = (
        1.0 - (bytes_cache / bytes_nocache) if bytes_nocache else 0.0
    )
    return {
        "records": n_records,
        "queries": n_queries,
        "concurrency": concurrency,
        "repeats": repeats,
        "config": {
            "n_nodes": n_nodes,
            "chunk_bytes": chunk_bytes,
            "dfs_read_sleep": read_sleep,
            "result_cache_bytes": RESULT_CACHE_BYTES,
        },
        "chunk_count": chunk_count,
        "rows": [
            {
                "mode": "serial",
                "batch_wall_s": serial_wall,
                "queries_per_s": n_queries / serial_wall,
                "speedup_vs_serial": 1.0,
            },
            {
                "mode": f"scheduled x{concurrency}",
                "batch_wall_s": sched_wall,
                "queries_per_s": n_queries / sched_wall,
                "speedup_vs_serial": speedup,
            },
        ],
        "speedup": speedup,
        "result_cache": {
            "repeat_bytes_read_nocache": bytes_nocache,
            "repeat_bytes_read_cache": bytes_cache,
            "read_reduction": read_reduction,
            "result_cache_hits": result_cache_hits,
            "stats": cache_stats,
        },
    }


def merge_into_bench_file(result, out):
    """Keep the transport benchmark's section; add/replace ours."""
    merged = {}
    if os.path.exists(out):
        try:
            with open(out) as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = {}
        if "rows" in existing:  # flat query_transport layout
            merged["query_transport"] = existing
        elif isinstance(existing, dict):
            merged.update(existing)
    merged["concurrent_queries"] = result
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)


def _parse_args(argv):
    records = DEFAULT_RECORDS
    queries = DEFAULT_QUERIES
    concurrency = DEFAULT_CONCURRENCY
    repeats = DEFAULT_REPEATS
    sleep = DEFAULT_READ_SLEEP
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_query.json",
    )
    it = iter(argv)
    for arg in it:
        if arg == "--records":
            records = int(next(it))
        elif arg == "--queries":
            queries = int(next(it))
        elif arg == "--concurrency":
            concurrency = int(next(it))
        elif arg == "--repeats":
            repeats = int(next(it))
        elif arg == "--sleep":
            sleep = float(next(it))
        elif arg == "--out":
            out = next(it)
        else:
            raise SystemExit(f"unknown argument {arg!r}")
    return records, queries, concurrency, repeats, sleep, out


def main():
    records, queries, concurrency, repeats, sleep, out = _parse_args(
        sys.argv[1:]
    )
    result = run_experiment(records, queries, concurrency, repeats, sleep)
    print_table(
        f"Mixed query batch, {queries} queries over "
        f"{result['chunk_count']} chunks (wall clock, best of {repeats})",
        ["mode", "batch wall (s)", "queries/s", "speedup"],
        [
            (
                row["mode"],
                row["batch_wall_s"],
                row["queries_per_s"],
                row["speedup_vs_serial"],
            )
            for row in result["rows"]
        ],
    )
    rc = result["result_cache"]
    print(
        f"\nrepeat-batch chunk reads: {rc['repeat_bytes_read_nocache']} B "
        f"uncached vs {rc['repeat_bytes_read_cache']} B with result cache "
        f"({rc['read_reduction']:.0%} reduction, "
        f"{rc['result_cache_hits']} subquery hits)"
    )
    merge_into_bench_file(result, out)
    print(
        f"wrote {out} (scheduled speedup {result['speedup']:.2f}x, "
        f"read reduction {rc['read_reduction']:.0%})"
    )
    return result


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
