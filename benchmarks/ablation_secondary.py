"""Ablation: secondary bitmap/bloom indexes (paper Section VIII future work).

A Network-like stream carries a URL attribute; analysts ask for one URL's
hits over wide key and time ranges.  Without a secondary index every
key-matching leaf must be read and post-filtered; with the per-chunk
bitmap sidecar only leaves containing the URL are fetched.

Reported: latency, bytes read and leaves read per query, indexed vs. not,
plus the sidecar storage overhead.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro import Waterwheel, small_config
from repro.secondary import AttributeSpec, sidecar_id
from repro.workloads import NetworkGenerator

N_TUPLES = 40_000
N_QUERIES = 25
N_URLS = 50  # generator default: /page/0 ... /page/49


def _build(indexed: bool):
    gen = NetworkGenerator(records_per_second=500.0, seed=91)
    key_lo, key_hi = gen.key_domain
    specs = (AttributeSpec("url", lambda p: p.url),) if indexed else ()
    cfg = small_config(
        key_lo=key_lo,
        key_hi=key_hi,
        n_nodes=4,
        chunk_bytes=128 * 1024,
        tuple_size=50,
        secondary_specs=specs,
        cache_bytes=4 << 20,  # steady-state cache comfortably fits the data
    )
    ww = Waterwheel(cfg)
    data = gen.records(N_TUPLES)
    ww.insert_many(data)
    ww.flush_all()
    now = max(t.ts for t in data)
    return ww, key_lo, key_hi, now


def run_experiment():
    """Rows: (variant, cache, latency ms, bytes/query, leaves read,
    sidecar KB).  Cold = caches cleared before each query (I/O-bound);
    warm = steady state after a full warm-up pass (CPU-bound)."""
    rows = []
    references = {}
    for indexed in (True, False):
        ww, key_lo, key_hi, now = _build(indexed)
        sidecar_kb = sum(
            ww.dfs.location(cid).size
            for cid in ww.dfs.chunk_ids()
            if cid.endswith(".sidx")
        ) / 1024.0

        def one_query(i):
            url = f"/page/{i % N_URLS}"
            if indexed:
                return ww.query(
                    key_lo, key_hi - 1, 0.0, now, attr_equals={"url": url}
                )
            return ww.query(
                key_lo,
                key_hi - 1,
                0.0,
                now,
                predicate=lambda t, u=url: t.payload.url == u,
            )

        for cache_state in ("cold", "warm"):
            if cache_state == "warm":
                # Two warm-up passes: the second stabilizes LADA's dynamic
                # assignment under warm-cache cost structure, so the
                # measured pass sees steady-state placement.
                for _pass in range(2):
                    for i in range(N_QUERIES):
                        one_query(i)
            latencies, nbytes, leaves, counts = [], [], [], []
            for i in range(N_QUERIES):
                if cache_state == "cold":
                    for qs in ww.query_servers:
                        qs.clear_cache()
                res = one_query(i)
                latencies.append(res.latency * 1000)
                nbytes.append(res.bytes_read)
                leaves.append(res.leaves_read)
                counts.append(len(res))
            key = cache_state
            if key in references:
                assert counts == references[key], "index changed results!"
            references[key] = counts
            rows.append(
                (
                    "indexed" if indexed else "post-filter",
                    cache_state,
                    mean(latencies),
                    mean(nbytes),
                    mean(leaves),
                    sidecar_kb,
                )
            )
    return rows


def main():
    print_table(
        "Ablation: secondary attribute indexes (URL hits over full ranges)",
        ["variant", "cache", "latency (ms)", "bytes/query", "leaves read", "sidecar KB"],
        run_experiment(),
    )


def test_ablation_secondary_index(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    cells = {(variant, cache): row for variant, cache, *row in rows}
    # Cold (I/O-bound): the sidecar prunes most leaf reads and bytes.
    idx_cold = cells[("indexed", "cold")]
    pf_cold = cells[("post-filter", "cold")]
    assert idx_cold[2] < 0.5 * pf_cold[2]  # leaves read
    assert idx_cold[1] < 0.6 * pf_cold[1]  # bytes
    assert idx_cold[0] < pf_cold[0]  # latency
    # Warm (CPU-bound): fewer tuples scanned still wins.
    idx_warm = cells[("indexed", "warm")]
    pf_warm = cells[("post-filter", "warm")]
    assert idx_warm[0] < pf_warm[0]
    # Storage overhead exists but is modest.
    assert 0 < idx_cold[3]
    assert cells[("post-filter", "cold")][3] == 0


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
