"""Figure 17: insertion throughput as the cluster grows (16-128 nodes).

The paper scales Waterwheel on EC2 from 16 to 128 nodes and observes
near-linear growth on both datasets, because (a) the global data
partitioning lets every indexing server work independently (no
synchronization) and (b) adaptive key partitioning keeps them evenly
loaded.

Here each cluster size is evaluated through the shared pipeline model with
per-server shares produced by the real quantile partitioner over each
dataset's observed keys.  A contrast series with per-node synchronization
overhead (what a coordination-bound design would pay) shows why
"synchronization-free" matters.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro.core.partitioning import KeyPartition
from repro.simulation import CostModel, PipelineTopology, system_insertion_rate
from repro.workloads import NetworkGenerator, TDriveGenerator

NODE_COUNTS = (16, 32, 64, 128)
N_SAMPLE = 50_000


def _datasets():
    return {
        "T-Drive": (TDriveGenerator(n_taxis=400, seed=43), 36),
        "Network": (NetworkGenerator(seed=43), 50),
    }


def run_experiment():
    """Rows: (nodes, tdrive tput, network tput, sync-bound contrast)."""
    costs = CostModel()
    samples = {}
    for dataset, (gen, tuple_size) in _datasets().items():
        data = gen.records(N_SAMPLE)
        samples[dataset] = ([t.key for t in data], gen.key_domain, tuple_size)

    rows = []
    for n_nodes in NODE_COUNTS:
        topology = PipelineTopology(n_nodes)
        rates = {}
        for dataset, (keys, (key_lo, key_hi), tuple_size) in samples.items():
            partition = KeyPartition.from_sample(
                key_lo, key_hi, topology.n_indexing, keys
            )
            loads = [0.0] * topology.n_indexing
            for key in keys:
                loads[partition.server_for(key)] += 1.0
            rates[dataset] = system_insertion_rate(
                costs, topology, tuple_size, 16 << 20, shares=loads
            )
        sync_bound = system_insertion_rate(
            costs,
            topology,
            36,
            16 << 20,
            sync_overhead_per_node=2e-8,
        )
        rows.append((n_nodes, rates["T-Drive"], rates["Network"], sync_bound))
    return rows


def main():
    rows = run_experiment()
    print_table(
        "Figure 17: insertion throughput vs cluster size (tuples/s)",
        ["nodes", "T-Drive", "Network", "sync-bound contrast"],
        rows,
    )


def test_fig17_near_linear_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_nodes = {r[0]: r for r in rows}
    for column in (1, 2):  # T-Drive, Network
        r16 = by_nodes[16][column]
        r128 = by_nodes[128][column]
        # Paper: approximately linear from 16 to 128 nodes (8x nodes).
        assert r128 > 6.0 * r16, column
        # Monotone increase throughout.
        series = [by_nodes[n][column] for n in NODE_COUNTS]
        assert all(a < b for a, b in zip(series, series[1:])), column
    # The synchronization-bound contrast stops scaling.
    sync = [by_nodes[n][3] for n in NODE_COUNTS]
    assert sync[-1] < 4.0 * sync[0]


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
