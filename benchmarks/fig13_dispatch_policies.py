"""Figure 13: query latency under different subquery dispatch policies.

A real (scaled-down) deployment ingests each dataset and flushes it into
chunks; then the same batch of queries (0.1 selectivity on both the key
and the temporal domain, as in Section VI-C2) is executed under each
dispatch policy, with fresh query servers per policy so cache state is
comparable.

Paper's ordering reproduced: round-robin is worst (no locality, no load
balance), the shared queue improves on it via load balance, hashing
improves on it via cache locality, and LADA -- load balance + cache
locality + chunk locality -- wins.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro import Waterwheel, small_config
from repro.core.coordinator import QueryCoordinator
from repro.core.dispatch import (
    HashingDispatch,
    LadaDispatch,
    RoundRobinDispatch,
    SharedQueueDispatch,
)
from repro.core.model import KeyInterval, Query, TimeInterval
from repro.core.query_server import QueryServer
from repro.workloads import NetworkGenerator, QueryGenerator, TDriveGenerator

N_TUPLES = 40_000
N_QUERIES = 150
KEY_SELECTIVITY = 0.1
TIME_SELECTIVITY = 0.1


def _ingest(dataset: str):
    if dataset == "T-Drive":
        gen = TDriveGenerator(n_taxis=400, seed=13)
        key_lo, key_hi = gen.key_domain
        tuple_size = 36
    else:
        gen = NetworkGenerator(seed=13)
        key_lo, key_hi = gen.key_domain
        tuple_size = 50
    cfg = small_config(
        key_lo=key_lo,
        key_hi=key_hi,
        n_nodes=4,
        query_servers_per_node=2,
        chunk_bytes=64 * 1024,
        tuple_size=tuple_size,
        cache_bytes=256 * 1024,  # small cache so locality matters
    )
    ww = Waterwheel(cfg)
    data = gen.records(N_TUPLES)
    ww.insert_many(data)
    ww.flush_all()  # chunk-only queries isolate the dispatch effect
    now = max(t.ts for t in data)
    return ww, cfg, key_lo, key_hi, now


def run_experiment():
    """Rows: (dataset, policy, mean query latency ms)."""
    rows = []
    for dataset in ("T-Drive", "Network"):
        ww, cfg, key_lo, key_hi, now = _ingest(dataset)
        qgen = QueryGenerator(key_lo, key_hi, seed=29)
        span = now * TIME_SELECTIVITY
        specs = []
        for spec in qgen.batch(N_QUERIES, KEY_SELECTIVITY, "recent_60s", now=now):
            t_lo, t_hi = qgen.time_selectivity_window(TIME_SELECTIVITY, now)
            specs.append((spec.key_lo, spec.key_hi, t_lo, t_hi))

        policies = {
            "round_robin": RoundRobinDispatch(),
            "shared_queue": SharedQueueDispatch(),
            "hashing": HashingDispatch(),
            "lada": LadaDispatch(ww.dfs.has_local_replica),
        }
        for name, policy in policies.items():
            # Fresh query servers per policy: cold, equal cache state.
            servers = [
                QueryServer(qs.server_id, qs.node_id, cfg, ww.dfs)
                for qs in ww.query_servers
            ]
            coordinator = QueryCoordinator(
                cfg, ww.metastore, ww.indexing_servers, servers, policy
            )
            latencies = [
                coordinator.execute(
                    Query(
                        keys=KeyInterval.closed(k_lo, k_hi),
                        times=TimeInterval(t_lo, t_hi),
                    )
                ).latency
                * 1000.0
                for k_lo, k_hi, t_lo, t_hi in specs
            ]
            coordinator.close()
            rows.append((dataset, name, mean(latencies)))
    return rows


def main():
    print_table(
        "Figure 13: mean query latency by dispatch policy",
        ["dataset", "policy", "latency (ms)"],
        run_experiment(),
    )


def test_fig13_policy_ordering(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for dataset in ("T-Drive", "Network"):
        lat = {policy: ms for d, policy, ms in rows if d == dataset}
        # LADA wins outright, by a substantial margin (paper's headline).
        assert lat["lada"] < 0.8 * lat["round_robin"], dataset
        assert lat["lada"] < 0.8 * lat["shared_queue"], dataset
        assert lat["lada"] < 0.8 * lat["hashing"], dataset
        # Hashing's cache locality beats the locality-blind policies.
        assert lat["hashing"] < lat["round_robin"], dataset
        assert lat["hashing"] < lat["shared_queue"], dataset


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
