"""Batched vs looped ingest throughput (wall clock, pure Python).

Measures what the prototype sustains end-to-end -- dispatch + durable log +
template-tree indexing + chunk flushes -- through the looped one-tuple path
(``insert_many``) and the batched fast path (``insert_batch``) on the same
100k-tuple stream, sweeping the batch size.  The batched path routes each
batch with one shared-partition read, appends one record run per log
partition, and walks each indexing server's template with a leaf-to-leaf
cursor, so its advantage grows with batch size until flush costs (identical
in both paths) dominate.

Two further sections ride along:

* ``flush_stall`` -- p50/p99 per-insert latency and sustained throughput
  under flush-heavy settings (tiny chunks, slowed DFS writes), sync vs
  async flush mode.  This is the seal-and-swap pipeline's headline: in
  sync mode every chunk write stalls the ingest thread for the full write
  latency, in async mode the tree is sealed and handed to the background
  executor, so the insert-latency tail collapses (paper Figures 7-9).
* ``compression`` -- the same stream flushed with ``compress_chunks`` off
  and on: stored chunk bytes, compression ratio, and the ingest-rate cost
  of deflating on the flush path.

Writes ``BENCH_ingest.json`` at the repo root: per-batch-size rows plus a
headline ``speedup`` (best batch size over the loop), with the stall and
compression sections under their own keys.  The two paths are also
cross-checked for equivalent system state (same flush counts, same
chunks) before any timing is trusted.

Usage::

    python benchmarks/ingest_throughput.py [--records N] [--batch B1,B2,...]
        [--repeats R] [--out PATH] [--compress]
        [--stall-records N] [--stall-write-sleep S] [--compress-records N]

CI smoke runs use small ``--records`` to keep runtime negligible.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro import DataTuple, Waterwheel, WaterwheelConfig

DEFAULT_RECORDS = 100_000
DEFAULT_BATCH_SIZES = (2048, 4096, 8192, 16384, 32768)
DEFAULT_REPEATS = 3
DEFAULT_STALL_RECORDS = 4_000
DEFAULT_STALL_WRITE_SLEEP = 0.002
DEFAULT_COMPRESS_RECORDS = 20_000

#: Steady-state ingest setting: 3 nodes (6 indexing servers) with 128 KB
#: chunks, so a 100k-tuple run flushes a few dozen chunks -- the regime the
#: batched path is built for.
BENCH_CONFIG = dict(n_nodes=3, chunk_bytes=1 << 17)

#: Flush-heavy stall setting: one indexing server, ~56-tuple chunks and a
#: slowed DFS write, so a flush lands every few dozen inserts and the p99
#: insert latency is dominated by whatever the flush path does to ingest.
STALL_CONFIG = dict(
    n_nodes=1,
    dispatchers_per_node=1,
    indexing_per_node=1,
    query_servers_per_node=1,
    chunk_bytes=2048,
)


def make_stream(n, seed=7, late_fraction=0.01):
    """A mostly-ordered stream at ~1k tuples/simulated-second with a sprinkle
    of late arrivals (5-50 s behind), uniform keys over the 32-bit domain."""
    rng = random.Random(seed)
    out = []
    clock = 0.0
    for i in range(n):
        clock += rng.expovariate(1000.0)
        key = rng.randrange(0, 1 << 32)
        if rng.random() < late_fraction:
            out.append(DataTuple(key, clock - rng.uniform(5.0, 50.0), payload=i))
        else:
            out.append(DataTuple(key, clock, payload=i))
    return out


def run_loop(stream, config=None):
    ww = Waterwheel(WaterwheelConfig(**(config or BENCH_CONFIG)))
    started = time.perf_counter()
    ww.insert_many(stream)
    return time.perf_counter() - started, ww


def run_batched(stream, batch_size, config=None):
    ww = Waterwheel(WaterwheelConfig(**(config or BENCH_CONFIG)))
    started = time.perf_counter()
    for i in range(0, len(stream), batch_size):
        ww.insert_batch(stream[i : i + batch_size])
    return time.perf_counter() - started, ww


def check_equivalent(a, b):
    """The two paths must land in the same system state before timings
    mean anything."""
    flushes_a = [s.flush_count for s in a.indexing_servers]
    flushes_b = [s.flush_count for s in b.indexing_servers]
    if flushes_a != flushes_b:
        raise AssertionError(f"flush counts diverge: {flushes_a} != {flushes_b}")
    if a.in_memory_tuples != b.in_memory_tuples:
        raise AssertionError("in-memory tuple counts diverge")
    chunks_a = sorted(a.metastore.list_prefix("/chunks/"))
    chunks_b = sorted(b.metastore.list_prefix("/chunks/"))
    if chunks_a != chunks_b:
        raise AssertionError("chunk sets diverge")


def run_flush_stall_once(stream, write_sleep, flush_mode):
    """Per-insert latency + throughput for one flush mode under stall
    pressure; throughput includes draining the pipeline, so async cannot
    hide unfinished writes."""
    ww = Waterwheel(
        WaterwheelConfig(
            **STALL_CONFIG, dfs_write_sleep=write_sleep, flush_mode=flush_mode
        )
    )
    try:
        latencies = []
        started = time.perf_counter()
        for t in stream:
            t0 = time.perf_counter()
            ww.insert(t)
            latencies.append(time.perf_counter() - t0)
        insert_wall = time.perf_counter() - started
        ww.drain_flushes()
        total_wall = time.perf_counter() - started
    finally:
        ww.close()
    latencies.sort()

    def pct(p):
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))] * 1e6

    return {
        "flush_mode": flush_mode,
        "p50_insert_us": pct(0.50),
        "p99_insert_us": pct(0.99),
        "max_insert_us": latencies[-1] * 1e6,
        "insert_tuples_per_s": len(stream) / insert_wall,
        "sustained_tuples_per_s": len(stream) / total_wall,
    }


def run_flush_stall(n_records, write_sleep, repeats):
    """Sync vs async insert-latency tail under flush-heavy settings."""
    stream = make_stream(n_records, seed=13)
    modes = {}
    for mode in ("sync", "async"):
        best = run_flush_stall_once(stream, write_sleep, mode)
        for _ in range(repeats - 1):
            again = run_flush_stall_once(stream, write_sleep, mode)
            if again["p99_insert_us"] < best["p99_insert_us"]:
                best = again
        modes[mode] = best
    return {
        "records": n_records,
        "write_sleep_s": write_sleep,
        "config": dict(STALL_CONFIG),
        "sync": modes["sync"],
        "async": modes["async"],
        "p99_ratio_sync_over_async": (
            modes["sync"]["p99_insert_us"] / modes["async"]["p99_insert_us"]
        ),
        "sustained_ratio_async_over_sync": (
            modes["async"]["sustained_tuples_per_s"]
            / modes["sync"]["sustained_tuples_per_s"]
        ),
    }


def run_compression(n_records):
    """The same stream flushed raw and deflated: stored bytes vs rate."""
    stream = make_stream(n_records, seed=7)
    rows = {}
    for compress in (False, True):
        ww = Waterwheel(
            WaterwheelConfig(**BENCH_CONFIG, compress_chunks=compress)
        )
        try:
            started = time.perf_counter()
            ww.insert_many(stream)
            ww.flush_all()
            wall = time.perf_counter() - started
            nbytes = sum(
                ww.metastore.get(key)["bytes"]
                for key in ww.metastore.list_prefix("/chunks/")
            )
        finally:
            ww.close()
        rows["compressed" if compress else "raw"] = {
            "chunk_bytes": nbytes,
            "tuples_per_s": n_records / wall,
        }
    return {
        "records": n_records,
        "raw": rows["raw"],
        "compressed": rows["compressed"],
        "compression_ratio": (
            rows["raw"]["chunk_bytes"] / rows["compressed"]["chunk_bytes"]
        ),
    }


def run_experiment(n_records, batch_sizes, repeats, compress=False):
    config = dict(BENCH_CONFIG, compress_chunks=compress)
    stream = make_stream(n_records)
    loop_s, loop_ww = run_loop(stream, config)
    for _ in range(repeats - 1):
        s, _ = run_loop(stream, config)
        loop_s = min(loop_s, s)
    loop_rate = n_records / loop_s

    rows = []
    best = None
    for batch_size in batch_sizes:
        bat_s, bat_ww = run_batched(stream, batch_size, config)
        check_equivalent(loop_ww, bat_ww)
        for _ in range(repeats - 1):
            s, _ = run_batched(stream, batch_size, config)
            bat_s = min(bat_s, s)
        rate = n_records / bat_s
        speedup = loop_s / bat_s
        rows.append(
            {
                "batch_size": batch_size,
                "batched_tuples_per_s": rate,
                "speedup_vs_loop": speedup,
            }
        )
        if best is None or speedup > best["speedup_vs_loop"]:
            best = rows[-1]

    return {
        "records": n_records,
        "repeats": repeats,
        "config": config,
        "loop_tuples_per_s": loop_rate,
        "rows": rows,
        "best_batch_size": best["batch_size"] if best else None,
        "speedup": best["speedup_vs_loop"] if best else None,
    }


def _parse_args(argv):
    records = DEFAULT_RECORDS
    batch_sizes = list(DEFAULT_BATCH_SIZES)
    repeats = DEFAULT_REPEATS
    compress = False
    stall_records = DEFAULT_STALL_RECORDS
    stall_write_sleep = DEFAULT_STALL_WRITE_SLEEP
    compress_records = DEFAULT_COMPRESS_RECORDS
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_ingest.json",
    )
    it = iter(argv)
    for arg in it:
        if arg == "--records":
            records = int(next(it))
        elif arg == "--batch":
            batch_sizes = [int(b) for b in next(it).split(",")]
        elif arg == "--repeats":
            repeats = int(next(it))
        elif arg == "--compress":
            compress = True
        elif arg == "--stall-records":
            stall_records = int(next(it))
        elif arg == "--stall-write-sleep":
            stall_write_sleep = float(next(it))
        elif arg == "--compress-records":
            compress_records = int(next(it))
        elif arg == "--out":
            out = next(it)
        else:
            raise SystemExit(f"unknown argument {arg!r}")
    return (
        records,
        batch_sizes,
        repeats,
        compress,
        stall_records,
        stall_write_sleep,
        compress_records,
        out,
    )


def main():
    (
        records,
        batch_sizes,
        repeats,
        compress,
        stall_records,
        stall_write_sleep,
        compress_records,
        out,
    ) = _parse_args(sys.argv[1:])
    result = run_experiment(records, batch_sizes, repeats, compress=compress)
    print_table(
        f"Ingest throughput, {records} tuples (wall clock, best of {repeats})",
        ["path", "batch", "tuples/s", "speedup"],
        [("insert_many (loop)", "-", result["loop_tuples_per_s"], 1.0)]
        + [
            (
                "insert_batch",
                row["batch_size"],
                row["batched_tuples_per_s"],
                row["speedup_vs_loop"],
            )
            for row in result["rows"]
        ],
    )

    stall = run_flush_stall(stall_records, stall_write_sleep, repeats)
    print_table(
        f"Flush stall, {stall_records} tuples, "
        f"{stall_write_sleep * 1e3:.1f} ms DFS writes (best of {repeats})",
        ["flush_mode", "p50 us", "p99 us", "max us", "insert/s", "sustained/s"],
        [
            (
                mode,
                stall[mode]["p50_insert_us"],
                stall[mode]["p99_insert_us"],
                stall[mode]["max_insert_us"],
                stall[mode]["insert_tuples_per_s"],
                stall[mode]["sustained_tuples_per_s"],
            )
            for mode in ("sync", "async")
        ],
    )
    print(f"  p99 insert latency: sync/async = "
          f"{stall['p99_ratio_sync_over_async']:.2f}x")

    comp = run_compression(compress_records)
    print_table(
        f"Chunk compression, {compress_records} tuples",
        ["chunks", "stored bytes", "tuples/s"],
        [
            ("raw", comp["raw"]["chunk_bytes"], comp["raw"]["tuples_per_s"]),
            (
                "compressed",
                comp["compressed"]["chunk_bytes"],
                comp["compressed"]["tuples_per_s"],
            ),
        ],
    )
    print(f"  compression ratio: {comp['compression_ratio']:.2f}x")

    # Other harnesses (skew_drift.py) own their namespaced keys of this
    # file; merge over the existing content instead of clobbering them.
    merged = {}
    if os.path.exists(out):
        try:
            with open(out) as fh:
                merged = json.load(fh)
        except (OSError, ValueError):
            merged = {}
    merged.update(result)
    merged["flush_stall"] = stall
    merged["compression"] = comp
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)
    print(f"\nwrote {out} (headline speedup {result['speedup']:.2f}x "
          f"at batch {result['best_batch_size']}, flush-stall p99 "
          f"{stall['p99_ratio_sync_over_async']:.2f}x)")
    return result


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
