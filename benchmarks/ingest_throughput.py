"""Batched vs looped ingest throughput (wall clock, pure Python).

Measures what the prototype sustains end-to-end -- dispatch + durable log +
template-tree indexing + chunk flushes -- through the looped one-tuple path
(``insert_many``) and the batched fast path (``insert_batch``) on the same
100k-tuple stream, sweeping the batch size.  The batched path routes each
batch with one shared-partition read, appends one record run per log
partition, and walks each indexing server's template with a leaf-to-leaf
cursor, so its advantage grows with batch size until flush costs (identical
in both paths) dominate.

Writes ``BENCH_ingest.json`` at the repo root: per-batch-size rows plus a
headline ``speedup`` (best batch size over the loop).  The two paths are
also cross-checked for equivalent system state (same flush counts, same
chunks) before any timing is trusted.

Usage::

    python benchmarks/ingest_throughput.py [--records N] [--batch B1,B2,...]
        [--repeats R] [--out PATH]

CI smoke runs use small ``--records`` to keep runtime negligible.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro import DataTuple, Waterwheel, WaterwheelConfig

DEFAULT_RECORDS = 100_000
DEFAULT_BATCH_SIZES = (2048, 4096, 8192, 16384, 32768)
DEFAULT_REPEATS = 3

#: Steady-state ingest setting: 3 nodes (6 indexing servers) with 128 KB
#: chunks, so a 100k-tuple run flushes a few dozen chunks -- the regime the
#: batched path is built for.
BENCH_CONFIG = dict(n_nodes=3, chunk_bytes=1 << 17)


def make_stream(n, seed=7, late_fraction=0.01):
    """A mostly-ordered stream at ~1k tuples/simulated-second with a sprinkle
    of late arrivals (5-50 s behind), uniform keys over the 32-bit domain."""
    rng = random.Random(seed)
    out = []
    clock = 0.0
    for i in range(n):
        clock += rng.expovariate(1000.0)
        key = rng.randrange(0, 1 << 32)
        if rng.random() < late_fraction:
            out.append(DataTuple(key, clock - rng.uniform(5.0, 50.0), payload=i))
        else:
            out.append(DataTuple(key, clock, payload=i))
    return out


def run_loop(stream):
    ww = Waterwheel(WaterwheelConfig(**BENCH_CONFIG))
    started = time.perf_counter()
    ww.insert_many(stream)
    return time.perf_counter() - started, ww


def run_batched(stream, batch_size):
    ww = Waterwheel(WaterwheelConfig(**BENCH_CONFIG))
    started = time.perf_counter()
    for i in range(0, len(stream), batch_size):
        ww.insert_batch(stream[i : i + batch_size])
    return time.perf_counter() - started, ww


def check_equivalent(a, b):
    """The two paths must land in the same system state before timings
    mean anything."""
    flushes_a = [s.flush_count for s in a.indexing_servers]
    flushes_b = [s.flush_count for s in b.indexing_servers]
    if flushes_a != flushes_b:
        raise AssertionError(f"flush counts diverge: {flushes_a} != {flushes_b}")
    if a.in_memory_tuples != b.in_memory_tuples:
        raise AssertionError("in-memory tuple counts diverge")
    chunks_a = sorted(a.metastore.list_prefix("/chunks/"))
    chunks_b = sorted(b.metastore.list_prefix("/chunks/"))
    if chunks_a != chunks_b:
        raise AssertionError("chunk sets diverge")


def run_experiment(n_records, batch_sizes, repeats):
    stream = make_stream(n_records)
    loop_s, loop_ww = run_loop(stream)
    for _ in range(repeats - 1):
        s, _ = run_loop(stream)
        loop_s = min(loop_s, s)
    loop_rate = n_records / loop_s

    rows = []
    best = None
    for batch_size in batch_sizes:
        bat_s, bat_ww = run_batched(stream, batch_size)
        check_equivalent(loop_ww, bat_ww)
        for _ in range(repeats - 1):
            s, _ = run_batched(stream, batch_size)
            bat_s = min(bat_s, s)
        rate = n_records / bat_s
        speedup = loop_s / bat_s
        rows.append(
            {
                "batch_size": batch_size,
                "batched_tuples_per_s": rate,
                "speedup_vs_loop": speedup,
            }
        )
        if best is None or speedup > best["speedup_vs_loop"]:
            best = rows[-1]

    return {
        "records": n_records,
        "repeats": repeats,
        "config": dict(BENCH_CONFIG),
        "loop_tuples_per_s": loop_rate,
        "rows": rows,
        "best_batch_size": best["batch_size"] if best else None,
        "speedup": best["speedup_vs_loop"] if best else None,
    }


def _parse_args(argv):
    records = DEFAULT_RECORDS
    batch_sizes = list(DEFAULT_BATCH_SIZES)
    repeats = DEFAULT_REPEATS
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_ingest.json",
    )
    it = iter(argv)
    for arg in it:
        if arg == "--records":
            records = int(next(it))
        elif arg == "--batch":
            batch_sizes = [int(b) for b in next(it).split(",")]
        elif arg == "--repeats":
            repeats = int(next(it))
        elif arg == "--out":
            out = next(it)
        else:
            raise SystemExit(f"unknown argument {arg!r}")
    return records, batch_sizes, repeats, out


def main():
    records, batch_sizes, repeats, out = _parse_args(sys.argv[1:])
    result = run_experiment(records, batch_sizes, repeats)
    print_table(
        f"Ingest throughput, {records} tuples (wall clock, best of {repeats})",
        ["path", "batch", "tuples/s", "speedup"],
        [("insert_many (loop)", "-", result["loop_tuples_per_s"], 1.0)]
        + [
            (
                "insert_batch",
                row["batch_size"],
                row["batched_tuples_per_s"],
                row["speedup_vs_loop"],
            )
            for row in result["rows"]
        ],
    )
    # Other harnesses (skew_drift.py) own their namespaced keys of this
    # file; merge over the existing content instead of clobbering them.
    merged = {}
    if os.path.exists(out):
        try:
            with open(out) as fh:
                merged = json.load(fh)
        except (OSError, ValueError):
            merged = {}
    merged.update(result)
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)
    print(f"\nwrote {out} (headline speedup {result['speedup']:.2f}x "
          f"at batch {result['best_batch_size']})")
    return result


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
