"""Figure 7: B+ tree insertion performance.

(a) Insertion throughput vs. number of insertion threads (1-8) for the
    template-based, concurrent (Bayer-Schkolnick) and bulk-loading B+
    trees on T-Drive-like keys.  Thread scaling is produced by replaying
    latch traces of *real* inserts through the virtual-thread lock
    simulator (see DESIGN.md: the GIL forbids real multi-core scaling).
(b) Breakdown of single-thread wall-clock insertion time: node splits
    dominate the concurrent tree, sorting dominates the bulk loader, and
    template updates are a negligible share of the template tree's time.

Paper's claims reproduced here: the template tree's throughput rises with
threads while the concurrent tree's stays roughly flat; the concurrent tree
spends a large share of its time splitting nodes; template-update overhead
is negligible.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro.btree import (
    ConcurrentBTree,
    TemplateBTree,
    TraceCosts,
    bulk_load_ops,
    record_concurrent_insert_ops,
    record_template_insert_ops,
    simulated_insertion_breakdown,
)
from repro.simulation import LockSimulator
from repro.workloads import TDriveGenerator

N_TUPLES = 60_000
THREADS = (1, 2, 4, 8)
FANOUT = 64
LEAF_CAPACITY = 64


def _tdrive_tuples(n=N_TUPLES):
    return TDriveGenerator(n_taxis=500, seed=7).records(n)


def run_fig7a():
    """Returns rows: (threads, template tput, concurrent tput, bulk tput)."""
    data = _tdrive_tuples()
    key_hi = 1 << 32
    costs = TraceCosts()

    template_tree = TemplateBTree(
        0, key_hi, n_leaves=max(1, N_TUPLES // LEAF_CAPACITY), fanout=FANOUT,
        skew_threshold=0.5, check_every=8192,
    )
    template_ops = record_template_insert_ops(template_tree, data, costs)

    concurrent_tree = ConcurrentBTree(fanout=FANOUT, leaf_capacity=LEAF_CAPACITY)
    concurrent_ops = record_concurrent_insert_ops(concurrent_tree, data, costs)

    bulk_ops = bulk_load_ops(len(data), costs)

    sim = LockSimulator()
    rows = []
    for threads in THREADS:
        rows.append(
            (
                threads,
                sim.run(template_ops, threads).throughput,
                sim.run(concurrent_ops, threads).throughput,
                sim.run(bulk_ops, threads).throughput,
            )
        )
    return rows


def run_fig7b():
    """Per-tree insertion time breakdown in the same simulated cost units
    as Figure 7(a); event counts come from real structure executions."""
    data = _tdrive_tuples(20_000)
    return simulated_insertion_breakdown(
        data, 0, 1 << 32, fanout=FANOUT, leaf_capacity=LEAF_CAPACITY
    )


def main():
    rows = run_fig7a()
    print_table(
        "Figure 7(a): insertion throughput vs threads (tuples/s, simulated)",
        ["threads", "template", "concurrent", "bulk-loading"],
        rows,
    )
    breakdowns = run_fig7b()
    print_table(
        "Figure 7(b): insertion time breakdown (simulated seconds)",
        ["tree", "pure_insert", "node_split", "sort", "build", "template_update", "total"],
        [
            (
                b.tree,
                b.pure_insert,
                b.node_split,
                b.sort,
                b.build,
                b.template_update,
                b.total,
            )
            for b in breakdowns
        ],
    )


# --- pytest entry points -----------------------------------------------------


def test_fig7a_thread_scaling(benchmark):
    rows = benchmark.pedantic(run_fig7a, rounds=1, iterations=1)
    by_threads = {r[0]: r for r in rows}
    # Template tree throughput keeps rising with threads.
    assert by_threads[8][1] > 2.5 * by_threads[1][1]
    # Concurrent tree plateaus: writers serialize on the root latch.  It may
    # gain ~2x from read/insert overlap but flattens past 4 threads.
    assert by_threads[8][2] < 2.5 * by_threads[1][2]
    assert by_threads[8][2] < 1.15 * by_threads[4][2]
    # Template beats concurrent at every thread count.
    for threads in THREADS:
        assert by_threads[threads][1] > by_threads[threads][2]


def test_fig7b_breakdown(benchmark):
    breakdowns = benchmark.pedantic(run_fig7b, rounds=1, iterations=1)
    by_name = {b.tree: b for b in breakdowns}
    # Node splits are a large share of the concurrent tree's time.
    concurrent = by_name["concurrent"]
    assert concurrent.node_split > 0.15 * concurrent.total
    # Sorting dominates the bulk loader.
    bulk = by_name["bulk"]
    assert bulk.sort > bulk.build
    # Template maintenance is a small share of the template tree's time.
    template = by_name["template"]
    assert template.template_update < 0.3 * template.total
    # And the template tree is the fastest end to end.
    assert template.total < concurrent.total


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
