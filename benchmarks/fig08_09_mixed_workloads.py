"""Figures 8 and 9: template vs. concurrent B+ tree under mixed workloads.

Three representative workloads on both datasets (paper Section VI-A2):
100% insertion, 75% insertion / 25% read, 50% / 50%.  Reads are point
lookups on keys drawn uniformly from the key domain.

Figure 8 reports insertion throughput; Figure 9 reports mean read (query)
latency.  Both come from replaying real operation traces through the
virtual-thread lock simulator at 8 threads: the template's read-only inner
nodes mean readers never wait on writers above the leaf level, so it wins
on *both* metrics -- 2-3x the insertion throughput and lower read latency,
the paper's headline from this experiment.
"""

from __future__ import annotations

import random
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro.btree import (
    ConcurrentBTree,
    TemplateBTree,
    TraceCosts,
    record_concurrent_insert_ops,
    record_concurrent_read_ops,
    record_template_insert_ops,
    record_template_read_ops,
)
from repro.simulation import LockSimulator
from repro.workloads import NetworkGenerator, TDriveGenerator

N_OPS = 40_000
THREADS = 8
MIXES = (("100% insert", 0.0), ("75% ins / 25% read", 0.25), ("50% / 50%", 0.5))


def _datasets():
    return {
        "T-Drive": TDriveGenerator(n_taxis=400, seed=3).records(N_OPS),
        "Network": NetworkGenerator(seed=3).records(N_OPS),
    }


def _interleave(insert_ops, read_ops, read_fraction, seed=5):
    """Shuffle insert and read operations into one arrival sequence,
    tagging each op so read latency can be extracted afterwards."""
    rng = random.Random(seed)
    ops = [(op, "insert") for op in insert_ops] + [(op, "read") for op in read_ops]
    rng.shuffle(ops)
    sequence = [op for op, _kind in ops]
    read_idx = [i for i, (_op, kind) in enumerate(ops) if kind == "read"]
    return sequence, read_idx


def run_experiment():
    """Rows: (dataset, mix, tree, insert throughput, mean read latency)."""
    costs = TraceCosts()
    sim = LockSimulator()
    rows = []
    for dataset, data in _datasets().items():
        key_lo, key_hi = 0, 1 << 32
        rng = random.Random(11)
        for mix_name, read_fraction in MIXES:
            n_reads = int(len(data) * read_fraction)
            n_inserts = len(data) - n_reads
            inserts = data[:n_inserts]
            read_keys = [rng.randrange(key_lo, key_hi) for _ in range(n_reads)]

            # Template tree: build from real inserts, then record reads.
            template = TemplateBTree(
                key_lo, key_hi, n_leaves=max(1, n_inserts // 256), fanout=64
            )
            t_ins = record_template_insert_ops(template, inserts, costs)
            t_read = record_template_read_ops(template, read_keys, costs)

            concurrent = ConcurrentBTree(fanout=64, leaf_capacity=64)
            c_ins = record_concurrent_insert_ops(concurrent, inserts, costs)
            c_read = record_concurrent_read_ops(concurrent, read_keys, costs)

            for tree, ins_ops, read_ops in (
                ("template", t_ins, t_read),
                ("concurrent", c_ins, c_read),
            ):
                sequence, read_idx = _interleave(ins_ops, read_ops, read_fraction)
                result = sim.run(sequence, THREADS)
                insert_tput = n_inserts / result.makespan
                read_latency = result.mean_latency(read_idx) if read_idx else 0.0
                rows.append((dataset, mix_name, tree, insert_tput, read_latency))
    return rows


def main():
    rows = run_experiment()
    print_table(
        "Figure 8: insertion throughput under mixed workloads (tuples/s)",
        ["dataset", "workload", "tree", "insert tput"],
        [(d, m, t, tput) for d, m, t, tput, _lat in rows],
    )
    print_table(
        "Figure 9: mean read latency under mixed workloads (microseconds)",
        ["dataset", "workload", "tree", "read latency (us)"],
        [
            (d, m, t, lat * 1e6)
            for d, m, t, _tput, lat in rows
            if "100%" not in m
        ],
    )


def test_fig8_fig9_mixed_workloads(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    indexed = {(d, m, t): (tput, lat) for d, m, t, tput, lat in rows}
    for dataset in ("T-Drive", "Network"):
        for mix_name, read_fraction in MIXES:
            t_tput, t_lat = indexed[(dataset, mix_name, "template")]
            c_tput, c_lat = indexed[(dataset, mix_name, "concurrent")]
            # Paper: template insertion throughput is 2-3x the concurrent
            # tree's under every mix ...
            assert t_tput > 1.8 * c_tput, (dataset, mix_name)
            # ... and template read latency is lower despite traversing a
            # (possibly deeper) read-only template.
            if read_fraction > 0:
                assert t_lat < c_lat, (dataset, mix_name)


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
