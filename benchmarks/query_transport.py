"""Threaded vs inline message plane on multi-chunk queries (wall clock).

Under the default :class:`~repro.rpc.InlineTransport` the coordinator
executes chunk subqueries one at a time on its own thread.  Under
``ThreadedTransport`` the ``coordinator->query_server`` edge fans the
subqueries out to per-server workers, so the query servers' DFS reads --
the realistic per-chunk access floor modelled by ``dfs_read_sleep`` --
overlap instead of serialising.  This benchmark times the same cold-cache
query batch on both transports and writes ``BENCH_query.json`` at the repo
root: per-transport rows plus a headline ``speedup`` (inline wall over
threaded wall).  Both systems are cross-checked for identical query
results before any timing is trusted.

Usage::

    python benchmarks/query_transport.py [--records N] [--queries Q]
        [--repeats R] [--sleep S] [--compress] [--out PATH]

``--compress`` flushes deflated chunks, so the timed cold reads pay the
inflate cost on the query path too.

CI smoke runs use small ``--records`` / ``--sleep`` to keep runtime low.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro import DataTuple, Waterwheel, small_config

DEFAULT_RECORDS = 16_000
DEFAULT_QUERIES = 6
DEFAULT_REPEATS = 3
#: Per-chunk DFS access floor (seconds).  Real HDFS random reads cost
#: milliseconds; pure in-process decode would be GIL-bound and hide the
#: fan-out win the threaded plane exists to deliver.
DEFAULT_READ_SLEEP = 0.003


def make_stream(n, seed=13):
    rng = random.Random(seed)
    clock = 0.0
    out = []
    for i in range(n):
        clock += rng.expovariate(1000.0)
        out.append(DataTuple(rng.randrange(0, 10_000), clock, payload=i))
    return out


def make_queries(n_queries, now, seed=17):
    """Wide temporal windows over varied key ranges: every query touches
    many historical chunks spread across the query servers."""
    rng = random.Random(seed)
    specs = [(0, 10_000, 0.0, now)]  # full scan
    while len(specs) < n_queries:
        lo = rng.randrange(0, 5_000)
        hi = lo + rng.randrange(2_000, 5_000)
        t_lo = rng.uniform(0.0, now / 4)
        specs.append((lo, min(hi, 10_000), t_lo, now))
    return specs


def build_system(stream, transport, read_sleep, compress=False):
    ww = Waterwheel(
        small_config(dfs_read_sleep=read_sleep, compress_chunks=compress),
        transport=transport,
    )
    ww.insert_many(stream)
    return ww


def run_batch(ww, specs, cold=True):
    """Run the query batch; with ``cold`` the chunk caches are dropped
    first so every repetition pays the full DFS read cost."""
    if cold:
        for server in ww.query_servers:
            server.clear_cache()
    started = time.perf_counter()
    results = [ww.query(*s) for s in specs]
    return time.perf_counter() - started, results


def check_equivalent(res_a, res_b):
    for a, b in zip(res_a, res_b):
        if sorted((t.key, t.ts) for t in a.tuples) != sorted(
            (t.key, t.ts) for t in b.tuples
        ):
            raise AssertionError("transports disagree on query results")
        if a.partial or b.partial:
            raise AssertionError("unexpected partial result on healthy cluster")


def run_experiment(n_records, n_queries, repeats, read_sleep, compress=False):
    stream = make_stream(n_records)
    now = max(t.ts for t in stream)
    specs = make_queries(n_queries, now)

    systems = {
        name: build_system(stream, name, read_sleep, compress)
        for name in ("inline", "threaded")
    }
    try:
        walls = {}
        reference = None
        for name, ww in systems.items():
            wall, results = run_batch(ww, specs)
            if reference is None:
                reference = results
            else:
                check_equivalent(reference, results)
            for _ in range(repeats - 1):
                s, _ = run_batch(ww, specs)
                wall = min(wall, s)
            walls[name] = wall
        chunk_count = systems["inline"].chunk_count
    finally:
        for ww in systems.values():
            ww.close()

    speedup = walls["inline"] / walls["threaded"]
    return {
        "records": n_records,
        "queries": n_queries,
        "repeats": repeats,
        "config": {
            "n_nodes": systems["inline"].config.n_nodes,
            "chunk_bytes": systems["inline"].config.chunk_bytes,
            "dfs_read_sleep": read_sleep,
            "compress_chunks": compress,
        },
        "chunk_count": chunk_count,
        "rows": [
            {
                "transport": name,
                "batch_wall_s": walls[name],
                "queries_per_s": n_queries / walls[name],
                "speedup_vs_inline": walls["inline"] / walls[name],
            }
            for name in ("inline", "threaded")
        ],
        "speedup": speedup,
    }


#: ``cold_scan`` I/O-path modes: the legacy whole-blob fetch baseline,
#: ranged span-batch reads, and ranged reads with the fetch pipeline and
#: assignment-aware prefetcher on.  All run on the threaded transport so
#: pipelining has workers to overlap on.
COLD_SCAN_MODES = (
    ("whole_blob", dict(ranged_reads=False)),
    (
        "ranged",
        dict(ranged_reads=True, fetch_pipeline_depth=0, prefetch_lookahead=0),
    ),
    (
        "ranged_pipelined",
        dict(ranged_reads=True, fetch_pipeline_depth=2, prefetch_lookahead=1),
    ),
)


def make_selective_queries(n_queries, now, seed=23):
    """Narrow key ranges over deep time windows: every query touches many
    historical chunks but needs only a few leaves from each -- the shape
    where whole-blob fetching wastes the most wire and where the
    prefetcher has a queue of per-chunk subqueries to look ahead into."""
    rng = random.Random(seed)
    specs = []
    while len(specs) < n_queries:
        lo = rng.randrange(0, 9_500)
        hi = min(lo + rng.randrange(200, 500), 10_000)
        t_lo = rng.uniform(0.0, now * 0.1)
        specs.append((lo, hi, t_lo, now))
    return specs


def run_cold_scan(n_records, n_queries, repeats, read_sleep, compress=False):
    """Cold selective queries: bytes on the wire and wall clock for
    whole-blob vs ranged vs ranged+pipelined reads (threaded transport)."""
    stream = make_stream(n_records)
    now = max(t.ts for t in stream)
    specs = make_selective_queries(n_queries, now)

    walls = {}
    bytes_served = {}
    reference = None
    chunk_count = 0
    config_row = {}
    for mode, overrides in COLD_SCAN_MODES:
        ww = Waterwheel(
            small_config(
                dfs_read_sleep=read_sleep,
                compress_chunks=compress,
                **overrides,
            ),
            transport="threaded",
        )
        try:
            ww.insert_many(stream)
            served_before = ww.dfs.total_bytes_served
            wall, results = run_batch(ww, specs)
            bytes_served[mode] = ww.dfs.total_bytes_served - served_before
            if reference is None:
                reference = results
            else:
                check_equivalent(reference, results)
            for _ in range(repeats - 1):
                s, _ = run_batch(ww, specs)
                wall = min(wall, s)
            walls[mode] = wall
            chunk_count = ww.chunk_count
            config_row = {
                "n_nodes": ww.config.n_nodes,
                "chunk_bytes": ww.config.chunk_bytes,
                "dfs_read_sleep": read_sleep,
                "compress_chunks": compress,
                "leaf_coalesce_gap_bytes": ww.config.leaf_coalesce_gap_bytes,
            }
        finally:
            ww.close()

    base = "whole_blob"
    return {
        "records": n_records,
        "queries": n_queries,
        "repeats": repeats,
        "transport": "threaded",
        "config": config_row,
        "chunk_count": chunk_count,
        "rows": [
            {
                "mode": mode,
                "bytes_transferred": bytes_served[mode],
                "batch_wall_s": walls[mode],
                "bytes_reduction_vs_whole_blob": (
                    bytes_served[base] / bytes_served[mode]
                ),
                "speedup_vs_whole_blob": walls[base] / walls[mode],
            }
            for mode, _overrides in COLD_SCAN_MODES
        ],
        "bytes_reduction": bytes_served[base] / bytes_served["ranged_pipelined"],
        "speedup": walls[base] / walls["ranged_pipelined"],
    }


def _parse_args(argv):
    records = DEFAULT_RECORDS
    queries = DEFAULT_QUERIES
    repeats = DEFAULT_REPEATS
    sleep = DEFAULT_READ_SLEEP
    compress = False
    section = "both"
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_query.json",
    )
    it = iter(argv)
    for arg in it:
        if arg == "--records":
            records = int(next(it))
        elif arg == "--queries":
            queries = int(next(it))
        elif arg == "--repeats":
            repeats = int(next(it))
        elif arg == "--sleep":
            sleep = float(next(it))
        elif arg == "--compress":
            compress = True
        elif arg == "--section":
            section = next(it)
            if section not in ("both", "query_transport", "cold_scan"):
                raise SystemExit(f"unknown section {section!r}")
        elif arg == "--out":
            out = next(it)
        else:
            raise SystemExit(f"unknown argument {arg!r}")
    return records, queries, repeats, sleep, compress, section, out


def _merge_sections(out, sections):
    """BENCH_query.json is shared with concurrent_queries.py: each
    benchmark owns one top-level section and preserves the others'."""
    merged = {}
    if os.path.exists(out):
        try:
            with open(out) as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = {}
        if isinstance(existing, dict) and "rows" not in existing:
            merged.update(existing)
    merged.update(sections)
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)


def main():
    records, queries, repeats, sleep, compress, section, out = _parse_args(
        sys.argv[1:]
    )
    sections = {}
    if section in ("both", "query_transport"):
        result = run_experiment(records, queries, repeats, sleep, compress)
        sections["query_transport"] = result
        print_table(
            f"Cold-cache query batch, {queries} queries over "
            f"{result['chunk_count']} chunks (wall clock, best of {repeats})",
            ["transport", "batch wall (s)", "queries/s", "speedup"],
            [
                (
                    row["transport"],
                    row["batch_wall_s"],
                    row["queries_per_s"],
                    row["speedup_vs_inline"],
                )
                for row in result["rows"]
            ],
        )
    if section in ("both", "cold_scan"):
        cold = run_cold_scan(records, queries, repeats, sleep, compress)
        sections["cold_scan"] = cold
        print_table(
            f"Cold selective scans, {queries} queries over "
            f"{cold['chunk_count']} chunks (threaded transport, "
            f"best of {repeats})",
            ["mode", "bytes on wire", "batch wall (s)", "bytes x", "speedup"],
            [
                (
                    row["mode"],
                    row["bytes_transferred"],
                    row["batch_wall_s"],
                    row["bytes_reduction_vs_whole_blob"],
                    row["speedup_vs_whole_blob"],
                )
                for row in cold["rows"]
            ],
        )
    _merge_sections(out, sections)
    summary = []
    if "query_transport" in sections:
        summary.append(
            f"threaded speedup {sections['query_transport']['speedup']:.2f}x"
        )
    if "cold_scan" in sections:
        summary.append(
            f"cold-scan bytes reduction "
            f"{sections['cold_scan']['bytes_reduction']:.2f}x, "
            f"speedup {sections['cold_scan']['speedup']:.2f}x"
        )
    print(f"\nwrote {out} ({'; '.join(summary)})")
    return sections


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
