"""Threaded vs inline message plane on multi-chunk queries (wall clock).

Under the default :class:`~repro.rpc.InlineTransport` the coordinator
executes chunk subqueries one at a time on its own thread.  Under
``ThreadedTransport`` the ``coordinator->query_server`` edge fans the
subqueries out to per-server workers, so the query servers' DFS reads --
the realistic per-chunk access floor modelled by ``dfs_read_sleep`` --
overlap instead of serialising.  This benchmark times the same cold-cache
query batch on both transports and writes ``BENCH_query.json`` at the repo
root: per-transport rows plus a headline ``speedup`` (inline wall over
threaded wall).  Both systems are cross-checked for identical query
results before any timing is trusted.

Usage::

    python benchmarks/query_transport.py [--records N] [--queries Q]
        [--repeats R] [--sleep S] [--compress] [--out PATH]

``--compress`` flushes deflated chunks, so the timed cold reads pay the
inflate cost on the query path too.

CI smoke runs use small ``--records`` / ``--sleep`` to keep runtime low.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro import DataTuple, Waterwheel, small_config

DEFAULT_RECORDS = 16_000
DEFAULT_QUERIES = 6
DEFAULT_REPEATS = 3
#: Per-chunk DFS access floor (seconds).  Real HDFS random reads cost
#: milliseconds; pure in-process decode would be GIL-bound and hide the
#: fan-out win the threaded plane exists to deliver.
DEFAULT_READ_SLEEP = 0.003


def make_stream(n, seed=13):
    rng = random.Random(seed)
    clock = 0.0
    out = []
    for i in range(n):
        clock += rng.expovariate(1000.0)
        out.append(DataTuple(rng.randrange(0, 10_000), clock, payload=i))
    return out


def make_queries(n_queries, now, seed=17):
    """Wide temporal windows over varied key ranges: every query touches
    many historical chunks spread across the query servers."""
    rng = random.Random(seed)
    specs = [(0, 10_000, 0.0, now)]  # full scan
    while len(specs) < n_queries:
        lo = rng.randrange(0, 5_000)
        hi = lo + rng.randrange(2_000, 5_000)
        t_lo = rng.uniform(0.0, now / 4)
        specs.append((lo, min(hi, 10_000), t_lo, now))
    return specs


def build_system(stream, transport, read_sleep, compress=False):
    ww = Waterwheel(
        small_config(dfs_read_sleep=read_sleep, compress_chunks=compress),
        transport=transport,
    )
    ww.insert_many(stream)
    return ww


def run_batch(ww, specs, cold=True):
    """Run the query batch; with ``cold`` the chunk caches are dropped
    first so every repetition pays the full DFS read cost."""
    if cold:
        for server in ww.query_servers:
            server.clear_cache()
    started = time.perf_counter()
    results = [ww.query(*s) for s in specs]
    return time.perf_counter() - started, results


def check_equivalent(res_a, res_b):
    for a, b in zip(res_a, res_b):
        if sorted((t.key, t.ts) for t in a.tuples) != sorted(
            (t.key, t.ts) for t in b.tuples
        ):
            raise AssertionError("transports disagree on query results")
        if a.partial or b.partial:
            raise AssertionError("unexpected partial result on healthy cluster")


def run_experiment(n_records, n_queries, repeats, read_sleep, compress=False):
    stream = make_stream(n_records)
    now = max(t.ts for t in stream)
    specs = make_queries(n_queries, now)

    systems = {
        name: build_system(stream, name, read_sleep, compress)
        for name in ("inline", "threaded")
    }
    try:
        walls = {}
        reference = None
        for name, ww in systems.items():
            wall, results = run_batch(ww, specs)
            if reference is None:
                reference = results
            else:
                check_equivalent(reference, results)
            for _ in range(repeats - 1):
                s, _ = run_batch(ww, specs)
                wall = min(wall, s)
            walls[name] = wall
        chunk_count = systems["inline"].chunk_count
    finally:
        for ww in systems.values():
            ww.close()

    speedup = walls["inline"] / walls["threaded"]
    return {
        "records": n_records,
        "queries": n_queries,
        "repeats": repeats,
        "config": {
            "n_nodes": systems["inline"].config.n_nodes,
            "chunk_bytes": systems["inline"].config.chunk_bytes,
            "dfs_read_sleep": read_sleep,
            "compress_chunks": compress,
        },
        "chunk_count": chunk_count,
        "rows": [
            {
                "transport": name,
                "batch_wall_s": walls[name],
                "queries_per_s": n_queries / walls[name],
                "speedup_vs_inline": walls["inline"] / walls[name],
            }
            for name in ("inline", "threaded")
        ],
        "speedup": speedup,
    }


def _parse_args(argv):
    records = DEFAULT_RECORDS
    queries = DEFAULT_QUERIES
    repeats = DEFAULT_REPEATS
    sleep = DEFAULT_READ_SLEEP
    compress = False
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_query.json",
    )
    it = iter(argv)
    for arg in it:
        if arg == "--records":
            records = int(next(it))
        elif arg == "--queries":
            queries = int(next(it))
        elif arg == "--repeats":
            repeats = int(next(it))
        elif arg == "--sleep":
            sleep = float(next(it))
        elif arg == "--compress":
            compress = True
        elif arg == "--out":
            out = next(it)
        else:
            raise SystemExit(f"unknown argument {arg!r}")
    return records, queries, repeats, sleep, compress, out


def main():
    records, queries, repeats, sleep, compress, out = _parse_args(sys.argv[1:])
    result = run_experiment(records, queries, repeats, sleep, compress)
    print_table(
        f"Cold-cache query batch, {queries} queries over "
        f"{result['chunk_count']} chunks (wall clock, best of {repeats})",
        ["transport", "batch wall (s)", "queries/s", "speedup"],
        [
            (
                row["transport"],
                row["batch_wall_s"],
                row["queries_per_s"],
                row["speedup_vs_inline"],
            )
            for row in result["rows"]
        ],
    )
    # BENCH_query.json is shared with concurrent_queries.py: each
    # benchmark owns one top-level section and preserves the other's.
    merged = {}
    if os.path.exists(out):
        try:
            with open(out) as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = {}
        if isinstance(existing, dict) and "rows" not in existing:
            merged.update(existing)
    merged["query_transport"] = result
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)
    print(f"\nwrote {out} (threaded speedup {result['speedup']:.2f}x)")
    return result


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
