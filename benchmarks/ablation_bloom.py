"""Ablation: temporal bloom sketches on vs. off.

The per-leaf mini-range bloom filters (paper Section IV-B) let subqueries
skip leaves with no temporally matching tuples.  This ablation ingests a
stream where key and time are uncorrelated (the hard case: every chunk's
key range matches, only the sketch can prune), then compares narrow
temporal queries with ``use_temporal_sketch`` on vs. off.
"""

from __future__ import annotations

import random
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro import DataTuple, Waterwheel, small_config

N_TUPLES = 40_000
N_QUERIES = 30
WINDOW_SECONDS = 2.0


def _run_variant(use_sketch: bool):
    from repro.simulation import CostModel

    # Fixed (jitter-free) DFS access latency: the two variants then differ
    # only by the work the sketches save, not by unrelated latency draws.
    costs = CostModel().scaled(
        dfs_access_latency_min=0.005, dfs_access_latency_max=0.005
    )
    cfg = small_config(
        key_lo=0,
        key_hi=1 << 20,
        n_nodes=4,
        chunk_bytes=128 * 1024,
        tuple_size=32,
        use_temporal_sketch=use_sketch,
        sketch_granularity=1.0,
        costs=costs,
    )
    ww = Waterwheel(cfg)
    rng = random.Random(61)
    now = 0.0
    for i in range(N_TUPLES):
        now = i * 0.01
        ww.insert(DataTuple(rng.randrange(0, 1 << 20), now, payload=i, size=32))
    ww.flush_all()
    qrng = random.Random(62)
    latencies = []
    bytes_read = []
    leaves_skipped = []
    results = []
    for _ in range(N_QUERIES):
        t_lo = qrng.uniform(0.0, now - WINDOW_SECONDS)
        k_lo = qrng.randrange(0, (1 << 20) - (1 << 17))
        res = ww.query(k_lo, k_lo + (1 << 17), t_lo, t_lo + WINDOW_SECONDS)
        latencies.append(res.latency * 1000)
        bytes_read.append(res.bytes_read)
        leaves_skipped.append(res.leaves_skipped)
        results.append(sorted(t.payload for t in res.tuples))
    return mean(latencies), mean(bytes_read), mean(leaves_skipped), results


def run_experiment():
    on = _run_variant(True)
    off = _run_variant(False)
    assert on[3] == off[3], "sketches changed query results!"
    return [
        ("sketch on", on[0], on[1], on[2]),
        ("sketch off", off[0], off[1], off[2]),
    ]


def main():
    print_table(
        "Ablation: temporal bloom sketches (narrow time window queries)",
        ["variant", "latency (ms)", "bytes read", "leaves skipped"],
        run_experiment(),
    )


def test_ablation_bloom_sketches(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    on = rows[0]
    off = rows[1]
    assert on[3] > 0  # sketches actually skipped leaves
    assert off[3] == 0
    assert on[2] < 0.75 * off[2]  # meaningfully fewer bytes read
    assert on[1] < off[1]  # and lower latency


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
