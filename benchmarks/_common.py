"""Shared helpers for the benchmark harness.

Every ``figNN_*.py`` / ``tableN_*.py`` file in this directory reproduces one
table or figure of the paper's evaluation (Section VI).  Each file exposes:

* ``run_experiment(...)`` -- the parameter sweep, returning printable rows;
* ``main()`` -- prints the paper-style table (run the file directly);
* ``test_*`` functions -- pytest-benchmark entry points that time the
  experiment once and assert the paper's qualitative claims (who wins, in
  which direction a curve bends), so a regression in the reproduction fails
  loudly.

Absolute numbers are simulated seconds / tuples-per-simulated-second from
the shared cost model; see EXPERIMENTS.md for the paper-vs-measured notes.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Iterable, List, Optional, Sequence


def fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1_000_000:
            return f"{value / 1e6:.2f}M"
        if abs(value) >= 10_000:
            return f"{value / 1e3:.1f}K"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def _pop_metrics_flag(argv: List[str]) -> "tuple[bool, Optional[str]]":
    """Strip ``--metrics`` / ``--metrics=PATH`` / ``--metrics PATH`` from
    ``argv`` in place; returns (enabled, json path or None)."""
    for i, arg in enumerate(argv):
        if arg == "--metrics":
            path = None
            if i + 1 < len(argv) and not argv[i + 1].startswith("-"):
                path = argv.pop(i + 1)
            argv.pop(i)
            return True, path
        if arg.startswith("--metrics="):
            argv.pop(i)
            return True, arg.split("=", 1)[1]
    return False, None


def pop_transport_flag(argv: List[str]) -> Optional[str]:
    """Strip ``--transport NAME`` / ``--transport=NAME`` from ``argv`` in
    place; returns the transport name (``inline`` / ``threaded``) or None.
    Benchmarks pass it to ``Waterwheel(..., transport=...)`` so the same
    sweep can be timed on either message plane."""
    for i, arg in enumerate(argv):
        if arg == "--transport":
            if i + 1 >= len(argv):
                raise SystemExit("--transport needs a value (inline | threaded)")
            name = argv.pop(i + 1)
            argv.pop(i)
            return name
        if arg.startswith("--transport="):
            argv.pop(i)
            return arg.split("=", 1)[1]
    return None


def bench_entry(main_fn: Callable[[], object]) -> object:
    """Run a benchmark's ``main()``, honouring a ``--metrics[=PATH]`` flag.

    With the flag, the observability registry (and tracing, which feeds the
    per-stage ``query.stage.*_wall`` histograms) is enabled around the run;
    afterwards the registry snapshot -- the stage-latency breakdown -- is
    written to PATH as JSON (default ``<script>.metrics.json``) and
    summarised on stdout.  Without the flag, behaviour and overhead are
    exactly as before.
    """
    enabled, path = _pop_metrics_flag(sys.argv)
    if not enabled:
        return main_fn()
    from repro import obs

    obs.enable()
    try:
        result = main_fn()
    finally:
        obs.disable()
    snap = obs.registry().snapshot()
    if path is None:
        path = sys.argv[0].rsplit(".py", 1)[0] + ".metrics.json"
    with open(path, "w") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
    stages = sorted(k for k in snap if k.startswith("query.stage."))
    print(f"\n--metrics: wrote {len(snap)} instruments to {path}")
    for name in stages:
        d = snap[name]
        print(
            f"  {name}: n={d['count']} mean={d['mean']:.6g}s "
            f"p95={d['p95']:.6g}s"
        )
    return result
