"""Shared helpers for the benchmark harness.

Every ``figNN_*.py`` / ``tableN_*.py`` file in this directory reproduces one
table or figure of the paper's evaluation (Section VI).  Each file exposes:

* ``run_experiment(...)`` -- the parameter sweep, returning printable rows;
* ``main()`` -- prints the paper-style table (run the file directly);
* ``test_*`` functions -- pytest-benchmark entry points that time the
  experiment once and assert the paper's qualitative claims (who wins, in
  which direction a curve bends), so a regression in the reproduction fails
  loudly.

Absolute numbers are simulated seconds / tuples-per-simulated-second from
the shared cost model; see EXPERIMENTS.md for the paper-vs-measured notes.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1_000_000:
            return f"{value / 1e6:.2f}M"
        if abs(value) >= 10_000:
            return f"{value / 1e3:.1f}K"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
