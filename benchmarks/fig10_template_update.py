"""Figure 10: template update latency vs. tree fill percentage.

Fill the template B+ tree to {20%, 40%, ..., 100%} of its capacity with
skewed keys (so the rebuild has real rebalancing to do), then measure the
wall-clock latency of one ``update_template()`` call (Eq. 2-3), on both
datasets.

Paper's claims: update latency stays in the low-millisecond range and
grows with the number of tuples in the tree (more tuples are moved across
leaves during the rebuild).
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro.btree import TemplateBTree
from repro.workloads import NetworkGenerator, TDriveGenerator

CAPACITY = 50_000  # tuples at 100% fill
FILL_LEVELS = (0.2, 0.4, 0.6, 0.8, 1.0)
REPEATS = 3


def _datasets():
    return {
        "T-Drive": TDriveGenerator(n_taxis=400, seed=5).records(CAPACITY),
        "Network": NetworkGenerator(seed=5).records(CAPACITY),
    }


def run_experiment():
    """Rows: (dataset, fill %, mean update latency in ms)."""
    rows = []
    for dataset, data in _datasets().items():
        for fill in FILL_LEVELS:
            n = int(CAPACITY * fill)
            latencies = []
            for repeat in range(REPEATS):
                tree = TemplateBTree(
                    0, 1 << 32,
                    n_leaves=max(1, CAPACITY // 256),
                    fanout=64,
                    skew_threshold=1e9,  # only the explicit update below
                )
                for t in data[:n]:
                    tree.insert(t)
                latencies.append(tree.update_template() * 1000.0)
            rows.append((dataset, int(fill * 100), mean(latencies)))
    return rows


def main():
    rows = run_experiment()
    print_table(
        "Figure 10: template update latency vs fill percentage",
        ["dataset", "fill %", "update latency (ms)"],
        rows,
    )


def test_fig10_template_update_latency(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for dataset in ("T-Drive", "Network"):
        series = [(fill, lat) for d, fill, lat in rows if d == dataset]
        series.sort()
        # Latency grows with fill level (more tuples moved).
        assert series[-1][1] > series[0][1], dataset
        # Updates stay cheap relative to the work they save (the paper
        # reports <10 ms in Java; pure Python is roughly an order slower,
        # see EXPERIMENTS.md).
        assert all(lat < 500.0 for _fill, lat in series), dataset


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
