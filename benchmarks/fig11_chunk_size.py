"""Figure 11: effects of data chunk size.

(a) System insertion throughput vs. chunk size (4-256 MB) from the shared
    pipeline model at the paper's 12-node topology: small chunks pay the
    fixed flush cost too often, very large chunks mean a deeper/colder
    in-memory tree per insert -- throughput peaks in between (the paper
    peaks at 32 MB and picks 16 MB as the default).

(b) Subquery latency vs. chunk size at key selectivity {0.01, 0.05, 0.1},
    measured by executing real subqueries on real serialized chunks via a
    query server with a cold cache.  Bytes read scale with selectivity x
    chunk size, so latency grows with chunk size; below a certain size the
    per-access DFS latency floor dominates and shrinking chunks further
    stops helping.  (Our sweep covers 0.25-8 MB -- Python object overhead
    makes materializing 256 MB chunks impractical -- the governing ratios
    are identical; see EXPERIMENTS.md.)
"""

from __future__ import annotations

import random
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro.core.config import small_config
from repro.core.model import DataTuple, KeyInterval, SubQuery, TimeInterval
from repro.core.query_server import QueryServer
from repro.simulation import Cluster, CostModel, PipelineTopology, system_insertion_rate
from repro.storage import SimulatedDFS, serialize_chunk

MB = 1 << 20
MODEL_SIZES_MB = (4, 8, 16, 32, 64, 128, 256)
REAL_SIZES_MB = (0.25, 0.5, 1, 2, 4, 8, 16)
SELECTIVITIES = (0.01, 0.05, 0.1)
KEY_DOMAIN = 1 << 24
QUERIES_PER_POINT = 8
_SERIALIZED_TUPLE_BYTES = 21  # measured: 16-byte (key, ts) + pickled payload


def run_fig11a():
    """Rows: (chunk MB, insertion throughput tuples/s)."""
    costs = CostModel()
    topology = PipelineTopology(n_nodes=12)
    return [
        (mb, system_insertion_rate(costs, topology, 50, mb * MB))
        for mb in MODEL_SIZES_MB
    ]


def _build_chunk(target_bytes, seed):
    n = max(1000, int(target_bytes / _SERIALIZED_TUPLE_BYTES))
    rng = random.Random(seed)
    data = sorted(
        (DataTuple(rng.randrange(0, KEY_DOMAIN), i * 0.001, payload=i) for i in range(n)),
        key=lambda t: t.key,
    )
    leaves = []
    for start in range(0, n, 512):
        run = data[start : start + 512]
        leaves.append(([t.key for t in run], run))
    return serialize_chunk(leaves, sketch_granularity=1.0)


def run_fig11b():
    """Rows: (chunk MB, selectivity, mean cold subquery latency ms)."""
    cfg = small_config(key_lo=0, key_hi=KEY_DOMAIN)
    rows = []
    for mb in REAL_SIZES_MB:
        blob = _build_chunk(int(mb * MB), seed=int(mb * 100))
        cluster = Cluster(12, seed=1)
        dfs = SimulatedDFS(cluster, cfg.costs, 3)
        dfs.put("chunk", blob)
        rng = random.Random(42)
        for selectivity in SELECTIVITIES:
            width = int(KEY_DOMAIN * selectivity)
            latencies = []
            for _ in range(QUERIES_PER_POINT):
                lo = rng.randrange(0, KEY_DOMAIN - width)
                sq = SubQuery(
                    query_id=1,
                    keys=KeyInterval(lo, lo + width),
                    times=TimeInterval(0.0, 1e9),
                    predicate=None,
                    chunk_id="chunk",
                )
                # Cold leaf cache, warm template: the chunk prefix is the
                # on-disk template, which steady-state query servers keep
                # cached (Section IV-B's caching units).
                server = QueryServer(0, node_id=5, config=cfg, dfs=dfs)
                server.prefetch_prefix("chunk")
                latencies.append(server.execute(sq).cost * 1000.0)
            rows.append((mb, selectivity, mean(latencies)))
    return rows


def main():
    print_table(
        "Figure 11(a): insertion throughput vs chunk size (12 nodes)",
        ["chunk (MB)", "tuples/s"],
        run_fig11a(),
    )
    print_table(
        "Figure 11(b): cold subquery latency vs chunk size",
        ["chunk (MB)", "key selectivity", "latency (ms)"],
        run_fig11b(),
    )


def test_fig11a_throughput_peak(benchmark):
    rows = benchmark.pedantic(run_fig11a, rounds=1, iterations=1)
    rates = [r for _mb, r in rows]
    peak = rates.index(max(rates))
    # Peak strictly inside the sweep: rising then falling (paper: 32 MB).
    assert 0 < peak < len(rates) - 1
    assert rates[0] < max(rates)
    assert rates[-1] < max(rates)


def test_fig11b_latency_vs_chunk_size(benchmark):
    rows = benchmark.pedantic(run_fig11b, rounds=1, iterations=1)
    for selectivity in SELECTIVITIES:
        series = [(mb, lat) for mb, s, lat in rows if s == selectivity]
        series.sort()
        # Latency increases with chunk size; at the lowest selectivity the
        # access-latency floor flattens the curve (as in the paper).
        growth = 2.0 if selectivity >= 0.05 else 1.15
        assert series[-1][1] > growth * series[0][1], selectivity
        # ... but shrinking chunks below ~1 MB barely helps: the DFS
        # access-latency floor dominates (the paper's diminishing returns
        # below 16 MB at its scale).
        small, one_mb = series[0][1], dict(series)[1]
        assert small > 0.25 * one_mb, selectivity
    # Higher selectivity costs more at the largest chunk size.
    largest = max(mb for mb, _s, _l in rows)
    at_largest = {s: lat for mb, s, lat in rows if mb == largest}
    assert at_largest[0.1] > at_largest[0.01]


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
