"""Ablation: query-server cache size (the paper fixes 1 GB per server).

Section IV-B keeps frequently accessed chunk data in a per-server LRU
cache because DFS reads dominate subquery cost.  This sweep ingests a
working set several times larger than the smallest cache and replays a
Zipf-like repeating query mix, reporting steady-state latency and the
bytes fetched per query at each cache size.

Expected shape: latency falls steeply while the cache is smaller than the
hot working set, then flattens once everything hot fits -- which is why
the paper can simply provision 1 GB and move on.
"""

from __future__ import annotations

import random
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro import Waterwheel, small_config
from repro.workloads import NetworkGenerator

N_TUPLES = 50_000
N_QUERIES = 60
CACHE_SIZES_KB = (32, 64, 128, 256, 512, 1024, 4096)


def run_experiment():
    """Rows: (cache KB, mean latency ms, bytes/query, hit rate %)."""
    gen = NetworkGenerator(records_per_second=500.0, seed=101)
    key_lo, key_hi = gen.key_domain
    data = gen.records(N_TUPLES)
    now = max(t.ts for t in data)
    # A repeating mix of hot query templates (Zipf-ish re-use).
    rng = random.Random(102)
    templates = []
    for _ in range(10):
        lo, hi = gen.random_ip_range(rng, selectivity=0.2)
        t_lo = rng.uniform(0.0, now * 0.7)
        templates.append((lo, hi, t_lo, t_lo + now * 0.3))

    rows = []
    for cache_kb in CACHE_SIZES_KB:
        ww = Waterwheel(
            small_config(
                key_lo=key_lo,
                key_hi=key_hi,
                n_nodes=4,
                chunk_bytes=128 * 1024,
                tuple_size=50,
                cache_bytes=cache_kb * 1024,
            )
        )
        ww.insert_many(data)
        ww.flush_all()
        # Warm-up pass, then measure.
        for i in range(N_QUERIES):
            lo, hi, t_lo, t_hi = templates[i % len(templates)]
            ww.query(lo, hi, t_lo, t_hi)
        latencies, nbytes = [], []
        for i in range(N_QUERIES):
            lo, hi, t_lo, t_hi = templates[i % len(templates)]
            res = ww.query(lo, hi, t_lo, t_hi)
            latencies.append(res.latency * 1000)
            nbytes.append(res.bytes_read)
        rows.append((cache_kb, mean(latencies), mean(nbytes)))
    return rows


def main():
    print_table(
        "Ablation: query-server cache size (repeating query mix)",
        ["cache (KB)", "latency (ms)", "bytes/query"],
        run_experiment(),
    )


def test_ablation_cache_size(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_size = {kb: (lat, nb) for kb, lat, nb in rows}
    smallest = by_size[CACHE_SIZES_KB[0]]
    largest = by_size[CACHE_SIZES_KB[-1]]
    # A big cache beats a tiny one decisively on both metrics.
    assert largest[0] < 0.6 * smallest[0]
    assert largest[1] < 0.2 * smallest[1]
    # Diminishing returns: the last doubling changes latency < 25%.
    second_largest = by_size[CACHE_SIZES_KB[-2]]
    assert abs(largest[0] - second_largest[0]) < 0.25 * second_largest[0]


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
