"""Table I: capability comparison of the three system families.

The paper's Table I is qualitative: key-range query efficiency, time-range
query efficiency, and insertion rate for HBase/levelDB-style KV stores,
Druid/Gorilla/BTrDb-style timeseries stores, and Waterwheel.  This harness
*measures* each cell on the shared substrate: a system supports a query
dimension efficiently (check) when narrowing the selectivity on that
dimension actually reduces its latency, and its insertion class comes from
the pipeline-model rate.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro import Waterwheel, small_config
from repro.baselines import DruidLike, HBaseLike
from repro.simulation import PipelineTopology
from repro.workloads import NetworkGenerator

N_TUPLES = 40_000
N_QUERIES = 20
#: Constraining a dimension must cut the (transfer-adjusted) latency of an
#: otherwise-unconstrained scan by at least this factor for the dimension
#: to count as efficiently supported.
EFFICIENCY_FACTOR = 2.0


def _mean_latency(
    system, costs, key_frac, time_frac, key_domain, now, seed=51, reset=None
):
    """Mean cold-cache query latency minus the result-transfer term, so the
    metric reflects *search* work rather than answer size or cache state."""
    import random

    rng = random.Random(seed)
    key_lo_dom, key_hi_dom = key_domain
    span = key_hi_dom - key_lo_dom
    width = max(1, int(span * key_frac))
    t_width = now * time_frac
    samples = []
    for _ in range(N_QUERIES):
        if reset is not None:
            reset()
        k_lo = key_lo_dom + rng.randrange(0, max(1, span - width))
        t_lo = rng.uniform(0, max(1e-9, now - t_width))
        res = system.query(k_lo, k_lo + width, t_lo, t_lo + t_width)
        transfer = costs.network_transfer(sum(t.size for t in res.tuples))
        samples.append(max(0.0, res.latency - transfer))
    return mean(samples)


def run_experiment():
    """Rows: (system, key-range, time-range, insertion rate tuples/s)."""
    gen = NetworkGenerator(records_per_second=200.0, seed=51)
    data = gen.records(N_TUPLES)
    now = max(t.ts for t in data)
    key_domain = gen.key_domain
    topology = PipelineTopology(12)

    ww = Waterwheel(
        small_config(
            key_lo=key_domain[0],
            key_hi=key_domain[1],
            n_nodes=6,
            indexing_per_node=2,
            chunk_bytes=64 * 1024,
            tuple_size=50,
        )
    )
    ww.insert_many(data)
    hbase = HBaseLike(*key_domain, n_regions=8, memtable_bytes=128 * 1024)
    hbase.insert_many(data)
    druid = DruidLike(segment_duration=now / 40.0, n_historicals=8)
    druid.insert_many(data)

    from repro.core.partitioning import KeyPartition
    from repro.simulation import CostModel, system_insertion_rate

    partition = KeyPartition.from_sample(
        *key_domain, topology.n_indexing, [t.key for t in data]
    )
    loads = [0.0] * topology.n_indexing
    for t in data:
        loads[partition.server_for(t.key)] += 1.0
    rates = {
        "waterwheel": system_insertion_rate(
            CostModel(), topology, 50, 16 << 20, shares=loads
        ),
        "hbase-like": hbase.insertion_rate(topology, 50),
        "druid-like": druid.insertion_rate(topology, 50),
    }

    rows = []
    checks = {}
    for name, system in (
        ("hbase-like", hbase),
        ("druid-like", druid),
        ("waterwheel", ww),
    ):
        costs = ww.config.costs
        reset = None
        if system is ww:
            reset = lambda: [qs.clear_cache() for qs in ww.query_servers]  # noqa: E731
        # Baseline: the unconstrained scan (whole key domain, whole stream).
        full_scan = _mean_latency(
            system, costs, 1.0, 1.0, key_domain, now, reset=reset
        )
        # Key-range efficiency: does constraining only the key dimension
        # beat the full scan?
        narrow_key = _mean_latency(
            system, costs, 0.02, 1.0, key_domain, now, reset=reset
        )
        key_efficient = full_scan > EFFICIENCY_FACTOR * narrow_key
        # Time-range efficiency: does constraining only the time dimension
        # beat the full scan?
        narrow_time = _mean_latency(
            system, costs, 1.0, 0.02, key_domain, now, reset=reset
        )
        time_efficient = full_scan > EFFICIENCY_FACTOR * narrow_time
        checks[name] = (key_efficient, time_efficient)
        rows.append(
            (
                name,
                "yes" if key_efficient else "no",
                "yes" if time_efficient else "no",
                rates[name],
            )
        )
    return rows, checks


def main():
    rows, _checks = run_experiment()
    print_table(
        "Table I: measured capability matrix (Network-like workload)",
        ["system", "key range", "time range", "insertion rate (tuples/s)"],
        rows,
    )


def test_table1_capabilities(benchmark):
    rows, checks = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # HBase: key-range yes, time-range no.
    assert checks["hbase-like"] == (True, False)
    # Druid: key-range no, time-range yes.
    assert checks["druid-like"] == (False, True)
    # Waterwheel: both.
    assert checks["waterwheel"] == (True, True)
    rates = {name: rate for name, _k, _t, rate in rows}
    assert rates["waterwheel"] > 5 * rates["hbase-like"]
    assert rates["waterwheel"] > 3 * rates["druid-like"]


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
