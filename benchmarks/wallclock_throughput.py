"""Wall-clock throughput of the pure-Python prototype.

The figure benches report simulated rates from the cost model; this one
reports what the *prototype itself* sustains in real time on one CPU --
tree inserts per second, end-to-end facade inserts per second, and query
rates -- so readers can calibrate expectations (the paper's repro band
notes throughput goals are hard to hit in Python; this quantifies it).

Unlike the figure benches, these numbers use pytest-benchmark's normal
multi-round timing.
"""

from __future__ import annotations

import random
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro import DataTuple, Waterwheel, small_config
from repro.btree import TemplateBTree

N_TUPLES = 20_000


def _tuples(n=N_TUPLES, seed=7):
    rng = random.Random(seed)
    return [
        DataTuple(rng.randrange(0, 1 << 20), i * 0.001, payload=i, size=32)
        for i in range(n)
    ]


def tree_insert_run(data):
    tree = TemplateBTree(0, 1 << 20, n_leaves=max(1, len(data) // 256), fanout=64)
    for t in data:
        tree.insert(t)
    return tree


def system_insert_run(data, transport=None):
    ww = Waterwheel(
        small_config(key_lo=0, key_hi=1 << 20, chunk_bytes=64 * 1024),
        transport=transport,
    )
    ww.insert_many(data)
    return ww


def query_run(ww, specs):
    total = 0
    for k_lo, k_hi, t_lo, t_hi in specs:
        total += len(ww.query(k_lo, k_hi, t_lo, t_hi))
    return total


def main():
    import time

    from _common import pop_transport_flag

    transport = pop_transport_flag(sys.argv)
    data = _tuples()
    started = time.perf_counter()
    tree_insert_run(data)
    tree_rate = len(data) / (time.perf_counter() - started)

    started = time.perf_counter()
    ww = system_insert_run(data, transport)
    system_rate = len(data) / (time.perf_counter() - started)

    rng = random.Random(9)
    specs = [
        (lo := rng.randrange(0, (1 << 20) - (1 << 17)), lo + (1 << 17), 0.0, 20.0)
        for _ in range(50)
    ]
    started = time.perf_counter()
    query_run(ww, specs)
    query_rate = len(specs) / (time.perf_counter() - started)

    print_table(
        "Prototype wall-clock rates (single CPU, pure Python)"
        + (f" [{transport} transport]" if transport else ""),
        ["metric", "rate"],
        [
            ("template tree inserts/s", tree_rate),
            ("end-to-end facade inserts/s", system_rate),
            ("queries/s (12.5% key selectivity)", query_rate),
        ],
    )


def test_wallclock_tree_insert(benchmark):
    data = _tuples()
    benchmark(tree_insert_run, data)
    per_op = benchmark.stats.stats.mean / len(data)
    # Sanity floor: a pure-Python template tree insert stays under 50 us.
    assert per_op < 50e-6


def test_wallclock_system_insert(benchmark):
    data = _tuples(5_000)
    benchmark.pedantic(system_insert_run, args=(data,), rounds=3, iterations=1)
    per_op = benchmark.stats.stats.mean / len(data)
    # Full pipeline (dispatch + log + index + flush) under 150 us/tuple.
    assert per_op < 150e-6


def test_wallclock_query(benchmark):
    data = _tuples()
    ww = system_insert_run(data)
    rng = random.Random(9)
    specs = [
        (lo := rng.randrange(0, (1 << 20) - (1 << 17)), lo + (1 << 17), 0.0, 20.0)
        for _ in range(20)
    ]
    benchmark.pedantic(query_run, args=(ww, specs), rounds=3, iterations=1)
    per_query = benchmark.stats.stats.mean / len(specs)
    assert per_query < 0.5  # each query completes in under 500 ms wall


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
