"""Figure 15: insertion throughput vs. HBase-like and Druid-like stores.

The paper reports Waterwheel sustaining >1.5 M tuples/s on 12 nodes -- an
order of magnitude above HBase and Druid -- because its global partitioning
isolates fresh from historical data and never re-merges anything.

Here, HBase's handicap is *measured*: the real LSM stores ingest a sample
of each dataset and their observed write amplification (every byte
re-merged once per level it descends) feeds the shared pipeline model.
Druid is charged its realtime segment-building CPU.  Waterwheel's shares
come from the real adaptive partitioner against the observed key
histogram.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table

from repro.baselines import DruidLike, HBaseLike
from repro.core.partitioning import KeyPartition
from repro.simulation import CostModel, PipelineTopology, system_insertion_rate
from repro.workloads import NetworkGenerator, TDriveGenerator

N_SAMPLE = 50_000
N_NODES = 12


def _datasets():
    return {
        "T-Drive": (TDriveGenerator(n_taxis=400, seed=41), 36),
        "Network": (NetworkGenerator(seed=41), 50),
    }


def run_experiment():
    """Rows: (dataset, waterwheel, hbase-like, druid-like) tuples/s."""
    costs = CostModel()
    topology = PipelineTopology(N_NODES)
    rows = []
    for dataset, (gen, tuple_size) in _datasets().items():
        data = gen.records(N_SAMPLE)
        key_lo, key_hi = gen.key_domain

        # Waterwheel: shares from the real quantile-fitted partition.
        partition = KeyPartition.from_sample(
            key_lo, key_hi, topology.n_indexing, [t.key for t in data]
        )
        loads = [0.0] * topology.n_indexing
        for t in data:
            loads[partition.server_for(t.key)] += 1.0
        shares = loads
        ww_rate = system_insertion_rate(
            costs, topology, tuple_size, 16 << 20, shares=shares
        )

        # HBase-like: real LSM ingestion measures write amplification.
        hbase = HBaseLike(key_lo, key_hi, n_regions=8, memtable_bytes=64 * 1024)
        hbase.insert_many(data)
        hbase_rate = hbase.insertion_rate(topology, tuple_size)

        druid = DruidLike()
        druid_rate = druid.insertion_rate(topology, tuple_size)

        rows.append((dataset, ww_rate, hbase_rate, druid_rate))
    return rows


def main():
    rows = run_experiment()
    print_table(
        f"Figure 15: insertion throughput on {N_NODES} nodes (tuples/s)",
        ["dataset", "waterwheel", "hbase-like", "druid-like"],
        rows,
    )
    for dataset, ww, hb, dr in rows:
        print(
            f"{dataset}: waterwheel is {ww / hb:.1f}x hbase-like, "
            f"{ww / dr:.1f}x druid-like"
        )


def test_fig15_insertion_comparison(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for dataset, ww, hb, dr in rows:
        # Paper: over a million tuples/s and an order of magnitude above
        # both baselines.
        assert ww > 1_000_000, dataset
        assert ww > 5 * hb, dataset
        assert ww > 3 * dr, dataset


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
