"""Ablation: historical chunk rollup (catalog fragmentation).

Forced small flushes (shutdowns, repartitions, late buffers) fragment the
chunk catalog; every query then pays a per-chunk subquery with its own DFS
access.  Rolling adjacent small chunks into larger ones (an *offline* pass
-- never merging fresh into historical data, so unlike LSM compaction it
costs ingest nothing) cuts the subquery count.

Reported: chunk count, mean subqueries per query, and cold-cache query
latency before and after a rollup pass.
"""

from __future__ import annotations

import random
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import mean, print_table

from repro import Waterwheel, small_config
from repro.core.compaction import ChunkCompactor
from repro.workloads import QueryGenerator

N_BATCHES = 14
BATCH = 400
N_QUERIES = 40


def _fragmented_system():
    ww = Waterwheel(small_config(n_nodes=4, chunk_bytes=256 * 1024))
    rng = random.Random(111)
    ts = 0.0
    for _ in range(N_BATCHES):
        for _ in range(BATCH):
            ww.insert_record(rng.randrange(0, 10_000), ts, payload=None, size=32)
            ts += 0.01
        ww.flush_all()  # forced small flushes fragment the catalog
    return ww, ts


def _measure(ww, now):
    qgen = QueryGenerator(0, 10_000, seed=112)
    specs = qgen.batch(N_QUERIES, 0.3, "historic_5m", now=now)
    latencies, subqueries, results = [], [], []
    for spec in specs:
        for qs in ww.query_servers:
            qs.clear_cache()
        res = ww.query(spec.key_lo, spec.key_hi, spec.t_lo, spec.t_hi)
        latencies.append(res.latency * 1000)
        subqueries.append(res.subquery_count)
        results.append(len(res))
    return mean(latencies), mean(subqueries), results


def run_experiment():
    """Rows: (state, chunks, mean subqueries/query, mean latency ms)."""
    ww, now = _fragmented_system()
    before_lat, before_sq, before_results = _measure(ww, now)
    before_chunks = ww.chunk_count
    ChunkCompactor(ww, target_bytes=1 << 20).rollup()
    after_lat, after_sq, after_results = _measure(ww, now)
    assert before_results == after_results, "rollup changed query results!"
    return [
        ("fragmented", before_chunks, before_sq, before_lat),
        ("rolled up", ww.chunk_count, after_sq, after_lat),
    ]


def main():
    print_table(
        "Ablation: chunk rollup on a fragmented catalog (cold caches)",
        ["state", "chunks", "subqueries/query", "latency (ms)"],
        run_experiment(),
    )


def test_ablation_compaction(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    fragmented, rolled = rows
    assert rolled[1] < fragmented[1]  # fewer chunks
    assert rolled[2] < fragmented[2]  # fewer subqueries per query
    assert rolled[3] < fragmented[3]  # lower cold-cache latency


if __name__ == "__main__":
    from _common import bench_entry

    bench_entry(main)
