#!/usr/bin/env python
"""Secondary attribute indexes and deployment monitoring.

The paper's future work (Section VIII) proposes secondary indexes "by
bitmap and bloom filters" on non-key, non-temporal attributes.  This
walkthrough configures one on the URL attribute of a Network-like stream,
compares an attribute query against plain post-filtering, and finishes
with a deployment-stats snapshot.

Run:  python examples/secondary_indexes.py
"""

from repro import Waterwheel, small_config
from repro.core.stats import snapshot
from repro.secondary import AttributeSpec
from repro.workloads import NetworkGenerator


def main() -> None:
    gen = NetworkGenerator(n_subnets=64, records_per_second=400.0, seed=21)
    key_lo, key_hi = gen.key_domain

    ww = Waterwheel(
        small_config(
            key_lo=key_lo,
            key_hi=key_hi,
            n_nodes=4,
            chunk_bytes=96 * 1024,
            tuple_size=50,
            # Index the URL attribute: exact per-value bitmaps while the
            # cardinality is low, bloom-per-leaf beyond 1024 values.
            secondary_specs=(AttributeSpec("url", lambda p: p.url),),
        )
    )

    print("ingesting 25,000 access records with a URL secondary index ...")
    records = gen.records(25_000)
    ww.insert_many(records)
    ww.flush_all()
    now = max(t.ts for t in records)
    sidecars = [c for c in ww.dfs.chunk_ids() if c.endswith(".sidx")]
    print(f"  -> {ww.chunk_count - len(sidecars)} chunks, "
          f"{len(sidecars)} index sidecars")

    # Attribute query: "every hit on /page/7, ever, from any address".
    res = ww.query(key_lo, key_hi - 1, 0.0, now, attr_equals={"url": "/page/7"})
    print(f"\nindexed   : {len(res)} hits on /page/7, "
          f"{res.leaves_read} leaves read, {res.leaves_skipped} skipped, "
          f"{res.latency * 1000:.2f} ms")

    # The same question answered by brute post-filtering.
    res_pf = ww.query(
        key_lo, key_hi - 1, 0.0, now,
        predicate=lambda t: t.payload.url == "/page/7",
    )
    print(f"post-filter: {len(res_pf)} hits, "
          f"{res_pf.leaves_read} leaves read, "
          f"{res_pf.latency * 1000:.2f} ms")
    assert len(res) == len(res_pf), "index changed the answer!"
    print(f"leaf reads saved by the bitmap sidecar: "
          f"{res_pf.leaves_read - res.leaves_read}")

    # Combine with key + time + a second predicate.
    res = ww.query(
        key_lo, key_lo + (key_hi - key_lo) // 2, now - 20.0, now,
        attr_equals={"url": "/page/7"},
        predicate=lambda t: t.payload.user_id % 2 == 0,
    )
    print(f"\ncombined filters (half the key space, last 20 s, even users): "
          f"{len(res)} hits")

    # Deployment monitoring snapshot.
    snap = snapshot(ww)
    print("\ndeployment snapshot:")
    print(f"  tuples inserted   : {snap.tuples_inserted}")
    print(f"  chunks on DFS     : {snap.chunk_count} "
          f"({snap.dfs_bytes_written >> 10} KB written)")
    print(f"  queries executed  : {snap.queries_executed}")
    print(f"  log backlog       : {snap.log_backlog} records "
          f"(before compaction)")
    dropped = ww.compact_log()
    print(f"  log compaction    : dropped {dropped} flushed records")
    busiest = max(snap.indexing, key=lambda s: s.tuples_ingested)
    print(f"  busiest indexer   : server {busiest.server_id} "
          f"({busiest.tuples_ingested} tuples, {busiest.flush_count} flushes)")


if __name__ == "__main__":
    main()
