#!/usr/bin/env python
"""Network monitoring: the paper's motivating example (Figure 1).

A telecom backbone samples packets at a high rate; analysts ask questions
like "retrieve all packets from within 10.68.73.* in the last 5 minutes" to
spot attacks and failures.  Keys are source IPs (32-bit ints); queries are
IP-range x time-range.

Run:  python examples/network_monitoring.py
"""

from repro import Waterwheel, small_config
from repro.workloads import NetworkGenerator, int_to_ip, ip_to_int


def main() -> None:
    gen = NetworkGenerator(n_subnets=128, records_per_second=500.0, seed=7)
    key_lo, key_hi = gen.key_domain
    ww = Waterwheel(
        small_config(
            key_lo=key_lo,
            key_hi=key_hi,
            n_nodes=3,
            chunk_bytes=64 * 1024,
            tuple_size=50,
            sketch_granularity=1.0,
        )
    )

    print("streaming 30,000 access records (50 bytes each, keyed by src IP) ...")
    records = gen.records(30_000)
    ww.insert_many(records)
    now = max(t.ts for t in records)
    print(f"  -> stream time now {now:.1f}s, {ww.chunk_count} chunks on the DFS")

    # Pick a busy /24 subnet to investigate.
    counts = {}
    for t in records:
        counts[t.key >> 8] = counts.get(t.key >> 8, 0) + 1
    hot_subnet = max(counts, key=counts.get)
    subnet_lo = hot_subnet << 8
    subnet_hi = subnet_lo | 0xFF
    subnet_str = int_to_ip(subnet_lo).rsplit(".", 1)[0] + ".*"

    # "All packets from within <subnet> in the last 5 minutes."
    res = ww.query(subnet_lo, subnet_hi, t_lo=max(0.0, now - 300.0), t_hi=now)
    print(f"\npackets from {subnet_str} in the last 5 minutes: {len(res)}")
    print(f"  latency {res.latency * 1000:.2f} ms across {res.subquery_count} subqueries")
    users = {t.payload.user_id for t in res.tuples}
    print(f"  distinct users seen: {len(users)}")

    # Drill into the last 5 seconds only -- temporal sketches prune leaves.
    res = ww.query(subnet_lo, subnet_hi, t_lo=now - 5.0, t_hi=now)
    print(f"\nsame subnet, last 5 seconds: {len(res)} packets, "
          f"latency {res.latency * 1000:.2f} ms "
          f"({res.leaves_skipped} leaves pruned)")

    # A wider investigation: a contiguous IP range with a URL predicate.
    wide_lo = ip_to_int("0.0.0.0")
    wide_hi = ip_to_int("127.255.255.255")
    res = ww.query(
        wide_lo, wide_hi, t_lo=now - 60.0, t_hi=now,
        predicate=lambda t: t.payload.url == "/page/0",
    )
    print(f"\nhits on /page/0 from the lower half of the address space "
          f"(last 60s): {len(res)}")


if __name__ == "__main__":
    main()
