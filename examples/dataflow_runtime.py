#!/usr/bin/env python
"""Running Waterwheel on the Storm-like dataflow runtime.

The paper deploys Waterwheel as an Apache Storm topology; this repository
includes a miniature Storm analogue (spouts, bolts, stream groupings, a
local scheduler).  This walkthrough wires a live system's dispatchers and
indexing servers into that topology, streams data through it, and then
runs maintenance: consistency check, chunk rollup, log compaction.

Run:  python examples/dataflow_runtime.py
"""

from repro import Waterwheel, small_config
from repro.core.compaction import ChunkCompactor
from repro.core.verify import verify_system
from repro.runtime import run_insertion_topology
from repro.workloads import NetworkGenerator


def main() -> None:
    gen = NetworkGenerator(records_per_second=400.0, seed=33)
    key_lo, key_hi = gen.key_domain
    ww = Waterwheel(
        small_config(
            key_lo=key_lo, key_hi=key_hi, n_nodes=4,
            chunk_bytes=48 * 1024, tuple_size=50,
        )
    )

    print("streaming 25,000 records through the dataflow topology")
    print("  (spout --shuffle--> dispatchers --direct--> indexing servers)")
    metrics = run_insertion_topology(ww, gen.records(25_000), batch_size=512)
    for component, counts in metrics.items():
        print(f"  {component:12s} processed={counts['processed']:6d} "
              f"emitted={counts['emitted']}")

    res = ww.query(key_lo, key_hi - 1, 40.0, 60.0)
    print(f"\nquery over [40s, 60s]: {len(res)} tuples, "
          f"{res.latency * 1000:.2f} simulated ms")

    # Post-ingest maintenance passes.
    print("\nmaintenance:")
    report = verify_system(ww)
    print(f"  fsck       : {report.summary()}")
    before = ww.chunk_count
    # Roll neighbouring ~70 KB flushes up into ~250 KB historical chunks.
    rollup = ChunkCompactor(ww, target_bytes=256 * 1024).rollup()
    print(f"  rollup     : {before} chunks -> {ww.chunk_count} "
          f"({rollup.chunks_merged} merged into {rollup.chunks_created})")
    dropped = ww.compact_log()
    print(f"  log compact: dropped {dropped} flushed records")
    report = verify_system(ww)
    print(f"  fsck again : {report.summary()}")

    # The same query still answers identically after maintenance.
    after = ww.query(key_lo, key_hi - 1, 40.0, 60.0)
    assert sorted((t.key, t.ts) for t in after.tuples) == sorted(
        (t.key, t.ts) for t in res.tuples
    )
    print("\nquery results identical before and after maintenance.")


if __name__ == "__main__":
    main()
