#!/usr/bin/env python
"""Fault tolerance walkthrough (paper Section V).

Demonstrates the three recovery paths: an indexing server rebuilding its
in-memory tree from the durable log, query-server failures being absorbed
by re-dispatch, and a coordinator failover that reconstructs its region
catalog from the metadata store.

Run:  python examples/fault_tolerance_demo.py
"""

import random

from repro import Waterwheel, small_config


def checksum(ww, t_hi):
    res = ww.query(0, 10_000, 0.0, t_hi)
    return len(res), sorted(t.payload for t in res.tuples)


def main() -> None:
    ww = Waterwheel(small_config(n_nodes=3))
    rng = random.Random(9)
    print("ingesting 8,000 tuples ...")
    for i in range(8_000):
        ww.insert_record(key=rng.randrange(0, 10_000), ts=i * 0.01, payload=i)
    baseline_count, baseline = checksum(ww, 80.0)
    print(f"  -> {ww.chunk_count} chunks, {ww.in_memory_tuples} fresh tuples; "
          f"full scan sees {baseline_count} tuples")

    # --- 1. indexing server crash + log replay -----------------------------
    victim = 0
    unflushed = ww.indexing_servers[victim].in_memory_tuples
    print(f"\n[1] killing indexing server {victim} "
          f"({unflushed} unflushed in-memory tuples lost)")
    ww.kill_indexing_server(victim)
    degraded_count, _ = checksum(ww, 80.0)
    print(f"    while down, queries see {degraded_count} tuples "
          f"(flushed chunks are safe, fresh data invisible)")
    replayed = ww.recover_indexing_server(victim)
    recovered_count, recovered = checksum(ww, 80.0)
    print(f"    recovered by replaying {replayed} tuples from the durable log")
    assert recovered == baseline, "recovery lost data!"
    print(f"    full scan again sees {recovered_count} tuples -- no data loss")

    # --- 2. query server failures -------------------------------------------
    n_qs = len(ww.query_servers)
    print(f"\n[2] killing {n_qs - 1} of {n_qs} query servers")
    for qs in range(n_qs - 1):
        ww.kill_query_server(qs)
    count, tuples = checksum(ww, 80.0)
    assert tuples == baseline
    print(f"    queries still complete on the survivor: {count} tuples")
    for qs in range(n_qs - 1):
        ww.recover_query_server(qs)

    # --- 3. coordinator failover ----------------------------------------------
    print(f"\n[3] crashing the query coordinator "
          f"(catalog had {ww.coordinator.catalog_size} regions)")
    ww.crash_coordinator()
    print(f"    standby rebuilt the catalog from the metadata store: "
          f"{ww.coordinator.catalog_size} regions")
    count, tuples = checksum(ww, 80.0)
    assert tuples == baseline
    print(f"    queries correct after failover: {count} tuples")

    print("\nall three recovery paths preserved query results exactly.")


if __name__ == "__main__":
    main()
