#!/usr/bin/env python
"""Taxi tracking: geo-temporal queries over a T-Drive-like GPS stream.

Taxis report (id, lat, lon, timestamp); latitude/longitude are z-ordered
into one-dimensional keys (the paper's preprocessing for the T-Drive
dataset), so a geographic rectangle decomposes into a handful of z-code
intervals -- each of which becomes one key-range query.

Run:  python examples/taxi_tracking.py
"""

import random

from repro import Waterwheel, small_config
from repro.workloads import TDriveGenerator


def main() -> None:
    gen = TDriveGenerator(n_taxis=100, report_interval=1.0, seed=3)
    key_lo, key_hi = gen.key_domain
    ww = Waterwheel(
        small_config(
            key_lo=key_lo,
            key_hi=key_hi,
            n_nodes=3,
            chunk_bytes=64 * 1024,
            tuple_size=36,
            sketch_granularity=5.0,
        )
    )

    print("streaming 40,000 GPS reports from 100 taxis ...")
    records = gen.records(40_000)
    ww.insert_many(records)
    now = max(t.ts for t in records)
    print(f"  -> stream time now {now:.0f}s, {ww.chunk_count} chunks flushed")

    # "Which taxis passed through this rectangle in the last 2 minutes?"
    rng = random.Random(1)
    lat_lo, lat_hi, lon_lo, lon_hi = gen.random_rect(rng, frac=0.25)
    print(f"\nquery rect: lat [{lat_lo:.3f}, {lat_hi:.3f}] "
          f"lon [{lon_lo:.3f}, {lon_hi:.3f}], last 120 s")

    z_ranges = gen.query_key_ranges(lat_lo, lat_hi, lon_lo, lon_hi, max_ranges=8)
    print(f"rectangle decomposed into {len(z_ranges)} z-code intervals")

    taxis = set()
    reports = 0
    total_latency = 0.0
    for z_lo, z_hi in z_ranges:
        res = ww.query(
            z_lo, z_hi, t_lo=now - 120.0, t_hi=now,
            # z-ranges can over-cover the rectangle; the predicate is the
            # exact geometric test (the paper's f_q).
            predicate=lambda t: (
                lat_lo <= t.payload.lat <= lat_hi
                and lon_lo <= t.payload.lon <= lon_hi
            ),
        )
        reports += len(res)
        taxis.update(t.payload.taxi_id for t in res.tuples)
        total_latency = max(total_latency, res.latency)  # ranges run in parallel

    print(f"-> {reports} matching reports from {len(taxis)} distinct taxis")
    print(f"   slowest z-interval latency: {total_latency * 1000:.2f} ms")

    # Verify against a brute-force scan of the raw stream.
    expected = {
        t.payload.taxi_id
        for t in records
        if lat_lo <= t.payload.lat <= lat_hi
        and lon_lo <= t.payload.lon <= lon_hi
        and now - 120.0 <= t.ts <= now
    }
    assert taxis == expected, "z-order query disagreed with brute force!"
    print("   verified against a brute-force scan: identical taxi sets")


if __name__ == "__main__":
    main()
