#!/usr/bin/env python
"""Quickstart: ingest a stream, run temporal range queries.

Builds a small Waterwheel deployment, streams 20k tuples through the full
pipeline (dispatchers -> indexing servers -> chunk flushes to the simulated
DFS), then answers queries that span both historical chunks and fresh
in-memory data.

Run:  python examples/quickstart.py
"""

import random

from repro import DataTuple, Waterwheel, small_config


def main() -> None:
    # A small deployment: 3 nodes, tiny chunks so flushes happen quickly.
    ww = Waterwheel(small_config(n_nodes=3))
    print(f"deployment: {len(ww.indexing_servers)} indexing servers, "
          f"{len(ww.query_servers)} query servers, "
          f"{len(ww.dispatchers)} dispatchers")

    # Stream 20,000 tuples: uniform random keys, rising timestamps.
    rng = random.Random(42)
    print("ingesting 20,000 tuples ...")
    for i in range(20_000):
        ww.insert_record(
            key=rng.randrange(0, 10_000),
            ts=i * 0.01,  # 100 tuples per stream-second
            payload={"seq": i},
        )
    print(f"  -> {ww.chunk_count} chunks flushed to the DFS, "
          f"{ww.in_memory_tuples} tuples still in-memory (and queryable!)")

    # Query 1: a key range over the most recent 10 stream-seconds.
    now = 200.0
    res = ww.query(key_lo=2000, key_hi=4000, t_lo=now - 10.0, t_hi=now)
    print(f"\nkeys [2000, 4000] x last 10s -> {len(res)} tuples, "
          f"{res.subquery_count} subqueries, "
          f"simulated latency {res.latency * 1000:.2f} ms")

    # Query 2: the same key range over an old historical window.
    res = ww.query(key_lo=2000, key_hi=4000, t_lo=50.0, t_hi=60.0)
    print(f"keys [2000, 4000] x historic [50s, 60s] -> {len(res)} tuples, "
          f"latency {res.latency * 1000:.2f} ms "
          f"({res.leaves_skipped} leaves skipped by temporal sketches)")

    # Query 3: with a user-defined predicate (the paper's f_q).
    res = ww.query(
        key_lo=0, key_hi=10_000, t_lo=0.0, t_hi=200.0,
        predicate=lambda t: t.payload["seq"] % 1000 == 0,
    )
    print(f"predicate seq%1000==0 over everything -> {len(res)} tuples")

    # Tuples are visible immediately on arrival -- no batching delay.
    ww.insert_record(key=123, ts=200.5, payload="fresh")
    res = ww.query(key_lo=123, key_hi=123, t_lo=200.0, t_hi=201.0)
    print(f"\nimmediate visibility: inserted then instantly queried -> "
          f"{[t.payload for t in res.tuples]}")


if __name__ == "__main__":
    main()
