"""Versioned metadata store with watches (ZooKeeper substrate)."""

from repro.metastore.store import Entry, MetadataStore

__all__ = ["Entry", "MetadataStore"]
