"""Versioned metadata store with watches (the paper's ZooKeeper substrate).

The metadata server (paper Section II-B) persists the global key
partitioning, each indexing server's *actual* key interval (which may
transiently overlap others after a repartition, Section III-D), chunk data
regions, and the per-server log read offsets used for recovery (Section V).

This store gives those consumers a tiny coordination kernel: a hierarchical
key space (``/`` separated), per-key versions bumped on every write, and
prefix watches fired synchronously on mutation.

Durability (ZooKeeper writes its transaction log to disk): pass
``journal_path`` and every mutation is appended as a JSON line;
:meth:`recover` replays the journal into a fresh store after a restart.
Values must be JSON-representable (everything this system stores is).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple


@dataclass(frozen=True)
class Entry:
    """A stored value plus its monotonically increasing version."""
    value: Any
    version: int


WatchCallback = Callable[[str, Optional[Any]], None]


class MetadataStore:
    """In-process versioned KV store with prefix watches."""

    def __init__(self, journal_path: Optional[str] = None):
        self._entries: Dict[str, Entry] = {}
        self._watches: List[Tuple[str, WatchCallback]] = []
        self._journal: Optional[TextIO] = None
        if journal_path is not None:
            self._journal = open(journal_path, "a", encoding="utf-8")

    # --- durability -------------------------------------------------------------

    def _log(self, op: str, key: str, value: Any = None) -> None:
        if self._journal is None:
            return
        self._journal.write(
            json.dumps({"op": op, "key": key, "value": value},
                       separators=(",", ":"))
        )
        self._journal.write("\n")
        self._journal.flush()

    @classmethod
    def recover(
        cls, journal_path: str, continue_journaling: bool = True
    ) -> "MetadataStore":
        """Rebuild a store by replaying a journal; optionally keep
        appending to the same journal afterwards."""
        store = cls()
        if os.path.exists(journal_path):
            with open(journal_path, "r", encoding="utf-8") as fh:
                for line_no, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError as exc:
                        raise ValueError(
                            f"{journal_path}:{line_no}: corrupt journal "
                            f"entry ({exc})"
                        ) from exc
                    if record["op"] == "put":
                        store.put(record["key"], record["value"])
                    elif record["op"] == "delete":
                        store.delete(record["key"])
        if continue_journaling:
            store._journal = open(journal_path, "a", encoding="utf-8")
        return store

    def close(self) -> None:
        """Flush and close the journal file (no-op when unjournaled)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # --- basic KV -------------------------------------------------------------

    def put(self, key: str, value: Any) -> int:
        """Create or replace; returns the new version (1 for a fresh key)."""
        current = self._entries.get(key)
        version = 1 if current is None else current.version + 1
        self._entries[key] = Entry(value, version)
        self._log("put", key, value)
        self._notify(key, value)
        return version

    def multi_put(self, items: List[Tuple[str, Any]]) -> None:
        """Write several keys as one unit.

        Every entry (and its journal line) lands before any watch fires,
        so a watcher triggered by the first key already sees the rest --
        multi-key metadata like the partition boundaries + epoch pair is
        never observed torn.  Watches then fire in item order.
        """
        items = list(items)
        for key, value in items:
            current = self._entries.get(key)
            version = 1 if current is None else current.version + 1
            self._entries[key] = Entry(value, version)
            self._log("put", key, value)
        for key, value in items:
            self._notify(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        """The key's current value, or ``default`` when absent."""
        entry = self._entries.get(key)
        return default if entry is None else entry.value

    def get_entry(self, key: str) -> Optional[Entry]:
        """The (value, version) entry, or None when absent."""
        return self._entries.get(key)

    def exists(self, key: str) -> bool:
        """True when the key is present."""
        return key in self._entries

    def delete(self, key: str) -> bool:
        """Remove a key; returns False when it was absent."""
        if key not in self._entries:
            return False
        del self._entries[key]
        self._log("delete", key)
        self._notify(key, None)
        return True

    def compare_and_put(self, key: str, expected_version: int, value: Any) -> bool:
        """Write only if the key's current version matches (0 = must not
        exist); the primitive behind single-writer coordination."""
        entry = self._entries.get(key)
        current = 0 if entry is None else entry.version
        if current != expected_version:
            return False
        self.put(key, value)
        return True

    # --- hierarchy --------------------------------------------------------------

    def list_prefix(self, prefix: str) -> List[str]:
        """Sorted keys under ``prefix``."""
        return sorted(k for k in self._entries if k.startswith(prefix))

    def items_prefix(self, prefix: str) -> List[Tuple[str, Any]]:
        """Sorted (key, value) pairs under ``prefix``."""
        return [(k, self._entries[k].value) for k in self.list_prefix(prefix)]

    def delete_prefix(self, prefix: str) -> int:
        """Remove every key under ``prefix``; returns the count."""
        doomed = self.list_prefix(prefix)
        for key in doomed:
            self.delete(key)
        return len(doomed)

    # --- watches -------------------------------------------------------------------

    def watch(self, prefix: str, callback: WatchCallback) -> Callable[[], None]:
        """Register a callback fired on any mutation under ``prefix``;
        returns an unsubscribe function."""
        token = (prefix, callback)
        self._watches.append(token)

        def unsubscribe() -> None:
            if token in self._watches:
                self._watches.remove(token)

        return unsubscribe

    def _notify(self, key: str, value: Optional[Any]) -> None:
        for prefix, callback in list(self._watches):
            if key.startswith(prefix):
                callback(key, value)

    def __len__(self) -> int:
        return len(self._entries)
