"""Z-order (Morton) curve: 2-D points to 1-D keys and back.

The T-Drive workload (paper Section VI) z-orders (latitude, longitude) into
one-dimensional keys before dispatch, and converts a geographical query
rectangle into one or more z-code intervals, each of which becomes a key
range query against the B+ trees.
"""

from __future__ import annotations

from typing import List, Tuple


def _part1by1(value: int, bits: int) -> int:
    """Spread ``bits`` low bits of ``value`` so each lands at an even slot."""
    result = 0
    for i in range(bits):
        result |= ((value >> i) & 1) << (2 * i)
    return result


def _compact1by1(value: int, bits: int) -> int:
    result = 0
    for i in range(bits):
        result |= ((value >> (2 * i)) & 1) << i
    return result


def interleave(x: int, y: int, bits: int = 16) -> int:
    """Morton-encode integer coordinates: x in even bit slots, y in odd."""
    limit = 1 << bits
    if not (0 <= x < limit and 0 <= y < limit):
        raise ValueError(f"coordinates must be in [0, {limit})")
    return _part1by1(x, bits) | (_part1by1(y, bits) << 1)


def deinterleave(z: int, bits: int = 16) -> Tuple[int, int]:
    """Inverse of :func:`interleave`."""
    if z < 0 or z >= 1 << (2 * bits):
        raise ValueError("z-code out of range")
    return _compact1by1(z, bits), _compact1by1(z >> 1, bits)


class ZCurve:
    """Quantizes a geographic bounding box onto a 2^bits x 2^bits grid and
    maps points to z-codes.

    ``bits=16`` yields 32-bit keys with ~1e-4 degree resolution over a city
    bounding box -- comparable to GPS noise, matching the paper's setup.
    """

    def __init__(
        self,
        lat_range: Tuple[float, float],
        lon_range: Tuple[float, float],
        bits: int = 16,
    ):
        if lat_range[1] <= lat_range[0] or lon_range[1] <= lon_range[0]:
            raise ValueError("empty bounding box")
        if not 1 <= bits <= 31:
            raise ValueError("bits must be in [1, 31]")
        self.lat_lo, self.lat_hi = lat_range
        self.lon_lo, self.lon_hi = lon_range
        self.bits = bits
        self._cells = 1 << bits

    # --- quantization -------------------------------------------------------

    def _quantize(self, value: float, lo: float, hi: float) -> int:
        if not lo <= value <= hi:
            raise ValueError(f"{value} outside [{lo}, {hi}]")
        cell = int((value - lo) / (hi - lo) * self._cells)
        return min(cell, self._cells - 1)

    def encode(self, lat: float, lon: float) -> int:
        """Map a (lat, lon) point to its z-code key."""
        x = self._quantize(lat, self.lat_lo, self.lat_hi)
        y = self._quantize(lon, self.lon_lo, self.lon_hi)
        return interleave(x, y, self.bits)

    def decode_cell(self, z: int) -> Tuple[float, float]:
        """Center point of the grid cell addressed by ``z``."""
        x, y = deinterleave(z, self.bits)
        lat = self.lat_lo + (x + 0.5) / self._cells * (self.lat_hi - self.lat_lo)
        lon = self.lon_lo + (y + 0.5) / self._cells * (self.lon_hi - self.lon_lo)
        return lat, lon

    # --- rectangle decomposition --------------------------------------------

    def query_ranges(
        self,
        lat_lo: float,
        lat_hi: float,
        lon_lo: float,
        lon_hi: float,
        max_ranges: int = 16,
    ) -> List[Tuple[int, int]]:
        """Decompose a geographic rectangle into inclusive z-code intervals.

        Recursively splits z-space quadrants: a quadrant fully inside the
        query emits its whole contiguous z interval; a disjoint quadrant is
        pruned; partial overlaps recurse until the range budget is spent,
        after which partially-overlapping quadrants are emitted whole (a
        superset -- callers post-filter, so results stay correct).
        """
        x_lo = self._quantize(lat_lo, self.lat_lo, self.lat_hi)
        x_hi = self._quantize(lat_hi, self.lat_lo, self.lat_hi)
        y_lo = self._quantize(lon_lo, self.lon_lo, self.lon_hi)
        y_hi = self._quantize(lon_hi, self.lon_lo, self.lon_hi)
        ranges = zranges_for_grid_rect(
            x_lo, x_hi, y_lo, y_hi, self.bits, max_ranges
        )
        return ranges


def zranges_for_grid_rect(
    x_lo: int, x_hi: int, y_lo: int, y_hi: int, bits: int, max_ranges: int = 16
) -> List[Tuple[int, int]]:
    """Cover an inclusive grid rectangle with z-code intervals.

    Returns a sorted list of inclusive (z_lo, z_hi) pairs whose union is a
    superset of the rectangle's cells; with enough budget it is exact.
    """
    if x_hi < x_lo or y_hi < y_lo:
        return []
    out: List[Tuple[int, int]] = []
    # Work queue of quadrants: (x0, y0, size, z_base).  A quadrant of side
    # ``size`` aligned at (x0, y0) covers the contiguous z interval
    # [z_base, z_base + size*size - 1].
    stack = [(0, 0, 1 << bits, 0)]
    budget = max(1, max_ranges)
    while stack:
        x0, y0, size, z_base = stack.pop()
        x1, y1 = x0 + size - 1, y0 + size - 1
        if x1 < x_lo or x0 > x_hi or y1 < y_lo or y0 > y_hi:
            continue
        fully_inside = x0 >= x_lo and x1 <= x_hi and y0 >= y_lo and y1 <= y_hi
        if fully_inside or size == 1 or len(out) + len(stack) >= budget:
            out.append((z_base, z_base + size * size - 1))
            continue
        half = size // 2
        quarter = half * half
        # Z-order of children: (x0,y0), (x0+h,y0), (x0,y0+h), (x0+h,y0+h) --
        # x occupies even bit slots, so the x-split toggles the low quadrant
        # bit.  Push in reverse so they pop in ascending z order.
        children = (
            (x0, y0, half, z_base),
            (x0 + half, y0, half, z_base + quarter),
            (x0, y0 + half, half, z_base + 2 * quarter),
            (x0 + half, y0 + half, half, z_base + 3 * quarter),
        )
        for child in reversed(children):
            stack.append(child)
    out.sort()
    return _merge_adjacent(out)


def _merge_adjacent(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for lo, hi in ranges:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
