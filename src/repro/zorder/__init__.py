"""Z-order curve encoding and query-rectangle decomposition."""

from repro.zorder.curve import (
    ZCurve,
    deinterleave,
    interleave,
    zranges_for_grid_rect,
)

__all__ = ["ZCurve", "interleave", "deinterleave", "zranges_for_grid_rect"]
