"""Workload persistence: save/load tuple streams as JSONL or CSV.

Lets users capture a generated workload once and replay it across runs
(or feed the system from their own trace files).  JSONL preserves any
JSON-representable payload; CSV covers flat numeric/string payload-less
streams and is the format most real traces arrive in.
"""

from __future__ import annotations

import csv
import json
from typing import Iterable, Iterator, List, Optional

from repro.core.model import DataTuple


def save_jsonl(tuples: Iterable[DataTuple], path: str) -> int:
    """Write one JSON object per line; returns the count written.

    Payloads must be JSON-serializable (dicts, lists, strings, numbers,
    None).  Application objects should be converted before saving.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for t in tuples:
            fh.write(
                json.dumps(
                    {"key": t.key, "ts": t.ts, "payload": t.payload, "size": t.size},
                    separators=(",", ":"),
                )
            )
            fh.write("\n")
            count += 1
    return count


def load_jsonl(path: str) -> Iterator[DataTuple]:
    """Stream tuples back from :func:`save_jsonl` output."""
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                yield DataTuple(
                    int(row["key"]),
                    float(row["ts"]),
                    row.get("payload"),
                    int(row.get("size", 36)),
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{line_no}: bad record ({exc})") from exc


def save_csv(tuples: Iterable[DataTuple], path: str) -> int:
    """Write ``key,ts,size`` rows (payloads are dropped -- use JSONL to
    keep them); returns the count written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "ts", "size"])
        for t in tuples:
            writer.writerow([t.key, t.ts, t.size])
            count += 1
    return count


def load_csv(
    path: str,
    key_column: str = "key",
    ts_column: str = "ts",
    size_column: Optional[str] = "size",
    default_size: int = 36,
) -> Iterator[DataTuple]:
    """Stream tuples from a CSV with a header row.

    Column names are configurable so external traces (e.g. ``src_ip`` as
    the key) load without preprocessing.
    """
    with open(path, "r", newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            return
        for field in (key_column, ts_column):
            if field not in reader.fieldnames:
                raise ValueError(f"{path}: missing column {field!r}")
        for line_no, row in enumerate(reader, start=2):
            try:
                size = default_size
                if size_column and size_column in row and row[size_column]:
                    size = int(row[size_column])
                yield DataTuple(
                    int(row[key_column]), float(row[ts_column]), None, size
                )
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: bad record ({exc})") from exc


def load_sorted_check(tuples: Iterable[DataTuple], max_disorder: float = 0.0) -> List[DataTuple]:
    """Materialize a stream, asserting it is (almost) timestamp-ordered.

    ``max_disorder`` is the largest tolerated backward jump in seconds
    (the paper's almost-ordered-arrival assumption); exceeding it raises.
    """
    out: List[DataTuple] = []
    running_max = float("-inf")
    for t in tuples:
        if t.ts < running_max - max_disorder:
            raise ValueError(
                f"stream disorder {running_max - t.ts:.3f}s exceeds "
                f"allowed {max_disorder}s"
            )
        running_max = max(running_max, t.ts)
        out.append(t)
    return out
