"""Query workload generators with controlled selectivity.

The paper's query mixes (Sections VI-B and VI-D) combine key ranges of
selectivity {0.01, 0.05, 0.1} with four representative temporal windows:
recent 5 seconds, recent 60 seconds, recent 5 minutes, and a *historic*
5-minute window placed uniformly at random between stream start and now.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

#: The paper's four temporal query classes.
TEMPORAL_MODES = ("recent_5s", "recent_60s", "recent_5m", "historic_5m")


@dataclass(frozen=True)
class QuerySpec:
    """One generated query: inclusive key bounds plus a time window."""

    key_lo: int
    key_hi: int
    t_lo: float
    t_hi: float
    mode: str = "custom"


def random_key_range(
    rng: random.Random, key_lo: int, key_hi: int, selectivity: float
) -> Tuple[int, int]:
    """An inclusive key range covering ``selectivity`` of the domain."""
    if not 0.0 < selectivity <= 1.0:
        raise ValueError("selectivity must be in (0, 1]")
    span = key_hi - key_lo
    width = max(1, int(span * selectivity))
    lo = rng.randrange(key_lo, max(key_lo + 1, key_hi - width + 1))
    return lo, min(key_hi - 1, lo + width - 1)


def temporal_window(
    rng: random.Random, mode: str, now: float, start: float = 0.0
) -> Tuple[float, float]:
    """The paper's temporal windows, anchored at stream time ``now``."""
    if mode == "recent_5s":
        return max(start, now - 5.0), now
    if mode == "recent_60s":
        return max(start, now - 60.0), now
    if mode == "recent_5m":
        return max(start, now - 300.0), now
    if mode == "historic_5m":
        horizon = max(start, now - 300.0)
        t_lo = rng.uniform(start, horizon) if horizon > start else start
        return t_lo, min(now, t_lo + 300.0)
    raise ValueError(f"unknown temporal mode {mode!r}")


class QueryGenerator:
    """Streams of :class:`QuerySpec` over a key domain and a time horizon."""

    def __init__(self, key_lo: int, key_hi: int, seed: int = 23):
        if key_hi <= key_lo:
            raise ValueError("empty key domain")
        self.key_lo = key_lo
        self.key_hi = key_hi
        self._rng = random.Random(seed)

    def generate(
        self,
        n_queries: int,
        key_selectivity: float,
        mode: str,
        now: float,
        start: float = 0.0,
    ) -> Iterator[QuerySpec]:
        """Yield ``n_queries`` specs with the given selectivities."""
        for _ in range(n_queries):
            k_lo, k_hi = random_key_range(
                self._rng, self.key_lo, self.key_hi, key_selectivity
            )
            t_lo, t_hi = temporal_window(self._rng, mode, now, start)
            yield QuerySpec(k_lo, k_hi, t_lo, t_hi, mode)

    def batch(
        self,
        n_queries: int,
        key_selectivity: float,
        mode: str,
        now: float,
        start: float = 0.0,
    ) -> List[QuerySpec]:
        """Materialized list form of :meth:`generate`."""
        return list(self.generate(n_queries, key_selectivity, mode, now, start))

    def time_selectivity_window(
        self, selectivity: float, now: float, start: float = 0.0
    ) -> Tuple[float, float]:
        """A window covering ``selectivity`` of [start, now], placed
        uniformly (used by experiments that sweep temporal selectivity)."""
        span = (now - start) * selectivity
        t_lo = self._rng.uniform(start, max(start, now - span))
        return t_lo, t_lo + span
