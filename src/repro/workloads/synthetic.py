"""Synthetic workloads with controllable skew and drift.

The adaptivity experiments (paper Section VI-C) use synthetic streams whose
keys follow a normal distribution: sigma controls the skew seen by a
uniform partition (small sigma = concentrated = skewed load), and a moving
mean exercises the template-update machinery.  30-byte tuples, as in the
paper.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.core.model import DataTuple

SYNTHETIC_TUPLE_BYTES = 30


class NormalKeyGenerator:
    """Keys ~ Normal(mu, sigma) clamped to the domain, rising timestamps."""

    def __init__(
        self,
        key_lo: int = 0,
        key_hi: int = 1 << 20,
        mu: float = None,
        sigma: float = 1000.0,
        records_per_second: float = 1000.0,
        seed: int = 17,
    ):
        if key_hi <= key_lo:
            raise ValueError("empty key domain")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.key_lo = key_lo
        self.key_hi = key_hi
        self.mu = (key_lo + key_hi) / 2 if mu is None else mu
        self.sigma = sigma
        self.records_per_second = records_per_second
        self._rng = random.Random(seed)

    def _key(self, mu: float) -> int:
        key = int(self._rng.gauss(mu, self.sigma))
        return min(max(key, self.key_lo), self.key_hi - 1)

    def generate(self, n_records: int, t0: float = 0.0) -> Iterator[DataTuple]:
        """Yield ``n_records`` tuples with rising timestamps."""
        dt = 1.0 / self.records_per_second
        for i in range(n_records):
            yield DataTuple(
                self._key(self.mu), t0 + i * dt, payload=i,
                size=SYNTHETIC_TUPLE_BYTES,
            )

    def records(self, n_records: int, t0: float = 0.0) -> List[DataTuple]:
        """Materialized list form of :meth:`generate`."""
        return list(self.generate(n_records, t0))


class DriftingKeyGenerator(NormalKeyGenerator):
    """Normal keys whose mean drifts linearly over the stream -- the key
    distribution change that forces template updates (Section III-C)."""

    def __init__(self, drift_per_record: float = 1.0, **kwargs):
        super().__init__(**kwargs)
        self.drift_per_record = drift_per_record

    def generate(self, n_records: int, t0: float = 0.0) -> Iterator[DataTuple]:
        dt = 1.0 / self.records_per_second
        for i in range(n_records):
            mu = self.mu + i * self.drift_per_record
            yield DataTuple(
                self._key(mu), t0 + i * dt, payload=i,
                size=SYNTHETIC_TUPLE_BYTES,
            )


def uniform_records(
    n_records: int,
    key_lo: int = 0,
    key_hi: int = 1 << 20,
    records_per_second: float = 1000.0,
    t0: float = 0.0,
    seed: int = 19,
    size: int = SYNTHETIC_TUPLE_BYTES,
) -> List[DataTuple]:
    """Uniform random keys with rising timestamps (the neutral workload)."""
    rng = random.Random(seed)
    dt = 1.0 / records_per_second
    return [
        DataTuple(rng.randrange(key_lo, key_hi), t0 + i * dt, payload=i, size=size)
        for i in range(n_records)
    ]
