"""Synthetic Network-like workload: website access records keyed by IP.

The paper's Network dataset (6 M anonymized access records from a telecom
backbone: user id, source IP, destination IP, URL, timestamp; ~50-byte
tuples keyed by source IP) is proprietary, so this generator reproduces its
shape: source IPs drawn from a set of active /24 subnets with Zipf-like
popularity (a few hot subnets, a long tail), steady arrival rate, keys =
source IP as a 32-bit integer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.model import DataTuple

NETWORK_TUPLE_BYTES = 50


def ip_to_int(ip: str) -> int:
    """Dotted-quad to 32-bit int (the indexing key)."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 octet in {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """32-bit int to dotted-quad."""
    if not 0 <= value < 1 << 32:
        raise ValueError("IPv4 int out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass
class AccessRecord:
    """Payload of one website access record."""
    user_id: int
    src_ip: int
    dst_ip: int
    url: str


class NetworkGenerator:
    """Website access records with Zipf-ish subnet popularity."""

    def __init__(
        self,
        n_subnets: int = 256,
        n_users: int = 10_000,
        records_per_second: float = 1000.0,
        zipf_s: float = 1.1,
        seed: int = 13,
    ):
        if n_subnets < 1:
            raise ValueError("need at least one subnet")
        self.records_per_second = records_per_second
        self._rng = random.Random(seed)
        self.n_users = n_users
        # Active /24 subnets scattered over the address space, weighted by a
        # Zipf-like law so some subnets are much hotter than others.
        self._subnets = sorted(
            self._rng.randrange(0, 1 << 24) << 8 for _ in range(n_subnets)
        )
        weights = [1.0 / (rank + 1) ** zipf_s for rank in range(n_subnets)]
        order = list(range(n_subnets))
        self._rng.shuffle(order)  # hot subnets are not spatially adjacent
        self._weights = [weights[order[i]] for i in range(n_subnets)]
        self._urls = [f"/page/{i}" for i in range(50)]

    def generate(self, n_records: int, t0: float = 0.0) -> Iterator[DataTuple]:
        """Yield ``n_records`` tuples in timestamp order."""
        dt = 1.0 / self.records_per_second
        for i in range(n_records):
            subnet = self._rng.choices(self._subnets, weights=self._weights)[0]
            src_ip = subnet | self._rng.randrange(0, 256)
            record = AccessRecord(
                user_id=self._rng.randrange(0, self.n_users),
                src_ip=src_ip,
                dst_ip=self._rng.randrange(0, 1 << 32),
                url=self._rng.choice(self._urls),
            )
            yield DataTuple(src_ip, t0 + i * dt, record, size=NETWORK_TUPLE_BYTES)

    def records(self, n_records: int, t0: float = 0.0) -> List[DataTuple]:
        """Materialized list form of :meth:`generate`."""
        return list(self.generate(n_records, t0))

    def random_ip_range(
        self, rng: random.Random, selectivity: float
    ) -> Tuple[int, int]:
        """A key range covering ``selectivity`` of the *active* subnets
        (queries over dead address space would be trivially empty)."""
        span = max(1, int(len(self._subnets) * selectivity))
        start = rng.randrange(0, max(1, len(self._subnets) - span + 1))
        lo = self._subnets[start]
        hi = self._subnets[min(start + span, len(self._subnets)) - 1] | 0xFF
        return lo, hi

    @property
    def key_domain(self) -> Tuple[int, int]:
        """(key_lo, key_hi) for configuring a deployment."""
        return (0, 1 << 32)
