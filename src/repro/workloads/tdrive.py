"""Synthetic T-Drive-like workload: taxi GPS trajectories over Beijing.

The paper's T-Drive dataset (10,357 taxis, 15 M records, one week of Beijing
trajectories) is not redistributable, so this generator produces the same
*shape*: a fleet of taxis doing correlated random walks inside the Beijing
bounding box, emitting (taxi id, lat, lon, timestamp) records in timestamp
order.  As in the paper's preprocessing, latitude/longitude are z-ordered
into a one-dimensional key before dispatch, and geographic query rectangles
decompose into z-code intervals.

36-byte tuples, matching the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.model import DataTuple
from repro.zorder import ZCurve

#: Beijing bounding box used by the generator and its ZCurve.
BEIJING_LAT = (39.6, 40.4)
BEIJING_LON = (116.0, 116.8)

TDRIVE_TUPLE_BYTES = 36


def beijing_curve(bits: int = 16) -> ZCurve:
    """The ZCurve over the Beijing bounding box."""
    return ZCurve(BEIJING_LAT, BEIJING_LON, bits=bits)


@dataclass
class TaxiRecord:
    """Payload of one GPS report."""
    taxi_id: int
    lat: float
    lon: float


class TDriveGenerator:
    """Fleet of random-walking taxis emitting z-keyed tuples in time order."""

    def __init__(
        self,
        n_taxis: int = 200,
        report_interval: float = 1.0,
        step_degrees: float = 0.002,
        bits: int = 16,
        seed: int = 11,
    ):
        if n_taxis < 1:
            raise ValueError("need at least one taxi")
        self.n_taxis = n_taxis
        self.report_interval = report_interval
        self.step = step_degrees
        self.curve = beijing_curve(bits)
        self._rng = random.Random(seed)
        # Taxis start clustered around the city centre (downtown density).
        self._lat = [
            self._clamp(40.0 + self._rng.gauss(0, 0.08), *BEIJING_LAT)
            for _ in range(n_taxis)
        ]
        self._lon = [
            self._clamp(116.4 + self._rng.gauss(0, 0.08), *BEIJING_LON)
            for _ in range(n_taxis)
        ]

    @staticmethod
    def _clamp(value: float, lo: float, hi: float) -> float:
        return min(max(value, lo), hi)

    def generate(self, n_records: int, t0: float = 0.0) -> Iterator[DataTuple]:
        """Yield ``n_records`` tuples in timestamp order."""
        emitted = 0
        tick = 0
        while emitted < n_records:
            base_ts = t0 + tick * self.report_interval
            for taxi in range(self.n_taxis):
                if emitted >= n_records:
                    return
                self._lat[taxi] = self._clamp(
                    self._lat[taxi] + self._rng.uniform(-self.step, self.step),
                    *BEIJING_LAT,
                )
                self._lon[taxi] = self._clamp(
                    self._lon[taxi] + self._rng.uniform(-self.step, self.step),
                    *BEIJING_LON,
                )
                ts = base_ts + taxi * (self.report_interval / self.n_taxis)
                key = self.curve.encode(self._lat[taxi], self._lon[taxi])
                yield DataTuple(
                    key,
                    ts,
                    payload=TaxiRecord(taxi, self._lat[taxi], self._lon[taxi]),
                    size=TDRIVE_TUPLE_BYTES,
                )
                emitted += 1
            tick += 1

    def records(self, n_records: int, t0: float = 0.0) -> List[DataTuple]:
        """Materialized list form of :meth:`generate`."""
        return list(self.generate(n_records, t0))

    # --- queries ----------------------------------------------------------------

    def random_rect(
        self, rng: random.Random, frac: float = 0.1
    ) -> Tuple[float, float, float, float]:
        """A random geographic rectangle covering ``frac`` of each axis."""
        lat_span = (BEIJING_LAT[1] - BEIJING_LAT[0]) * frac
        lon_span = (BEIJING_LON[1] - BEIJING_LON[0]) * frac
        lat_lo = rng.uniform(BEIJING_LAT[0], BEIJING_LAT[1] - lat_span)
        lon_lo = rng.uniform(BEIJING_LON[0], BEIJING_LON[1] - lon_span)
        return lat_lo, lat_lo + lat_span, lon_lo, lon_lo + lon_span

    def query_key_ranges(
        self,
        lat_lo: float,
        lat_hi: float,
        lon_lo: float,
        lon_hi: float,
        max_ranges: int = 8,
    ) -> List[Tuple[int, int]]:
        """Z-interval decomposition of a geographic rectangle (the paper's
        per-query preprocessing)."""
        return self.curve.query_ranges(lat_lo, lat_hi, lon_lo, lon_hi, max_ranges)

    @property
    def key_domain(self) -> Tuple[int, int]:
        """(key_lo, key_hi) for configuring a deployment."""
        return (0, 1 << (2 * self.curve.bits))
