"""Stream replay helpers: arrival-order perturbation.

The paper assumes *almost* ordered arrival: tuples reach the system roughly
in timestamp order, with occasional delays from device failures or network
congestion (Section IV-D).  These helpers perturb a timestamp-ordered
stream to emulate that: a fraction of tuples arrive ``max_delay`` seconds
of stream-time later than they should, i.e. they are displaced forward in
the arrival sequence while keeping their original (event) timestamps.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterable, Iterator, List

from repro.core.model import DataTuple


def with_lateness(
    stream: Iterable[DataTuple],
    late_fraction: float = 0.01,
    max_delay: float = 3.0,
    seed: int = 29,
) -> Iterator[DataTuple]:
    """Yield the stream with a fraction of tuples arriving late.

    A delayed tuple is held back until the stream's event time passes its
    original timestamp plus a random delay in (0, max_delay].
    """
    if not 0.0 <= late_fraction <= 1.0:
        raise ValueError("late_fraction must be in [0, 1]")
    if max_delay < 0:
        raise ValueError("max_delay must be >= 0")
    rng = random.Random(seed)
    held: List = []  # heap of (release_ts, seq, tuple)
    seq = 0
    for t in stream:
        while held and held[0][0] <= t.ts:
            yield heapq.heappop(held)[2]
        if late_fraction > 0 and rng.random() < late_fraction:
            release = t.ts + rng.uniform(0.0, max_delay)
            heapq.heappush(held, (release, seq, t))
            seq += 1
        else:
            yield t
    while held:
        yield heapq.heappop(held)[2]


def max_observed_lateness(arrivals: Iterable[DataTuple]) -> float:
    """How far behind the running max timestamp any tuple arrived --
    useful for choosing the Delta-t visibility window."""
    worst = 0.0
    running_max = float("-inf")
    for t in arrivals:
        if t.ts > running_max:
            running_max = t.ts
        else:
            worst = max(worst, running_max - t.ts)
    return worst
