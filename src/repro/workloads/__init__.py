"""Workload generators: T-Drive-like, Network-like, synthetic, queries."""

from repro.workloads.io import (
    load_csv,
    load_jsonl,
    load_sorted_check,
    save_csv,
    save_jsonl,
)
from repro.workloads.network import (
    NETWORK_TUPLE_BYTES,
    AccessRecord,
    NetworkGenerator,
    int_to_ip,
    ip_to_int,
)
from repro.workloads.queries import (
    TEMPORAL_MODES,
    QueryGenerator,
    QuerySpec,
    random_key_range,
    temporal_window,
)
from repro.workloads.replay import max_observed_lateness, with_lateness
from repro.workloads.synthetic import (
    SYNTHETIC_TUPLE_BYTES,
    DriftingKeyGenerator,
    NormalKeyGenerator,
    uniform_records,
)
from repro.workloads.tdrive import (
    BEIJING_LAT,
    BEIJING_LON,
    TDRIVE_TUPLE_BYTES,
    TaxiRecord,
    TDriveGenerator,
    beijing_curve,
)

__all__ = [
    "AccessRecord",
    "save_jsonl",
    "load_jsonl",
    "save_csv",
    "load_csv",
    "load_sorted_check",
    "NetworkGenerator",
    "NETWORK_TUPLE_BYTES",
    "ip_to_int",
    "int_to_ip",
    "QueryGenerator",
    "QuerySpec",
    "TEMPORAL_MODES",
    "random_key_range",
    "temporal_window",
    "with_lateness",
    "max_observed_lateness",
    "NormalKeyGenerator",
    "DriftingKeyGenerator",
    "uniform_records",
    "SYNTHETIC_TUPLE_BYTES",
    "TDriveGenerator",
    "TaxiRecord",
    "beijing_curve",
    "BEIJING_LAT",
    "BEIJING_LON",
    "TDRIVE_TUPLE_BYTES",
]
