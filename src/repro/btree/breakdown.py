"""Insertion-time breakdown (paper Figure 7b).

Runs the same tuple batch through each tree variant with wall-clock
instrumentation enabled and reports where the time went: node splits for the
concurrent tree, data sorting for the bulk loader, template updates for the
template tree, and plain insert work for all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.btree.bulk import BulkLoadedBTree
from repro.btree.concurrent import ConcurrentBTree
from repro.btree.template import TemplateBTree
from repro.core.model import DataTuple


@dataclass
class Breakdown:
    """Seconds spent per component for one tree variant."""

    tree: str
    pure_insert: float = 0.0
    node_split: float = 0.0
    sort: float = 0.0
    build: float = 0.0
    template_update: float = 0.0

    @property
    def total(self) -> float:
        """Sum of every component."""
        return (
            self.pure_insert
            + self.node_split
            + self.sort
            + self.build
            + self.template_update
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for printing."""
        return {
            "pure_insert": self.pure_insert,
            "node_split": self.node_split,
            "sort": self.sort,
            "build": self.build,
            "template_update": self.template_update,
            "total": self.total,
        }


def measure_insertion_breakdown(
    tuples: Iterable[DataTuple],
    key_lo: int,
    key_hi: int,
    fanout: int = 64,
    leaf_capacity: int = 64,
    n_leaves: int = None,
) -> List[Breakdown]:
    """Insert the batch into each variant and return its time breakdown."""
    data = list(tuples)
    if n_leaves is None:
        n_leaves = max(1, len(data) // leaf_capacity)

    concurrent = ConcurrentBTree(
        fanout=fanout, leaf_capacity=leaf_capacity, record_timings=True
    )
    for t in data:
        concurrent.insert(t)
    concurrent_breakdown = Breakdown(
        tree="concurrent",
        pure_insert=concurrent.stats.insert_seconds
        - concurrent.stats.split_seconds,
        node_split=concurrent.stats.split_seconds,
    )

    bulk = BulkLoadedBTree(data, fanout=fanout, leaf_capacity=leaf_capacity)
    bulk_breakdown = Breakdown(
        tree="bulk",
        sort=bulk.stats.sort_seconds,
        build=bulk.stats.build_seconds,
    )

    template = TemplateBTree(
        key_lo,
        key_hi,
        n_leaves=n_leaves,
        fanout=fanout,
        record_timings=True,
    )
    for t in data:
        template.insert(t)
    template_breakdown = Breakdown(
        tree="template",
        pure_insert=template.stats.insert_seconds,
        template_update=template.stats.template_update_seconds,
    )

    return [concurrent_breakdown, bulk_breakdown, template_breakdown]


def simulated_insertion_breakdown(
    tuples: Iterable[DataTuple],
    key_lo: int,
    key_hi: int,
    costs=None,
    fanout: int = 64,
    leaf_capacity: int = 64,
    n_leaves: int = None,
    warm_template: bool = True,
) -> List[Breakdown]:
    """Insertion-time breakdown in the same per-operation cost units as the
    thread-scaling simulation (Figure 7a).

    Event counts come from really inserting the batch into each structure
    (splits that actually happened, tuples actually moved by template
    updates); each event is priced by :class:`repro.btree.trace.TraceCosts`,
    so Figures 7a and 7b tell one consistent story.

    ``warm_template`` pre-fits the template to a sample of the batch first,
    matching steady-state operation where the template is recycled across
    chunk flushes (Section III-B) -- without it, the one-off bootstrap
    rebuild from the uniform initial template dominates the measurement.
    """
    from repro.btree.trace import TraceCosts

    costs = costs or TraceCosts()
    data = list(tuples)
    n = len(data)
    if n_leaves is None:
        # Target ~256 tuples per template leaf: with much smaller leaves the
        # skewness statistic (Eq. 1) trips on Poisson noise alone.
        n_leaves = max(1, n // 256)

    concurrent = ConcurrentBTree(fanout=fanout, leaf_capacity=leaf_capacity)
    for t in data:
        concurrent.insert(t)
    per_insert = costs.traverse_per_level * max(1, concurrent.height - 1)
    per_insert += costs.leaf_insert
    concurrent_breakdown = Breakdown(
        tree="concurrent",
        pure_insert=n * per_insert,
        node_split=concurrent.stats.splits * costs.leaf_split,
    )

    bulk_breakdown = Breakdown(
        tree="bulk",
        sort=n * costs.leaf_insert * 1.4,
        build=n * costs.leaf_insert * 0.5,
    )

    template = TemplateBTree(key_lo, key_hi, n_leaves=n_leaves, fanout=fanout)
    if warm_template and data:
        for t in data[: max(1, n // 10)]:
            template.insert(t)
        template.update_template()
        template.reset_leaves()
        template.stats = type(template.stats)()
    for t in data:
        template.insert(t)
    per_insert = costs.traverse_per_level * max(1, template.height - 1)
    per_insert += costs.leaf_insert
    moved = template.stats.extra.get("tuples_moved", 0)
    template_breakdown = Breakdown(
        tree="template",
        pure_insert=n * per_insert,
        template_update=moved * costs.leaf_insert * 0.25,
    )

    return [concurrent_breakdown, bulk_breakdown, template_breakdown]
