"""Template-based B+ tree (paper Sections III-B and III-C).

The tree's inner-node skeleton -- the *template* -- is treated as read-only
during normal operation: inserts traverse it to find their leaf and modify
only that leaf, so concurrent inserts contend solely on leaf latches and the
structure never splits.  When the tree is flushed to a chunk, the leaves are
emptied and the template is recycled for the next chunk's data.

Because leaves never split, a drifting key distribution can overload some
leaves.  The adaptive template update (Section III-C) watches the skewness
factor

    S(P, D) = max_i (|K_i(D)| - n) / n,     n = |D| / l        (Eq. 1)

and, when it exceeds a threshold, rebuilds the template with boundaries that
re-divide the current keys evenly across the l leaves (Eq. 3), bulk-building
the inner nodes bottom-up.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

from repro.btree.nodes import (
    InnerNode,
    LeafNode,
    ScanStats,
    TreeStats,
    scan_leaf_run,
)
from repro.bloom.temporal import TemporalSketch
from repro.core.model import DataTuple, Predicate
from repro.obs import metrics as _obs

# Module-level handles shared by every tree instance.  The insert hot path
# pays one ENABLED check per call; wall-clock timing is sampled 1-in-64 so
# the perf_counter pair never dominates a ~2 microsecond insert.
_M_INSERTS = _obs.registry().counter("btree.inserts")
_M_INSERT_WALL = _obs.registry().histogram("btree.insert_wall_sampled")
_M_TEMPLATE_UPDATES = _obs.registry().counter("btree.template_updates")
_M_TEMPLATE_WALL = _obs.registry().histogram("btree.template_update_wall")
_M_TUPLES_MOVED = _obs.registry().counter("btree.template_tuples_moved")
_INSERT_SAMPLE_MASK = 63


def build_inner_template(
    nodes: List[object], separators: List[int], fanout: int
) -> Tuple[object, int]:
    """Bulk-build inner levels over ``nodes`` (bottom-up).

    ``separators[i]`` is the smallest key routed to ``nodes[i + 1]``.
    Returns (root, height including the given level).
    """
    if len(separators) != len(nodes) - 1:
        raise ValueError("need exactly len(nodes) - 1 separators")
    height = 1
    while len(nodes) > 1:
        new_nodes: List[object] = []
        new_separators: List[int] = []
        i = 0
        while i < len(nodes):
            j = min(i + fanout, len(nodes))
            parent = InnerNode(
                keys=list(separators[i : j - 1]), children=list(nodes[i:j])
            )
            new_nodes.append(parent)
            if j < len(nodes):
                new_separators.append(separators[j - 1])
            i = j
        nodes, separators = new_nodes, new_separators
        height += 1
    return nodes[0], height


class TemplateBTree:
    """B+ tree with a reusable read-only inner-node template.

    ``n_leaves`` (the paper's *l*) is sized from the chunk capacity; the
    initial template divides ``[key_lo, key_hi)`` uniformly and subsequent
    template updates re-fit it to the observed key distribution.
    """

    def __init__(
        self,
        key_lo: int,
        key_hi: int,
        n_leaves: int = 64,
        fanout: int = 64,
        sketch_granularity: Optional[float] = None,
        skew_threshold: float = 0.2,
        check_every: int = 4096,
        record_timings: bool = False,
    ):
        if key_hi <= key_lo:
            raise ValueError("empty key interval")
        if n_leaves < 1:
            raise ValueError("n_leaves must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.key_lo = key_lo
        self.key_hi = key_hi
        self.n_leaves = n_leaves
        self.fanout = fanout
        self.sketch_granularity = sketch_granularity
        self.skew_threshold = skew_threshold
        self.check_every = max(1, check_every)
        self.record_timings = record_timings
        self.stats = TreeStats()
        self._size = 0
        self._since_check = 0
        self._height = 1
        self._leaves: List[LeafNode] = []
        self._root: object = None
        self.last_leaf_id: Optional[int] = None
        self._obs_synced = 0
        self._install_template(self._uniform_boundaries())

    # --- template construction ----------------------------------------------

    def _uniform_boundaries(self) -> List[int]:
        """Initial separators: uniform split of the configured key interval."""
        span = self.key_hi - self.key_lo
        step = span / self.n_leaves
        boundaries = []
        for i in range(1, self.n_leaves):
            b = self.key_lo + int(round(step * i))
            if not boundaries or b > boundaries[-1]:
                boundaries.append(b)
        return boundaries

    def _new_leaf(self) -> LeafNode:
        sketch = None
        if self.sketch_granularity is not None:
            sketch = TemporalSketch(granularity=self.sketch_granularity)
        return LeafNode(sketch=sketch)

    def _install_template(self, separators: List[int]) -> None:
        """Create fresh empty leaves split at ``separators`` and bulk-build
        the inner template above them."""
        n = len(separators) + 1
        leaves = [self._new_leaf() for _ in range(n)]
        for left, right in zip(leaves, leaves[1:]):
            left.next_leaf = right
        self._leaves = leaves
        if n == 1:
            self._root = leaves[0]
            self._height = 1
        else:
            self._root, self._height = build_inner_template(
                list(leaves), list(separators), self.fanout
            )
        self._separators = list(separators)

    # --- basic operations -----------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height in levels (1 = a single leaf)."""
        return self._height

    @property
    def separators(self) -> List[int]:
        """Current leaf boundaries (the range partition P of Section III-C)."""
        return list(self._separators)

    def _leaf_for(self, key: int) -> LeafNode:
        node = self._root
        while isinstance(node, InnerNode):
            node = node.child_for(key)
        return node

    def insert(self, t: DataTuple) -> None:
        """Insert via the read-only template; never splits any node."""
        # Enabled-mode cost on this ~1 us hot path is one flag read plus a
        # mask test; all registry work happens on the 1-in-64 sampled
        # inserts (wall timing, and a batched counter sync -- see
        # _sync_insert_counter), so ``btree.inserts`` lags the true total
        # by at most _INSERT_SAMPLE_MASK until the next sample or flush.
        sampled = (
            (self._size & _INSERT_SAMPLE_MASK) == 0 if _obs.ENABLED else False
        )
        timed = self.record_timings or sampled
        started = time.perf_counter() if timed else 0.0
        leaf = self._leaf_for(t.key)
        leaf.insert(t)
        self._size += 1
        self.stats.inserts += 1
        self.last_leaf_id = leaf.node_id
        if timed:
            elapsed = time.perf_counter() - started
            if self.record_timings:
                self.stats.insert_seconds += elapsed
            if sampled:
                _M_INSERT_WALL.observe(elapsed)
                self._sync_insert_counter()
        self._since_check += 1
        if self._since_check >= self.check_every:
            self._since_check = 0
            if self.skewness() > self.skew_threshold:
                self.update_template()

    def insert_run(self, run: List[DataTuple]) -> None:
        """Insert a key-sorted run with one leaf-to-leaf cursor.

        Equivalent to ``for t in run: self.insert(t)`` for a run sorted
        stably by key (equal keys keep their relative order), but descends
        the template once: the run is split at the leaf separators with
        bisects and each slice is merged into its leaf in one pass, instead
        of one root-to-leaf descent and one O(leaf) list insert per tuple.
        Skew detection moves to per-run granularity (one check per
        ``check_every`` inserted tuples, same trigger cadence as the
        per-tuple path up to run-boundary rounding).
        """
        n = len(run)
        if n == 0:
            return
        timed = self.record_timings
        started = time.perf_counter() if timed else 0.0
        keys = [t.key for t in run]
        seps = self._separators
        leaves = self._leaves
        i = 0
        leaf_idx = bisect_right(seps, keys[0])
        last_leaf = leaves[leaf_idx]
        while i < n:
            if leaf_idx < len(seps):
                # First run index belonging to a later leaf.
                j = bisect_left(keys, seps[leaf_idx], i)
            else:
                j = n
            if j > i:
                last_leaf = leaves[leaf_idx]
                last_leaf.insert_run(run[i:j])
                i = j
            if i < n:
                leaf_idx = bisect_right(seps, keys[i], leaf_idx)
        self._size += n
        self.stats.inserts += n
        self.last_leaf_id = last_leaf.node_id
        if timed:
            self.stats.insert_seconds += time.perf_counter() - started
        if _obs.ENABLED:
            self._sync_insert_counter()
        self._since_check += n
        if self._since_check >= self.check_every:
            self._since_check = 0
            if self.skewness() > self.skew_threshold:
                self.update_template()

    def _sync_insert_counter(self) -> None:
        """Push inserts since the last sync into ``btree.inserts``.

        Batching the registry counter keeps the per-insert enabled-mode
        overhead to a flag read; called on sampled inserts and at flush /
        template-update boundaries so the counter is exact there.
        """
        delta = self.stats.inserts - self._obs_synced
        if delta:
            _M_INSERTS.value += delta
            self._obs_synced = self.stats.inserts

    # --- skew detection & template update (Eq. 1-3) ---------------------------

    def skewness(self) -> float:
        """Distribution skewness factor S(P, D) of Eq. 1."""
        l = len(self._leaves)
        if self._size == 0 or l == 0:
            return 0.0
        mean = self._size / l
        largest = max(len(leaf) for leaf in self._leaves)
        return (largest - mean) / mean

    def update_template(self) -> float:
        """Rebuild the template so leaves evenly divide the current keys
        (Eq. 2-3); returns the elapsed wall-clock seconds (Figure 10)."""
        started = time.perf_counter()
        tuples = self.all_tuples()  # key-ordered: leaves are ordered runs
        keys = [t.key for t in tuples]
        separators = self._even_separators(keys, self.n_leaves)
        old_sketch = self.sketch_granularity
        self._install_template(separators)
        # Redistribute tuples into the new leaves by boundary position.
        bounds = separators + [None]
        start = 0
        for leaf, bound in zip(self._leaves, bounds):
            stop = len(keys) if bound is None else bisect_left(keys, bound, start)
            leaf.keys = keys[start:stop]
            leaf.tuples = tuples[start:stop]
            if old_sketch is not None:
                leaf.rebuild_sketch(old_sketch)
            start = stop
        elapsed = time.perf_counter() - started
        self.stats.template_updates += 1
        self.stats.template_update_seconds += elapsed
        self.stats.extra["tuples_moved"] = (
            self.stats.extra.get("tuples_moved", 0) + len(tuples)
        )
        if _obs.ENABLED:
            _M_TEMPLATE_UPDATES.inc()
            _M_TEMPLATE_WALL.observe(elapsed)
            _M_TUPLES_MOVED.inc(len(tuples))
            self._sync_insert_counter()
        return elapsed

    @staticmethod
    def _even_separators(sorted_keys: List[int], n_leaves: int) -> List[int]:
        """Boundaries dividing ``sorted_keys`` into ``n_leaves`` even runs
        (Eq. 3), deduplicated so inner-node keys stay strictly increasing."""
        total = len(sorted_keys)
        if total == 0 or n_leaves <= 1:
            return []
        per_leaf = total / n_leaves
        separators: List[int] = []
        for i in range(1, n_leaves):
            boundary = sorted_keys[min(total - 1, int(i * per_leaf))]
            if not separators or boundary > separators[-1]:
                separators.append(boundary)
        return separators

    # --- flush support ---------------------------------------------------------

    def reset_leaves(self) -> None:
        """Empty every leaf, retaining the template (the post-flush recycle
        of Section III-B)."""
        if _obs.ENABLED:
            self._sync_insert_counter()
        for leaf in self._leaves:
            leaf.keys = []
            leaf.tuples = []
            if leaf.sketch is not None:
                leaf.sketch.clear()
        self._size = 0
        self._since_check = 0

    def spawn(self) -> "TemplateBTree":
        """A fresh empty tree sharing this tree's configuration and
        *current* separators -- the seal-and-swap handoff.

        Where :meth:`reset_leaves` recycles the template by emptying the
        leaves in place, ``spawn`` leaves this tree untouched (it becomes
        the sealed immutable snapshot a background flush serializes) and
        returns the tree that takes over ingestion, built on the same
        template so the Section III-B recycle still holds.
        """
        if _obs.ENABLED:
            self._sync_insert_counter()
        clone = TemplateBTree.__new__(TemplateBTree)
        # Mirrors __init__ minus the uniform-boundary install (the live
        # separators go straight in, skipping one throwaway template build).
        clone.key_lo = self.key_lo
        clone.key_hi = self.key_hi
        clone.n_leaves = self.n_leaves
        clone.fanout = self.fanout
        clone.sketch_granularity = self.sketch_granularity
        clone.skew_threshold = self.skew_threshold
        clone.check_every = self.check_every
        clone.record_timings = self.record_timings
        clone.stats = TreeStats()
        clone._size = 0
        clone._since_check = 0
        clone._height = 1
        clone._leaves = []
        clone._root = None
        clone.last_leaf_id = None
        clone._obs_synced = 0
        clone._install_template(self.separators)
        return clone

    # --- queries ----------------------------------------------------------------

    def range_query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float = float("-inf"),
        t_hi: float = float("inf"),
        predicate: Optional[Predicate] = None,
        use_sketch: bool = True,
    ) -> Tuple[List[DataTuple], ScanStats]:
        """All tuples in the inclusive key range and time window."""
        stats = ScanStats()
        node = self._root
        while isinstance(node, InnerNode):
            stats.inner_nodes_visited += 1
            node = node.child_for_scan(key_lo)
        out: List[DataTuple] = []
        scan_leaf_run(
            node, key_lo, key_hi, t_lo, t_hi, predicate, use_sketch, stats, out
        )
        return out, stats

    def point_read(self, key: int) -> List[DataTuple]:
        """All tuples with exactly this key."""
        tuples, _stats = self.range_query(key, key)
        return tuples

    # --- introspection ------------------------------------------------------------

    def leaves(self) -> List[LeafNode]:
        """Every leaf, left to right."""
        return list(self._leaves)

    def leaf_sizes(self) -> List[int]:
        """Tuple count per leaf (skew diagnostics)."""
        return [len(leaf) for leaf in self._leaves]

    def all_tuples(self) -> List[DataTuple]:
        """Every stored tuple, key-ordered."""
        out: List[DataTuple] = []
        for leaf in self._leaves:
            out.extend(leaf.tuples)
        return out

    def time_bounds(self) -> Optional[Tuple[float, float]]:
        """(min_ts, max_ts) over the in-memory tuples, None when empty."""
        lo = None
        hi = None
        for leaf in self._leaves:
            if not leaf.tuples:
                continue
            timestamps = [t.ts for t in leaf.tuples]
            leaf_lo = min(timestamps)
            leaf_hi = max(timestamps)
            if lo is None or leaf_lo < lo:
                lo = leaf_lo
            if hi is None or leaf_hi > hi:
                hi = leaf_hi
        if lo is None:
            return None
        return lo, hi

    def key_bounds(self) -> Optional[Tuple[int, int]]:
        """(min_key, max_key) over the in-memory tuples, None when empty."""
        lo = None
        hi = None
        for leaf in self._leaves:
            if leaf.keys:
                first, last = leaf.keys[0], leaf.keys[-1]
                if lo is None or first < lo:
                    lo = first
                if hi is None or last > hi:
                    hi = last
        if lo is None:
            return None
        return lo, hi
