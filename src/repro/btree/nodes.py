"""Shared B+ tree node structures and range-scan helpers.

Both tree variants (the classic concurrent B+ tree and the template-based
tree of paper Section III-B) use the same leaf and inner node layout, so the
insertion-performance comparison isolates the maintenance protocol -- exactly
the methodology of the paper's Section VI-A ("implemented with exactly the
same data structures").

Leaves keep tuples sorted by key (parallel ``keys`` / ``tuples`` arrays,
``bisect`` insertion) and optionally carry a :class:`TemporalSketch` so range
scans can skip leaves with no temporally matching tuples (Section IV-B).
"""

from __future__ import annotations

import itertools
import operator
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.bloom.temporal import TemporalSketch
from repro.core.model import DataTuple, Predicate

_node_ids = itertools.count(1)

#: C-speed key extractor for the insert_run merge sort.
_TUPLE_KEY = operator.attrgetter("key")


class LeafNode:
    """Sorted run of tuples plus sibling link and temporal sketch."""

    __slots__ = ("node_id", "keys", "tuples", "next_leaf", "sketch")

    def __init__(self, sketch: Optional[TemporalSketch] = None):
        self.node_id = next(_node_ids)
        self.keys: List[int] = []
        self.tuples: List[DataTuple] = []
        self.next_leaf: Optional["LeafNode"] = None
        self.sketch = sketch

    def __len__(self) -> int:
        return len(self.keys)

    def insert(self, t: DataTuple) -> None:
        """Insert keeping key order; equal keys append after existing ones."""
        pos = bisect_right(self.keys, t.key)
        self.keys.insert(pos, t.key)
        self.tuples.insert(pos, t)
        if self.sketch is not None:
            self.sketch.add_timestamp(t.ts)

    def insert_run(self, run: List[DataTuple]) -> None:
        """Merge a key-sorted run of tuples into the leaf in one pass.

        Equivalent to calling :meth:`insert` on each tuple in run order
        (equal keys land after existing ones, run order preserved among
        themselves), but costs one merge instead of per-tuple bisects and
        O(leaf) list inserts.
        """
        if not run:
            return
        if self.sketch is not None:
            self.sketch.add_timestamps([t.ts for t in run])
        run_keys = [t.key for t in run]
        if not self.keys or self.keys[-1] <= run_keys[0]:
            # Appending run: the common case for time-correlated keys and
            # for freshly reset leaves.
            self.keys.extend(run_keys)
            self.tuples.extend(run)
            return
        # Stable sort of the concatenation: existing tuples sit first, so
        # equal keys keep them ahead of the run -- exactly insert()'s
        # bisect_right placement -- and Timsort merges the two already
        # sorted halves in O(n) at C speed.
        self.keys.extend(run_keys)
        self.keys.sort()
        self.tuples.extend(run)
        self.tuples.sort(key=_TUPLE_KEY)

    def scan(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float,
        t_hi: float,
        predicate: Optional[Predicate],
        out: list,
    ) -> int:
        """Append matching tuples (inclusive key bounds) to ``out``;
        returns the number of tuples examined."""
        start = bisect_left(self.keys, key_lo)
        stop = bisect_right(self.keys, key_hi)
        examined = 0
        for i in range(start, stop):
            t = self.tuples[i]
            examined += 1
            if t_lo <= t.ts <= t_hi and (predicate is None or predicate(t)):
                out.append(t)
        return examined

    def min_key(self) -> int:
        """Smallest key stored in the leaf."""
        return self.keys[0]

    def rebuild_sketch(self, granularity: float) -> None:
        """Recompute the temporal sketch from current contents."""
        self.sketch = TemporalSketch(
            granularity=granularity, expected_items=max(64, len(self.tuples))
        )
        self.sketch.add_timestamps([t.ts for t in self.tuples])


class InnerNode:
    """Router node: ``children[i]`` holds keys < ``keys[i]``;
    ``children[-1]`` holds the rest.  ``len(children) == len(keys) + 1``."""

    __slots__ = ("node_id", "keys", "children")

    def __init__(self, keys: Optional[List[int]] = None, children: Optional[list] = None):
        self.node_id = next(_node_ids)
        self.keys: List[int] = keys if keys is not None else []
        self.children: list = children if children is not None else []

    def child_for(self, key: int) -> object:
        """The child subtree new inserts of ``key`` are routed to."""
        return self.children[bisect_right(self.keys, key)]

    def child_index(self, key: int) -> int:
        """Index of the child new inserts of ``key`` go to."""
        return bisect_right(self.keys, key)

    def child_for_scan(self, key: int) -> object:
        """The leftmost child that may still hold ``key``.

        Differs from :meth:`child_for` only for duplicate keys: a leaf split
        can leave copies of the separator key in the left sibling, so range
        scans must start their leaf walk at the bisect-left child.
        """
        return self.children[bisect_left(self.keys, key)]


@dataclass
class ScanStats:
    """Accounting for one range scan (drives latency simulation & tests)."""

    leaves_visited: int = 0
    leaves_skipped: int = 0
    tuples_examined: int = 0
    inner_nodes_visited: int = 0


@dataclass
class TreeStats:
    """Cumulative maintenance accounting per tree (Figure 7b breakdown)."""

    inserts: int = 0
    splits: int = 0
    insert_seconds: float = 0.0
    split_seconds: float = 0.0
    sort_seconds: float = 0.0
    build_seconds: float = 0.0
    template_updates: int = 0
    template_update_seconds: float = 0.0
    extra: dict = field(default_factory=dict)


def iter_leaves(first_leaf: Optional[LeafNode]) -> Iterator[LeafNode]:
    """Walk the sibling chain from a leaf."""
    leaf = first_leaf
    while leaf is not None:
        yield leaf
        leaf = leaf.next_leaf


def scan_leaf_run(
    leaf: Optional[LeafNode],
    key_lo: int,
    key_hi: int,
    t_lo: float,
    t_hi: float,
    predicate: Optional[Predicate],
    use_sketch: bool,
    stats: ScanStats,
    out: list,
) -> None:
    """Walk the sibling chain from ``leaf`` while leaves can still contain
    keys <= ``key_hi``, applying the temporal sketch to skip leaves."""
    while leaf is not None:
        if leaf.keys and leaf.keys[0] > key_hi:
            return
        skip = (
            use_sketch
            and leaf.sketch is not None
            and not leaf.sketch.might_overlap(t_lo, t_hi)
        )
        if skip:
            stats.leaves_skipped += 1
        else:
            stats.leaves_visited += 1
            stats.tuples_examined += leaf.scan(
                key_lo, key_hi, t_lo, t_hi, predicate, out
            )
        leaf = leaf.next_leaf


__all__ = [
    "LeafNode",
    "InnerNode",
    "ScanStats",
    "TreeStats",
    "iter_leaves",
    "scan_leaf_run",
    "insort",
]
