"""Latch-trace builders: real tree operations -> virtual-thread workloads.

Fig. 7a of the paper measures insertion throughput of the template vs.
concurrent vs. bulk-loading B+ trees as insertion threads increase.  The GIL
forbids demonstrating that with real Python threads, so each tree is driven
single-threaded here while recording, per operation, the latch segments a
real multi-threaded execution would have taken:

* **Concurrent B+ tree** (Bayer-Schkolnick): writers take exclusive latches
  down the path root->leaf (released as lower levels prove safe; the root
  exclusive grab is what serializes writers), plus the split work under the
  leaf latch.  Readers take shared latches down the same path.
* **Template B+ tree**: the template is read-only, so traversal is latch-free
  for both inserts and reads; only the leaf latch is taken (exclusive for
  inserts, shared for reads).

The resulting operations replay through
:class:`repro.simulation.threads.LockSimulator` at any thread count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.btree.concurrent import ConcurrentBTree
from repro.btree.template import TemplateBTree
from repro.core.model import DataTuple
from repro.simulation.threads import Operation, Segment


@dataclass(frozen=True)
class TraceCosts:
    """Per-segment durations (seconds) used when synthesizing latch traces.

    Defaults approximate a modern in-memory B+ tree; benches may calibrate
    ``leaf_insert`` from a measured single-thread run via :meth:`calibrated`.
    """

    traverse_per_level: float = 0.3e-6
    leaf_insert: float = 1.2e-6
    leaf_read: float = 1.0e-6
    leaf_split: float = 30.0e-6
    inner_split: float = 15.0e-6

    @classmethod
    def calibrated(cls, measured_insert_seconds: float, n_inserts: int) -> "TraceCosts":
        """Scale all durations so a single-thread replay matches a measured
        single-thread insert run."""
        if n_inserts <= 0 or measured_insert_seconds <= 0:
            return cls()
        base = cls()
        default_per_op = base.traverse_per_level * 3 + base.leaf_insert
        measured_per_op = measured_insert_seconds / n_inserts
        scale = measured_per_op / default_per_op
        return cls(
            traverse_per_level=base.traverse_per_level * scale,
            leaf_insert=base.leaf_insert * scale,
            leaf_read=base.leaf_read * scale,
            leaf_split=base.leaf_split * scale,
            inner_split=base.inner_split * scale,
        )


def record_concurrent_insert_ops(
    tree: ConcurrentBTree,
    tuples: Iterable[DataTuple],
    costs: Optional[TraceCosts] = None,
) -> List[Operation]:
    """Insert ``tuples`` into ``tree`` for real, recording the latch segments
    each insert would take under the Bayer-Schkolnick writer protocol."""
    costs = costs or TraceCosts()
    ops: List[Operation] = []
    for t in tuples:
        tree.insert(t)
        info = tree.last_insert_info
        # Lock coupling: the writer holds the root latch exclusively for the
        # whole descent (released only once a safe child is reached, which in
        # the pessimistic protocol is at the leaf), then does leaf work under
        # the leaf latch.  Splits extend the root-held phase, since unsafe
        # ancestors stay locked while the split propagates.
        descent = costs.traverse_per_level * max(1, len(info.path_ids))
        if info.split_levels:
            descent += costs.leaf_split
            descent += costs.inner_split * (info.split_levels - 1)
        segments: List[Segment] = []
        if info.path_ids:
            segments.append(Segment(info.path_ids[0], True, descent))
        else:
            segments.append(Segment(None, False, descent))
        segments.append(Segment(info.leaf_id, True, costs.leaf_insert))
        ops.append(segments)
    return ops


def record_concurrent_read_ops(
    tree: ConcurrentBTree,
    keys: Iterable[int],
    costs: Optional[TraceCosts] = None,
) -> List[Operation]:
    """Point reads against ``tree``: shared latches along the path."""
    costs = costs or TraceCosts()
    ops: List[Operation] = []
    for key in keys:
        path_ids: List[int] = []
        node = tree._root
        from repro.btree.nodes import InnerNode  # local import avoids a cycle

        while isinstance(node, InnerNode):
            path_ids.append(node.node_id)
            node = node.child_for(key)
        segments = [
            Segment(node_id, False, costs.traverse_per_level)
            for node_id in path_ids
        ]
        segments.append(Segment(node.node_id, False, costs.leaf_read))
        ops.append(segments)
    return ops


def record_template_insert_ops(
    tree: TemplateBTree,
    tuples: Iterable[DataTuple],
    costs: Optional[TraceCosts] = None,
) -> List[Operation]:
    """Insert ``tuples`` into ``tree`` for real, recording the latch-free
    traversal plus the exclusive leaf latch each insert takes."""
    costs = costs or TraceCosts()
    ops: List[Operation] = []
    for t in tuples:
        tree.insert(t)
        traverse = costs.traverse_per_level * max(1, tree.height - 1)
        ops.append(
            [
                Segment(None, False, traverse),
                Segment(tree.last_leaf_id, True, costs.leaf_insert),
            ]
        )
    return ops


def record_template_read_ops(
    tree: TemplateBTree,
    keys: Iterable[int],
    costs: Optional[TraceCosts] = None,
) -> List[Operation]:
    """Point reads against the template tree: latch-free traversal, shared
    leaf latch."""
    costs = costs or TraceCosts()
    traverse = costs.traverse_per_level * max(1, tree.height - 1)
    ops: List[Operation] = []
    for key in keys:
        leaf = tree._leaf_for(key)
        ops.append(
            [
                Segment(None, False, traverse),
                Segment(leaf.node_id, False, costs.leaf_read),
            ]
        )
    return ops


def bulk_load_ops(
    n_tuples: int, costs: Optional[TraceCosts] = None
) -> List[Operation]:
    """Bulk loading parallelizes the sort but builds the tree serially; we
    model each tuple's share as sortable work (comparison sort: ~log n
    comparisons per tuple) plus a serialized build slice behind a single
    build lock."""
    costs = costs or TraceCosts()
    sort_work = costs.leaf_insert * 1.4  # n log n comparisons per tuple
    build_work = costs.leaf_insert * 0.5  # serial bottom-up build per tuple
    build_lock = -1  # sentinel lock id shared by every op
    return [
        [Segment(None, False, sort_work), Segment(build_lock, True, build_work)]
        for _ in range(n_tuples)
    ]
