"""Bulk-loading B+ tree baseline (paper Section VI-A).

Sorts the whole batch of tuples first, then builds the index bottom-up --
the classic textbook bulk loader.  No tuple is visible until the build
completes, which is why the paper evaluates only its insertion cost, not
its query latency; we keep queries implemented anyway for testing.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Tuple

from repro.btree.nodes import InnerNode, LeafNode, ScanStats, TreeStats, scan_leaf_run
from repro.btree.template import build_inner_template
from repro.bloom.temporal import TemporalSketch
from repro.core.model import DataTuple, Predicate


class BulkLoadedBTree:
    """Immutable B+ tree built bottom-up from a batch of tuples."""

    def __init__(
        self,
        tuples: Iterable[DataTuple],
        fanout: int = 64,
        leaf_capacity: int = 64,
        sketch_granularity: Optional[float] = None,
        presorted: bool = False,
    ):
        if fanout < 2 or leaf_capacity < 1:
            raise ValueError("fanout must be >= 2, leaf_capacity >= 1")
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self.sketch_granularity = sketch_granularity
        self.stats = TreeStats()

        data = list(tuples)
        started = time.perf_counter()
        if not presorted:
            data.sort(key=lambda t: t.key)
        self.stats.sort_seconds = time.perf_counter() - started

        started = time.perf_counter()
        self._leaves = self._build_leaves(data)
        if len(self._leaves) == 1:
            self._root: object = self._leaves[0]
            self._height = 1
        else:
            separators = [leaf.keys[0] for leaf in self._leaves[1:]]
            self._root, self._height = build_inner_template(
                list(self._leaves), separators, fanout
            )
        self.stats.build_seconds = time.perf_counter() - started
        self.stats.inserts = len(data)
        self._size = len(data)

    def _build_leaves(self, data: List[DataTuple]) -> List[LeafNode]:
        leaves: List[LeafNode] = []
        for start in range(0, max(1, len(data)), self.leaf_capacity):
            run = data[start : start + self.leaf_capacity]
            leaf = LeafNode()
            leaf.keys = [t.key for t in run]
            leaf.tuples = run
            if self.sketch_granularity is not None:
                sketch = TemporalSketch(
                    granularity=self.sketch_granularity,
                    expected_items=max(64, len(run)),
                )
                for t in run:
                    sketch.add_timestamp(t.ts)
                leaf.sketch = sketch
            leaves.append(leaf)
            if not data:
                break
        for left, right in zip(leaves, leaves[1:]):
            left.next_leaf = right
        return leaves

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height in levels (1 = a single leaf)."""
        return self._height

    def range_query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float = float("-inf"),
        t_hi: float = float("inf"),
        predicate: Optional[Predicate] = None,
        use_sketch: bool = True,
    ) -> Tuple[List[DataTuple], ScanStats]:
        """All tuples in the inclusive key range and time window."""
        stats = ScanStats()
        node = self._root
        while isinstance(node, InnerNode):
            stats.inner_nodes_visited += 1
            node = node.child_for_scan(key_lo)
        out: List[DataTuple] = []
        scan_leaf_run(
            node, key_lo, key_hi, t_lo, t_hi, predicate, use_sketch, stats, out
        )
        return out, stats

    def leaves(self) -> List[LeafNode]:
        """Every leaf, left to right."""
        return list(self._leaves)

    def all_tuples(self) -> List[DataTuple]:
        """Every stored tuple, key-ordered."""
        out: List[DataTuple] = []
        for leaf in self._leaves:
            out.extend(leaf.tuples)
        return out
