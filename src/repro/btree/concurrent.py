"""Classic concurrent B+ tree baseline (paper Section VI-A).

This is a textbook B+ tree with node splits, structured exactly like the
template tree (same leaf/inner layout) so that the only difference between
the two is index maintenance: this tree splits nodes and -- on real hardware
-- follows the Bayer-Schkolnick latching protocol, taking exclusive latches
down the unsafe path for writers.

In this single-process reproduction the latch *protocol* is replayed by
``repro.simulation.threads``; the tree records, per insert, which nodes the
insert touched and whether splits occurred (``last_insert_info``) so the
trace builder in :mod:`repro.btree.trace` can synthesize the latch segments.
Wall-clock split vs. insert time is accounted in ``stats`` for the Figure 7b
breakdown.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.btree.nodes import (
    InnerNode,
    LeafNode,
    ScanStats,
    TreeStats,
    scan_leaf_run,
)
from repro.bloom.temporal import TemporalSketch
from repro.core.model import DataTuple, Predicate


class InsertInfo:
    """What the most recent insert did (consumed by the trace builder)."""

    __slots__ = ("path_ids", "leaf_id", "split_levels")

    def __init__(self, path_ids: List[int], leaf_id: int, split_levels: int):
        self.path_ids = path_ids  # inner node ids from root to leaf parent
        self.leaf_id = leaf_id
        self.split_levels = split_levels  # 0 = no split, 1 = leaf split, ...


class ConcurrentBTree:
    """B+ tree with node splits and per-operation instrumentation."""

    def __init__(
        self,
        fanout: int = 64,
        leaf_capacity: int = 64,
        sketch_granularity: Optional[float] = None,
        record_timings: bool = False,
    ):
        if fanout < 4 or leaf_capacity < 4:
            raise ValueError("fanout and leaf_capacity must be >= 4")
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self.sketch_granularity = sketch_granularity
        self.record_timings = record_timings
        self.stats = TreeStats()
        self._root: object = self._new_leaf()
        self._height = 1
        self._size = 0
        self.last_insert_info: Optional[InsertInfo] = None

    def _new_leaf(self) -> LeafNode:
        sketch = None
        if self.sketch_granularity is not None:
            sketch = TemporalSketch(granularity=self.sketch_granularity)
        return LeafNode(sketch=sketch)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height in levels (1 = a single leaf)."""
        return self._height

    # --- insertion ----------------------------------------------------------

    def insert(self, t: DataTuple) -> None:
        """Insert one tuple, splitting overflowing nodes upward."""
        started = time.perf_counter() if self.record_timings else 0.0
        path: List[Tuple[InnerNode, int]] = []
        node = self._root
        while isinstance(node, InnerNode):
            idx = node.child_index(t.key)
            path.append((node, idx))
            node = node.children[idx]
        leaf: LeafNode = node
        leaf.insert(t)
        self._size += 1

        split_levels = 0
        if len(leaf) > self.leaf_capacity:
            split_started = time.perf_counter() if self.record_timings else 0.0
            split_levels = self._split_upwards(leaf, path)
            if self.record_timings:
                self.stats.split_seconds += time.perf_counter() - split_started
            self.stats.splits += split_levels

        self.stats.inserts += 1
        if self.record_timings:
            self.stats.insert_seconds += time.perf_counter() - started
        self.last_insert_info = InsertInfo(
            [inner.node_id for inner, _ in path], leaf.node_id, split_levels
        )

    def _split_upwards(self, leaf: LeafNode, path: List[Tuple[InnerNode, int]]) -> int:
        """Split the overflowing leaf and propagate; returns levels split."""
        separator, right = self._split_leaf(leaf)
        levels = 1
        new_child: object = right
        while path:
            parent, idx = path.pop()
            parent.keys.insert(idx, separator)
            parent.children.insert(idx + 1, new_child)
            if len(parent.children) <= self.fanout:
                return levels
            separator, new_child = self._split_inner(parent)
            levels += 1
        # The root itself split: grow the tree by one level.
        old_root = self._root
        self._root = InnerNode(keys=[separator], children=[old_root, new_child])
        self._height += 1
        return levels

    def _split_leaf(self, leaf: LeafNode) -> Tuple[int, LeafNode]:
        mid = len(leaf.keys) // 2
        right = self._new_leaf()
        right.keys = leaf.keys[mid:]
        right.tuples = leaf.tuples[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.tuples = leaf.tuples[:mid]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        if self.sketch_granularity is not None:
            leaf.rebuild_sketch(self.sketch_granularity)
            right.rebuild_sketch(self.sketch_granularity)
        return right.keys[0], right

    @staticmethod
    def _split_inner(node: InnerNode) -> Tuple[int, InnerNode]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = InnerNode(keys=node.keys[mid + 1 :], children=node.children[mid + 1 :])
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, right

    # --- queries ------------------------------------------------------------

    def range_query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float = float("-inf"),
        t_hi: float = float("inf"),
        predicate: Optional[Predicate] = None,
        use_sketch: bool = True,
    ) -> Tuple[List[DataTuple], ScanStats]:
        """All tuples with ``key_lo <= key <= key_hi`` and ts in [t_lo, t_hi]."""
        stats = ScanStats()
        node = self._root
        while isinstance(node, InnerNode):
            stats.inner_nodes_visited += 1
            node = node.child_for_scan(key_lo)
        out: List[DataTuple] = []
        scan_leaf_run(
            node, key_lo, key_hi, t_lo, t_hi, predicate, use_sketch, stats, out
        )
        return out, stats

    def point_read(self, key: int) -> List[DataTuple]:
        """All tuples with exactly this key."""
        tuples, _stats = self.range_query(key, key)
        return tuples

    # --- introspection ------------------------------------------------------

    def first_leaf(self) -> LeafNode:
        """The leftmost leaf (start of the sibling chain)."""
        node = self._root
        while isinstance(node, InnerNode):
            node = node.children[0]
        return node

    def leaves(self) -> List[LeafNode]:
        """Every leaf, left to right."""
        out = []
        leaf = self.first_leaf()
        while leaf is not None:
            out.append(leaf)
            leaf = leaf.next_leaf
        return out

    def all_tuples(self) -> List[DataTuple]:
        """Every stored tuple, key-ordered."""
        out: List[DataTuple] = []
        for leaf in self.leaves():
            out.extend(leaf.tuples)
        return out
