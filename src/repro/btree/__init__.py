"""The B+ tree family: template-based, concurrent baseline, bulk loader."""

from repro.btree.breakdown import (
    Breakdown,
    measure_insertion_breakdown,
    simulated_insertion_breakdown,
)
from repro.btree.bulk import BulkLoadedBTree
from repro.btree.concurrent import ConcurrentBTree
from repro.btree.latched import LatchedTemplateBTree, RWLock
from repro.btree.nodes import InnerNode, LeafNode, ScanStats, TreeStats
from repro.btree.template import TemplateBTree, build_inner_template
from repro.btree.trace import (
    TraceCosts,
    bulk_load_ops,
    record_concurrent_insert_ops,
    record_concurrent_read_ops,
    record_template_insert_ops,
    record_template_read_ops,
)

__all__ = [
    "Breakdown",
    "measure_insertion_breakdown",
    "simulated_insertion_breakdown",
    "BulkLoadedBTree",
    "ConcurrentBTree",
    "LatchedTemplateBTree",
    "RWLock",
    "InnerNode",
    "LeafNode",
    "ScanStats",
    "TreeStats",
    "TemplateBTree",
    "build_inner_template",
    "TraceCosts",
    "bulk_load_ops",
    "record_concurrent_insert_ops",
    "record_concurrent_read_ops",
    "record_template_insert_ops",
    "record_template_read_ops",
]
