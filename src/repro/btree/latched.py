"""Thread-safe template B+ tree with real latches.

The template tree's concurrency story (paper Section III-B) is that the
inner-node template is read-only during normal operation, so insertion and
read threads only contend on leaf latches; a template update "pauses all
tuple insertion threads on this B+ tree and rebuilds the template"
(Section III-C).

This wrapper makes that concrete with real ``threading`` primitives:

* a readers-writer *structure* lock -- inserts and queries hold it shared
  (the template is stable while they traverse); template updates and leaf
  resets hold it exclusive (everyone pauses);
* one mutex per leaf, protecting the leaf's parallel key/tuple arrays.

CPython's GIL means this brings correctness under concurrency, not
parallel speedup -- the speedup story is quantified by the latch-trace
simulation behind Figure 7a.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.btree.template import TemplateBTree
from repro.core.model import DataTuple, Predicate


class RWLock:
    """A fair-enough readers-writer lock (writers block new readers)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Block until a shared hold is granted."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Drop a shared hold."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the exclusive hold is granted."""
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Drop the exclusive hold."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _ReadGuard:
        def __init__(self, lock: "RWLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_read()
            return self

        def __exit__(self, *exc):
            self._lock.release_read()
            return False

    class _WriteGuard:
        def __init__(self, lock: "RWLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_write()
            return self

        def __exit__(self, *exc):
            self._lock.release_write()
            return False

    def read_locked(self) -> "_ReadGuard":
        """Context manager holding the lock shared."""
        return self._ReadGuard(self)

    def write_locked(self) -> "_WriteGuard":
        """Context manager holding the lock exclusively."""
        return self._WriteGuard(self)


class LatchedTemplateBTree:
    """A :class:`TemplateBTree` safe for concurrent inserts and queries."""

    def __init__(
        self,
        key_lo: int,
        key_hi: int,
        n_leaves: int = 64,
        fanout: int = 64,
        sketch_granularity: Optional[float] = None,
        skew_threshold: float = 0.2,
        check_every: int = 4096,
    ):
        # Automatic updates inside TemplateBTree.insert would bypass our
        # locking, so the inner tree never self-updates; this wrapper runs
        # the detector itself under the structure lock.
        self._tree = TemplateBTree(
            key_lo,
            key_hi,
            n_leaves=n_leaves,
            fanout=fanout,
            sketch_granularity=sketch_granularity,
            skew_threshold=float("inf"),
            check_every=1 << 62,
        )
        self.skew_threshold = skew_threshold
        self.check_every = max(1, check_every)
        self._structure = RWLock()
        self._leaf_locks: Dict[int, threading.Lock] = {}
        self._counter_lock = threading.Lock()
        self._since_check = 0
        self._rebuild_leaf_locks()

    def _rebuild_leaf_locks(self) -> None:
        self._leaf_locks = {
            leaf.node_id: threading.Lock() for leaf in self._tree.leaves()
        }

    # --- operations -----------------------------------------------------------

    def insert(self, t: DataTuple) -> None:
        """Thread-safe insert; may trigger a template update."""
        with self._structure.read_locked():
            leaf = self._tree._leaf_for(t.key)
            with self._leaf_locks[leaf.node_id]:
                leaf.insert(t)
        with self._counter_lock:
            # Shared counters live under one mutex: += is not atomic.
            self._tree._size += 1
            self._tree.stats.inserts += 1
            self._since_check += 1
            due = self._since_check >= self.check_every
            if due:
                self._since_check = 0
        if due and self.skewness() > self.skew_threshold:
            self.update_template()

    def range_query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float = float("-inf"),
        t_hi: float = float("inf"),
        predicate: Optional[Predicate] = None,
    ) -> List[DataTuple]:
        """Consistent snapshot scan: leaves are locked one at a time while
        their run is copied out."""
        out: List[DataTuple] = []
        with self._structure.read_locked():
            leaf = self._tree._leaf_for(key_lo)
            while leaf is not None:
                with self._leaf_locks[leaf.node_id]:
                    if leaf.keys and leaf.keys[0] > key_hi:
                        break
                    leaf.scan(key_lo, key_hi, t_lo, t_hi, predicate, out)
                leaf = leaf.next_leaf
        return out

    def point_read(self, key: int) -> List[DataTuple]:
        """All tuples with exactly this key."""
        return self.range_query(key, key)

    # --- maintenance --------------------------------------------------------------

    def skewness(self) -> float:
        """Eq. 1's skewness factor under the structure lock."""
        with self._structure.read_locked():
            return self._tree.skewness()

    def update_template(self) -> float:
        """Pause every insertion/read thread and rebuild the template."""
        with self._structure.write_locked():
            elapsed = self._tree.update_template()
            self._rebuild_leaf_locks()
            return elapsed

    def reset_leaves(self) -> None:
        """Empty every leaf (flush), pausing all threads."""
        with self._structure.write_locked():
            self._tree.reset_leaves()
            self._rebuild_leaf_locks()

    # --- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._structure.read_locked():
            return len(self._tree)

    @property
    def stats(self):
        """The wrapped tree's maintenance counters."""
        return self._tree.stats

    def all_tuples(self) -> List[DataTuple]:
        """Snapshot of every stored tuple, key-ordered."""
        with self._structure.read_locked():
            return self._tree.all_tuples()

    def key_bounds(self) -> Optional[Tuple[int, int]]:
        """(min key, max key) of the stored tuples, or None."""
        with self._structure.read_locked():
            return self._tree.key_bounds()
