"""Typed request/response envelopes and the :class:`Call` handle.

Every hop through the message plane is an envelope exchange:

* :class:`Request` -- what the caller sent: the edge name (who -> whom),
  the target instance, the method and its arguments.
* :class:`Response` -- what came back: the value, or the error, plus which
  attempt produced it.
* :class:`Call` -- the in-flight handle.  Synchronous callers block on
  :meth:`Call.result`; the coordinator's fan-out path instead attaches a
  completion callback and merges subquery results as they arrive.

``Call`` is a deliberately small future: completed exactly once (by the
transport worker or inline at submit time), waitable with a wall-clock
timeout, and callback-safe from any thread.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.rpc.errors import RpcTimeout

_request_ids = itertools.count(1)


@dataclass(frozen=True)
class Request:
    """One message sent down an edge of the message plane."""

    edge: str
    target: int
    method: str
    args: Tuple[Any, ...] = ()
    request_id: int = field(default_factory=lambda: next(_request_ids))


@dataclass(frozen=True)
class Response:
    """The answer to a :class:`Request`: a value or an error."""

    request_id: int
    ok: bool
    value: Any = None
    error: Optional[BaseException] = None


class Call:
    """Handle for one in-flight request (a small single-shot future)."""

    __slots__ = (
        "request", "worker_key", "_event", "_lock", "_response", "_callbacks",
    )

    def __init__(self, request: Request, worker_key: object = None):
        self.request = request
        #: Transports that run per-server workers key their queues on this.
        self.worker_key = worker_key
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._response: Optional[Response] = None
        self._callbacks: List[Callable[["Call"], None]] = []

    # --- completion (transport side) ------------------------------------------

    def _complete(self, value: Any, error: Optional[BaseException]) -> None:
        """Resolve the call exactly once; later completions are dropped
        (e.g. a worker finishing a request the caller already timed out)."""
        with self._lock:
            if self._response is not None:
                return
            self._response = Response(
                self.request.request_id, error is None, value, error
            )
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for cb in callbacks:
            cb(self)

    # --- caller side ------------------------------------------------------------

    def done(self) -> bool:
        """True once a response (value or error) is recorded."""
        return self._event.is_set()

    @property
    def response(self) -> Optional[Response]:
        """The completed :class:`Response`, or None while in flight."""
        return self._response

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the response; return its value or raise its error.

        Raises :class:`RpcTimeout` if no response lands within ``timeout``
        wall-clock seconds (the call itself stays in flight -- late
        completions are recorded but this caller has moved on).
        """
        if not self._event.wait(timeout):
            req = self.request
            raise RpcTimeout(
                f"{req.edge}[{req.target}].{req.method} did not answer "
                f"within {timeout}s"
            )
        resp = self._response
        if resp.error is not None:
            raise resp.error
        return resp.value

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        """Block for the response; return its error (None on success)."""
        if not self._event.wait(timeout):
            req = self.request
            raise RpcTimeout(
                f"{req.edge}[{req.target}].{req.method} did not answer "
                f"within {timeout}s"
            )
        return self._response.error

    def add_done_callback(self, fn: Callable[["Call"], None]) -> None:
        """Run ``fn(call)`` when the response lands (immediately if it
        already has).  Callbacks run on the completing thread."""
        with self._lock:
            if self._response is None:
                self._callbacks.append(fn)
                return
        fn(self)
