"""Fault injection for the message plane.

A :class:`FaultInjector` holds a list of rules; every request consults it
(cheaply -- one truthiness check when no rules are armed) and the first
matching rule decides the message's fate:

* ``delay`` -- sleep that many wall-clock seconds before delivering;
* ``drop``  -- the message vanishes: under a concurrent transport the call
  simply never completes (the caller's deadline fires), under the inline
  transport it degenerates to an immediate :class:`~repro.rpc.errors.RpcTimeout`;
* ``fail``  -- the edge answers with :class:`~repro.rpc.errors.RpcFault`.

Rules match on any combination of edge name, target instance and method
(``None`` = wildcard) and can be limited to the next ``times`` matching
messages -- e.g. *drop the first two subqueries sent to query server 0* is
``inject(edge="coordinator->query_server", target=0, drop=True, times=2)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class FaultRule:
    """One armed fault: match fields (None = any) plus the effect."""

    edge: Optional[str] = None
    target: Optional[int] = None
    method: Optional[str] = None
    delay: float = 0.0
    drop: bool = False
    fail: bool = False
    #: Remaining matches before the rule disarms itself; None = forever.
    times: Optional[int] = None

    def matches(self, edge: str, target: int, method: str) -> bool:
        return (
            (self.edge is None or self.edge == edge)
            and (self.target is None or self.target == target)
            and (self.method is None or self.method == method)
        )


class FaultInjector:
    """Process-wide switchboard for breaking message-plane edges."""

    def __init__(self):
        self._rules: List[FaultRule] = []
        self._lock = threading.Lock()

    def inject(
        self,
        edge: Optional[str] = None,
        target: Optional[int] = None,
        method: Optional[str] = None,
        *,
        delay: float = 0.0,
        drop: bool = False,
        fail: bool = False,
        times: Optional[int] = None,
    ) -> FaultRule:
        """Arm a rule; returns it (pass to :meth:`remove` to disarm)."""
        rule = FaultRule(edge, target, method, delay, drop, fail, times)
        with self._lock:
            self._rules.append(rule)
        return rule

    def remove(self, rule: FaultRule) -> None:
        """Disarm one rule (no-op if already gone)."""
        with self._lock:
            try:
                self._rules.remove(rule)
            except ValueError:
                pass

    def clear(self) -> None:
        """Disarm every rule (heal the plane)."""
        with self._lock:
            self._rules.clear()

    @property
    def active(self) -> bool:
        """True when at least one rule is armed."""
        return bool(self._rules)

    def decide(self, edge: str, target: int, method: str) -> Optional[FaultRule]:
        """The first matching armed rule for this message, or None.

        Consumes one ``times`` charge of the matched rule; exhausted rules
        disarm themselves.
        """
        if not self._rules:  # fast path: a healthy plane takes no lock
            return None
        with self._lock:
            for rule in self._rules:
                if not rule.matches(edge, target, method):
                    continue
                if rule.times is not None:
                    rule.times -= 1
                    if rule.times <= 0:
                        self._rules.remove(rule)
                return rule
        return None
