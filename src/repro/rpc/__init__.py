"""Message plane: typed RPC endpoints with pluggable transports.

The paper runs Waterwheel as a Storm topology (Section VI): every
cross-component hop is a real message over a transport that provides
scheduling, parallelism and failure isolation.  This package is that seam
for the reproduction: components talk through :class:`Endpoint` objects
minted by a :class:`MessagePlane`, and the plane's transport decides how
messages execute --

* :class:`InlineTransport` (default): direct calls, deterministic,
  observably identical to the pre-refactor behaviour;
* :class:`ThreadedTransport`: per-server workers + bounded queues, which
  the coordinator uses to fan chunk subqueries out concurrently.

A :class:`FaultInjector` can delay/drop/fail any edge, and per-edge
:class:`EdgePolicy` objects set timeout/retry/backoff.  See
``docs/ARCHITECTURE.md`` ("The message plane") for the edge catalogue.
"""

from repro.rpc.endpoint import EdgePolicy, Endpoint, MessagePlane
from repro.rpc.envelope import Call, Request, Response
from repro.rpc.errors import RpcError, RpcFault, RpcTimeout
from repro.rpc.faults import FaultInjector, FaultRule
from repro.rpc.transport import (
    InlineTransport,
    ThreadedTransport,
    Transport,
    make_transport,
)

__all__ = [
    "Call",
    "EdgePolicy",
    "Endpoint",
    "FaultInjector",
    "FaultRule",
    "InlineTransport",
    "MessagePlane",
    "Request",
    "Response",
    "RpcError",
    "RpcFault",
    "RpcTimeout",
    "ThreadedTransport",
    "Transport",
    "make_transport",
]
