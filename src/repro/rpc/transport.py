"""Interchangeable transports for the message plane.

A transport schedules *asynchronous* submissions (``Endpoint.submit``):

* :class:`InlineTransport` -- runs the handler immediately on the caller's
  thread.  Deterministic, zero threads, and the default everywhere; with it
  the whole system behaves exactly like direct method calls (property-tested
  in ``tests/test_rpc_equivalence.py``).
* :class:`ThreadedTransport` -- one daemon worker thread per (endpoint,
  target instance), fed by a bounded FIFO queue.  Submissions to the same
  server execute in order on its worker; submissions to different servers
  run concurrently -- this is what lets the coordinator fan chunk subqueries
  out over the query servers and merge completions as they arrive.

Synchronous ``Endpoint.call``s execute on the caller's thread under *every*
transport (a blocking round trip gains nothing from a queue hop); the
transport only governs fan-out.  Workers are spawned lazily on first use, so
an inline-driven system never pays for them.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, Tuple, Union

from repro.rpc.errors import RpcFault

#: Sentinel that tells a worker thread to exit its loop.
_STOP = object()


class Transport:
    """Base transport: schedule a unit of work for a call."""

    #: Whether submissions may run concurrently with the caller.  The
    #: coordinator uses this to pick between the deterministic virtual-time
    #: dispatch loop and the completion-driven concurrent one.
    concurrent = False
    name = "base"

    def submit(self, worker_key: object, run: Callable[[], None]) -> None:
        """Schedule ``run`` (which executes the request and completes its
        call).  ``worker_key`` identifies the logical server the request
        is addressed to."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (idempotent)."""


class InlineTransport(Transport):
    """Direct calls: ``run`` executes before ``submit`` returns."""

    concurrent = False
    name = "inline"

    def submit(self, worker_key: object, run: Callable[[], None]) -> None:  # noqa: ARG002
        run()


class ThreadedTransport(Transport):
    """Per-server worker threads with bounded FIFO queues.

    ``queue_depth`` bounds each server's inbox; a full queue back-pressures
    the submitter (``submit`` blocks) rather than dropping messages.
    """

    concurrent = True
    name = "threaded"

    def __init__(self, queue_depth: int = 64):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._queue_depth = queue_depth
        self._lock = threading.Lock()
        self._workers: Dict[object, Tuple[queue.Queue, threading.Thread]] = {}
        self._closed = False

    def _inbox(self, worker_key: object) -> queue.Queue:
        with self._lock:
            if self._closed:
                raise RpcFault("transport is closed")
            entry = self._workers.get(worker_key)
            if entry is None:
                inbox: queue.Queue = queue.Queue(self._queue_depth)
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(inbox,),
                    name=f"rpc-{worker_key}",
                    daemon=True,
                )
                self._workers[worker_key] = entry = (inbox, thread)
                thread.start()
            return entry[0]

    @staticmethod
    def _worker_loop(inbox: queue.Queue) -> None:
        while True:
            run = inbox.get()
            if run is _STOP:
                return
            run()

    def submit(self, worker_key: object, run: Callable[[], None]) -> None:
        self._inbox(worker_key).put(run)

    @property
    def worker_count(self) -> int:
        """Worker threads spawned so far (introspection / tests)."""
        return len(self._workers)

    def close(self) -> None:
        """Stop every worker; later submissions raise :class:`RpcFault`."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
        for inbox, _thread in workers:
            inbox.put(_STOP)
        for _inbox, thread in workers:
            thread.join(timeout=5.0)


def make_transport(spec: Union[str, Transport, None]) -> Transport:
    """Resolve a transport from its name (``"inline"`` / ``"threaded"``),
    pass an existing instance through, or default to inline on ``None``."""
    if spec is None:
        return InlineTransport()
    if isinstance(spec, Transport):
        return spec
    if spec == "inline":
        return InlineTransport()
    if spec == "threaded":
        return ThreadedTransport()
    raise ValueError(f"unknown transport {spec!r} (inline | threaded)")
