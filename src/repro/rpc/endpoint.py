"""Endpoints and the message plane.

An :class:`Endpoint` is one *edge* of the component graph -- e.g.
``"coordinator->query_server"`` -- bound to the callee instances on that
edge.  Callers use two verbs:

* :meth:`Endpoint.call` -- synchronous round trip.  Runs on the caller's
  thread under every transport, applies the edge's fault rules, and retries
  transport failures (:class:`RpcTimeout` / :class:`RpcFault`) per the
  edge's :class:`EdgePolicy` with exponential backoff.  Handler exceptions
  propagate unretried.
* :meth:`Endpoint.submit` -- asynchronous send returning a
  :class:`~repro.rpc.envelope.Call`.  The transport schedules it (inline:
  before ``submit`` returns; threaded: on the target server's worker); the
  caller applies its own deadline/retry policy -- this is what the
  coordinator's concurrent dispatch loop does.

A :class:`MessagePlane` owns the transport, the fault injector and the
per-edge policies, and mints endpoints.  Every component takes an optional
plane and builds a private inline one when none is given, so components
remain constructible standalone.

Per-edge ``rpc.*`` instruments (calls, latency, retries, timeouts, faults)
are registered at endpoint construction and follow the ``repro.obs``
zero-cost-when-off contract.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.obs import metrics as _obs
from repro.rpc.envelope import Call, Request
from repro.rpc.errors import RpcFault, RpcTimeout
from repro.rpc.faults import FaultInjector, FaultRule
from repro.rpc.transport import Transport, make_transport

_endpoint_ids = itertools.count(1)


@dataclass
class EdgePolicy:
    """Per-edge delivery policy (mutable: tune a live plane in place).

    ``timeout`` is the wall-clock deadline the *caller* enforces on the
    concurrent fan-out path (None = wait forever; the inline transport
    cannot preempt a running handler, so there it only caps retries of
    dropped messages).  ``retries`` bounds re-sends after a transport
    failure; ``backoff`` seconds (doubling each attempt) separate them.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.005
    backoff_factor: float = 2.0


class Endpoint:
    """One edge of the message plane, bound to its callee instances."""

    def __init__(
        self,
        plane: "MessagePlane",
        edge: str,
        instances: Sequence[Any],
        policy: EdgePolicy,
    ):
        self.edge = edge
        self.policy = policy
        self._plane = plane
        self._instances = list(instances)
        self._id = next(_endpoint_ids)
        self._methods: Dict[Tuple[int, str], Any] = {}
        reg = _obs.registry()
        self._m_calls = reg.counter("rpc.calls", edge=edge)
        self._m_latency = reg.histogram("rpc.latency", edge=edge)
        self._m_retries = reg.counter("rpc.retries", edge=edge)
        self._m_timeouts = reg.counter("rpc.timeouts", edge=edge)
        self._m_faults = reg.counter("rpc.faults", edge=edge)

    # --- plumbing ---------------------------------------------------------------

    def _bound(self, target: int, method: str):
        key = (target, method)
        fn = self._methods.get(key)
        if fn is None:
            fn = self._methods[key] = getattr(self._instances[target], method)
        return fn

    def _apply_fault(self, fault: FaultRule, req: Request) -> None:
        """Realise a matched rule on the delivering thread."""
        if fault.delay:
            time.sleep(fault.delay)
        if fault.drop:
            if _obs.ENABLED:
                self._m_timeouts.inc()
            raise RpcTimeout(
                f"{req.edge}[{req.target}].{req.method} was dropped"
            )
        if fault.fail:
            raise RpcFault(
                f"{req.edge}[{req.target}].{req.method} failed by injection"
            )

    # --- synchronous round trip ---------------------------------------------------

    def call(self, target: int, method: str, *args: Any) -> Any:
        """Send and wait; retries transport failures per the edge policy."""
        policy = self.policy
        attempts = policy.retries + 1
        backoff = policy.backoff
        for attempt in range(attempts):
            try:
                return self._attempt(target, method, args)
            except (RpcTimeout, RpcFault):
                if attempt + 1 >= attempts:
                    raise
                if _obs.ENABLED:
                    self._m_retries.inc()
                if backoff > 0.0:
                    time.sleep(backoff)
                    backoff *= policy.backoff_factor
        raise AssertionError("unreachable")  # pragma: no cover

    def _attempt(self, target: int, method: str, args: tuple) -> Any:
        enabled = _obs.ENABLED
        if enabled:
            self._m_calls.inc()
        faults = self._plane.faults
        if faults.active:
            fault = faults.decide(self.edge, target, method)
            if fault is not None:
                if enabled:
                    self._m_faults.inc()
                self._apply_fault(
                    fault, Request(self.edge, target, method, args)
                )
        if enabled:
            started = time.perf_counter()
            value = self._bound(target, method)(*args)
            self._m_latency.observe(time.perf_counter() - started)
            return value
        return self._bound(target, method)(*args)

    # --- asynchronous send ----------------------------------------------------------

    def submit(self, target: int, method: str, *args: Any) -> Call:
        """Send without waiting; returns the in-flight :class:`Call`.

        A matched ``drop`` rule under a concurrent transport means the call
        simply never completes -- the caller's deadline fires, exactly like
        a lost message.  Under the inline transport the drop degenerates to
        an immediate :class:`RpcTimeout` recorded on the call.
        """
        req = Request(self.edge, target, method, args)
        call = Call(req, worker_key=(self._id, target))
        enabled = _obs.ENABLED
        if enabled:
            self._m_calls.inc()
        fault = None
        faults = self._plane.faults
        if faults.active:
            fault = faults.decide(self.edge, target, method)
            if fault is not None and enabled:
                self._m_faults.inc()
        transport = self._plane.transport
        if fault is not None and fault.drop and transport.concurrent:
            if fault.delay:
                time.sleep(fault.delay)
            return call  # lost in flight: never completes
        bound = self._bound(target, method)

        def run() -> None:
            started = time.perf_counter()
            try:
                if fault is not None:
                    self._apply_fault(fault, req)
                value = bound(*args)
            except BaseException as exc:  # noqa: BLE001 - delivered to caller
                call._complete(None, exc)
            else:
                if _obs.ENABLED:
                    self._m_latency.observe(time.perf_counter() - started)
                call._complete(value, None)

        try:
            transport.submit(call.worker_key, run)
        except RpcFault as exc:  # transport closed
            call._complete(None, exc)
        return call

    # --- bookkeeping hooks (used by the concurrent dispatch loop) ---------------------

    def note_timeout(self) -> None:
        """Record a caller-side deadline expiry on this edge."""
        if _obs.ENABLED:
            self._m_timeouts.inc()

    def note_retry(self) -> None:
        """Record a caller-side re-send on this edge."""
        if _obs.ENABLED:
            self._m_retries.inc()


class MessagePlane:
    """Transport + fault injector + per-edge policies; mints endpoints."""

    def __init__(
        self,
        transport: Union[str, Transport, None] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.transport = make_transport(transport)
        self.faults = faults or FaultInjector()
        self._policies: Dict[str, EdgePolicy] = {}

    @property
    def concurrent(self) -> bool:
        """Whether submissions may run concurrently with the caller."""
        return self.transport.concurrent

    def policy(self, edge: str) -> EdgePolicy:
        """The (shared, mutable) policy object for an edge."""
        pol = self._policies.get(edge)
        if pol is None:
            pol = self._policies[edge] = EdgePolicy()
        return pol

    def set_policy(self, edge: str, **overrides: Any) -> EdgePolicy:
        """Tune an edge in place: ``set_policy("coordinator->query_server",
        timeout=0.2, retries=1)``.  Live endpoints see the change."""
        pol = self.policy(edge)
        for key, value in overrides.items():
            if not hasattr(pol, key):
                raise ValueError(f"unknown policy field {key!r}")
            setattr(pol, key, value)
        return pol

    def endpoint(self, edge: str, instances: Sequence[Any]) -> Endpoint:
        """Bind an edge to its callee instances."""
        return Endpoint(self, edge, instances, self.policy(edge))

    def close(self) -> None:
        """Release transport resources (worker threads); idempotent."""
        self.transport.close()
