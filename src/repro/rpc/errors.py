"""Message-plane error types.

The retry contract hangs off this hierarchy: an :class:`Endpoint` retries a
call only when the *transport* failed it -- :class:`RpcTimeout` (the edge
never answered) or :class:`RpcFault` (the edge answered garbage / was
injected to fail).  Exceptions raised by the remote handler itself (for
example ``ServerDownError`` or ``ChunkUnavailable``) propagate to the caller
unretried: they are application answers, not transport losses, and the
policy for them lives with the caller (the dispatch loop re-routes
``ServerDownError``, the coordinator turns ``ChunkUnavailable`` into a
partial result).
"""

from __future__ import annotations


class RpcError(RuntimeError):
    """Base class for transport-level failures of a message-plane call."""


class RpcTimeout(RpcError):
    """The edge did not answer within the policy deadline (or a ``drop``
    fault ate the message)."""


class RpcFault(RpcError):
    """The edge failed the message (injected ``fail`` fault, or the
    transport is closed)."""
