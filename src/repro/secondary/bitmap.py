"""Bitmaps over leaf positions, backed by arbitrary-precision ints.

The secondary indexes (paper Section VIII future work) need compact sets of
leaf indices per attribute value.  A Python int *is* an arbitrary-length
bit array with O(words) boolean algebra in C, which makes it an excellent
little bitmap: these wrap one with the usual index-engine operations.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Bitmap:
    """A growable bitmap with set algebra."""

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0):
        if bits < 0:
            raise ValueError("bitmap cannot be negative")
        self._bits = bits

    @classmethod
    def from_positions(cls, positions: Iterable[int]) -> "Bitmap":
        """A bitmap with exactly the given positions set."""
        bits = 0
        for pos in positions:
            if pos < 0:
                raise ValueError("positions must be >= 0")
            bits |= 1 << pos
        return cls(bits)

    def set(self, pos: int) -> None:
        """Set one bit."""
        if pos < 0:
            raise ValueError("positions must be >= 0")
        self._bits |= 1 << pos

    def get(self, pos: int) -> bool:
        """True when the bit at ``pos`` is set."""
        return bool((self._bits >> pos) & 1)

    def __contains__(self, pos: int) -> bool:
        return self.get(pos)

    # --- algebra -------------------------------------------------------------

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits & other._bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits | other._bits)

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits & ~other._bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bitmap) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def is_empty(self) -> bool:
        """True when no bit is set."""
        return self._bits == 0

    def __bool__(self) -> bool:
        return self._bits != 0

    # --- inspection --------------------------------------------------------------

    def count(self) -> int:
        """Number of set bits (population count)."""
        return bin(self._bits).count("1")

    def positions(self) -> Iterator[int]:
        """Yield set positions in ascending order."""
        bits = self._bits
        pos = 0
        while bits:
            if bits & 1:
                yield pos
            bits >>= 1
            pos += 1

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        return f"Bitmap({{{', '.join(map(str, self.positions()))}}})"

    # --- serialization ---------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Little-endian byte serialization (at least one byte)."""
        length = (self._bits.bit_length() + 7) // 8
        return self._bits.to_bytes(max(1, length), "little")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitmap":
        """Inverse of :meth:`to_bytes`."""
        return cls(int.from_bytes(data, "little"))
