"""Secondary indexes on non-key, non-temporal attributes.

The paper's stated future work (Section VIII): "add secondary index
structure by bitmap and bloom filters, to enable index retrieval on non-key
and non-temporal attributes".  This module implements that design at leaf
granularity:

* For each indexed attribute, a **bitmap index** maps each observed value
  to the set of leaves containing at least one tuple with that value --
  exact, ideal for low-cardinality attributes (URL, sensor type, status).
* When an attribute's cardinality exceeds a threshold, the per-value
  bitmaps are replaced by one **bloom filter of values per leaf** --
  constant space, still no false negatives.

A :class:`ChunkSecondaryIndex` is built at flush time and serialized as a
*sidecar* blob next to the chunk; query servers load it (it participates in
the LRU cache) and intersect its leaf sets with the primary key-range
candidates, so a selective attribute predicate skips most leaf reads.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.bloom.filter import BloomFilter
from repro.core.model import DataTuple
from repro.secondary.bitmap import Bitmap

_MAGIC = b"WWSX"
_VERSION = 1
_HEADER = struct.Struct("<4sHHqI")  # magic, version, reserved, n_leaves, crc32


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute to index: a name plus an extractor over the payload.

    The extractor must return a hashable value (or None to skip the tuple).
    ``numeric=True`` builds per-leaf min/max *zone maps* instead of value
    bitmaps, enabling range predicates (``attr_ranges``) on the attribute.
    """

    name: str
    extractor: Callable[[Any], Any]
    #: Above this many distinct values the index degrades gracefully from
    #: exact per-value bitmaps to per-leaf bloom filters.
    max_exact_values: int = 1024
    #: Zone-map mode for ordered attributes (temperatures, amounts, ...).
    numeric: bool = False


class _AttributeIndex:
    """Index for one attribute: exact bitmaps, per-leaf blooms, or a
    zone map (per-leaf min/max) for numeric attributes."""

    def __init__(self, spec_name: str, max_exact_values: int, numeric: bool = False):
        self.name = spec_name
        self.max_exact_values = max_exact_values
        self.numeric = numeric
        self.exact: Optional[Dict[Any, Bitmap]] = None if numeric else {}
        self.blooms: Optional[List[BloomFilter]] = None
        self.zones: Optional[List[Optional[Tuple[Any, Any]]]] = [] if numeric else None
        self._values_per_leaf: List[Set[Any]] = []

    def observe_leaf(self, values: Set[Any]) -> None:
        """Fold one leaf's distinct attribute values into the index."""
        leaf_index = len(self._values_per_leaf)
        self._values_per_leaf.append(values)
        if self.numeric:
            self.zones.append((min(values), max(values)) if values else None)
            return
        if self.exact is not None:
            for value in values:
                self.exact.setdefault(value, Bitmap()).set(leaf_index)
            if len(self.exact) > self.max_exact_values:
                self._degrade_to_blooms()

    def _degrade_to_blooms(self) -> None:
        self.exact = None
        self.blooms = []
        for values in self._values_per_leaf:
            bloom = BloomFilter.with_capacity(max(8, len(values)), 0.01)
            bloom.update(values)
            self.blooms.append(bloom)

    def finish(self) -> None:
        """Seal the index; blooms (if degraded) cover all observed leaves."""
        if self.exact is None and self.blooms is not None:
            # _degrade_to_blooms may have run before later leaves arrived.
            while len(self.blooms) < len(self._values_per_leaf):
                values = self._values_per_leaf[len(self.blooms)]
                bloom = BloomFilter.with_capacity(max(8, len(values)), 0.01)
                bloom.update(values)
                self.blooms.append(bloom)
        self._values_per_leaf = []

    def leaves_for(self, value: Any, n_leaves: int) -> Bitmap:
        """Leaves that *may* contain the value (never a false negative)."""
        if self.numeric:
            return self.leaves_for_range(value, value)
        if self.exact is not None:
            return self.exact.get(value, Bitmap())
        candidates = Bitmap()
        for leaf_index, bloom in enumerate(self.blooms or []):
            if value in bloom:
                candidates.set(leaf_index)
        return candidates

    def leaves_for_range(self, lo: Any, hi: Any) -> Bitmap:
        """Zone-map pruning: leaves whose [min, max] overlaps [lo, hi]."""
        if not self.numeric:
            raise ValueError(
                f"attribute {self.name!r} is not numeric; range predicates "
                "need AttributeSpec(numeric=True)"
            )
        candidates = Bitmap()
        for leaf_index, zone in enumerate(self.zones or []):
            if zone is None:
                continue
            z_lo, z_hi = zone
            if z_lo <= hi and lo <= z_hi:
                candidates.set(leaf_index)
        return candidates

    # --- serialization -------------------------------------------------------

    def to_payload(self) -> dict:
        """Pickle-friendly representation of this attribute's index."""
        if self.numeric:
            return {"kind": "zonemap", "zones": list(self.zones or [])}
        if self.exact is not None:
            return {
                "kind": "exact",
                "values": {v: b.to_bytes() for v, b in self.exact.items()},
            }
        return {
            "kind": "bloom",
            "blooms": [
                (b.to_bytes(), b.n_hashes, b.n_added) for b in self.blooms or []
            ],
        }

    @classmethod
    def from_payload(
        cls, name: str, payload: dict, max_exact_values: int
    ) -> "_AttributeIndex":
        if payload["kind"] == "zonemap":
            index = cls(name, max_exact_values, numeric=True)
            index.zones = [
                tuple(zone) if zone is not None else None
                for zone in payload["zones"]
            ]
            return index
        index = cls(name, max_exact_values)
        if payload["kind"] == "exact":
            index.exact = {
                v: Bitmap.from_bytes(raw) for v, raw in payload["values"].items()
            }
        else:
            index.exact = None
            index.blooms = [
                BloomFilter.from_bytes(raw, hashes, added)
                for raw, hashes, added in payload["blooms"]
            ]
        return index


class ChunkSecondaryIndex:
    """Sidecar index over one chunk's leaves for a set of attributes."""

    def __init__(self, specs: Sequence[AttributeSpec]):
        self.specs = list(specs)
        self.n_leaves = 0
        self._indexes: Dict[str, _AttributeIndex] = {
            spec.name: _AttributeIndex(
                spec.name, spec.max_exact_values, numeric=spec.numeric
            )
            for spec in specs
        }

    @classmethod
    def build(
        cls,
        specs: Sequence[AttributeSpec],
        leaves: Sequence[Tuple[List[int], List[DataTuple]]],
    ) -> "ChunkSecondaryIndex":
        """Build from the same leaf runs the chunk serializer consumes
        (empty leaves dropped, matching the chunk's leaf numbering)."""
        index = cls(specs)
        extractors = {spec.name: spec.extractor for spec in specs}
        for keys, tuples in leaves:
            if not keys:
                continue
            per_attr: Dict[str, Set[Any]] = {name: set() for name in extractors}
            for t in tuples:
                for name, extract in extractors.items():
                    value = extract(t.payload)
                    if value is not None:
                        per_attr[name].add(value)
            for name, values in per_attr.items():
                index._indexes[name].observe_leaf(values)
            index.n_leaves += 1
        for attr_index in index._indexes.values():
            attr_index.finish()
        return index

    @property
    def attribute_names(self) -> List[str]:
        """Names of the indexed attributes."""
        return [spec.name for spec in self.specs]

    def candidate_leaves(
        self,
        attr_equals: Optional[Dict[str, Any]] = None,
        attr_ranges: Optional[Dict[str, Tuple[Any, Any]]] = None,
    ) -> Optional[Bitmap]:
        """Leaves that may satisfy *all* attribute predicates.

        ``attr_equals`` are equality predicates (bitmap/bloom indexes);
        ``attr_ranges`` are inclusive (lo, hi) ranges over numeric
        attributes (zone maps).  Returns None when no predicate touches an
        indexed attribute; otherwise the AND of per-attribute leaf sets.
        """
        result: Optional[Bitmap] = None
        for name, value in (attr_equals or {}).items():
            attr_index = self._indexes.get(name)
            if attr_index is None:
                continue
            leaves = attr_index.leaves_for(value, self.n_leaves)
            result = leaves if result is None else (result & leaves)
        for name, (lo, hi) in (attr_ranges or {}).items():
            attr_index = self._indexes.get(name)
            if attr_index is None or not attr_index.numeric:
                continue
            leaves = attr_index.leaves_for_range(lo, hi)
            result = leaves if result is None else (result & leaves)
        return result

    # --- serialization -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the sidecar (header + CRC + pickled indexes)."""
        payload = pickle.dumps(
            {
                "n_leaves": self.n_leaves,
                "specs": [
                    {
                        "name": spec.name,
                        "max_exact_values": spec.max_exact_values,
                        "numeric": spec.numeric,
                    }
                    for spec in self.specs
                ],
                "indexes": {
                    name: index.to_payload()
                    for name, index in self._indexes.items()
                },
            },
            protocol=4,
        )
        header = _HEADER.pack(
            _MAGIC, _VERSION, 0, self.n_leaves, zlib.crc32(payload)
        )
        return header + payload

    @classmethod
    def from_bytes(
        cls, data: bytes, specs: Optional[Sequence[AttributeSpec]] = None
    ) -> "ChunkSecondaryIndex":
        magic, version, _reserved, n_leaves, crc = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise ValueError("not a secondary-index sidecar: bad magic")
        if version != _VERSION:
            raise ValueError(f"unsupported sidecar version {version}")
        payload = data[_HEADER.size :]
        if zlib.crc32(payload) != crc:
            raise ValueError("secondary-index sidecar failed its CRC check")
        decoded = pickle.loads(payload)
        max_exact_by_name = {
            s["name"]: s["max_exact_values"] for s in decoded["specs"]
        }
        if specs is None:
            specs = [
                AttributeSpec(
                    s["name"],
                    extractor=lambda payload: None,
                    max_exact_values=s["max_exact_values"],
                    numeric=s["numeric"],
                )
                for s in decoded["specs"]
            ]
        index = cls(specs)
        index.n_leaves = decoded["n_leaves"]
        index._indexes = {
            name: _AttributeIndex.from_payload(
                name, payload, max_exact_by_name.get(name, 1024)
            )
            for name, payload in decoded["indexes"].items()
        }
        return index


def sidecar_id(chunk_id: str) -> str:
    """DFS object name for a chunk's secondary-index sidecar."""
    return f"{chunk_id}.sidx"
