"""Secondary indexes on non-key attributes (paper Section VIII future work)."""

from repro.secondary.bitmap import Bitmap
from repro.secondary.index import AttributeSpec, ChunkSecondaryIndex, sidecar_id

__all__ = ["Bitmap", "AttributeSpec", "ChunkSecondaryIndex", "sidecar_id"]
