"""Waterwheel reproduction: realtime indexing and temporal range queries.

Public entry points::

    from repro import Waterwheel, WaterwheelConfig, small_config, DataTuple
    from repro import AttributeSpec, ChunkCompactor, verify_system, snapshot
    from repro import obs, collect

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro.core.compaction import ChunkCompactor
from repro.core.config import WaterwheelConfig, small_config
from repro.core.geo import geo_query
from repro.core.model import (
    DataTuple,
    KeyInterval,
    Query,
    QueryResult,
    Region,
    SubQuery,
    TimeInterval,
)
from repro import obs
from repro.core.result_cache import SubQueryResultCache
from repro.core.scheduler import (
    OverloadShedError,
    DeadlineExceededError,
    QueryScheduler,
    ScheduledQuery,
)
from repro.core.stats import collect, snapshot
from repro.core.system import Waterwheel
from repro.core.verify import verify_system
from repro.secondary import AttributeSpec
from repro.supervision import ChaosReport, Supervisor, run_chaos

__all__ = [
    "DataTuple",
    "KeyInterval",
    "TimeInterval",
    "Region",
    "Query",
    "SubQuery",
    "QueryResult",
    "Waterwheel",
    "WaterwheelConfig",
    "small_config",
    "AttributeSpec",
    "ChaosReport",
    "ChunkCompactor",
    "DeadlineExceededError",
    "OverloadShedError",
    "QueryScheduler",
    "ScheduledQuery",
    "SubQueryResultCache",
    "Supervisor",
    "collect",
    "run_chaos",
    "geo_query",
    "obs",
    "snapshot",
    "verify_system",
    "__version__",
]
