"""Guttman R-tree over key x time regions (coordinator region catalog)."""

from repro.rtree.bulk import str_pack
from repro.rtree.rtree import RTree

__all__ = ["RTree", "str_pack"]
