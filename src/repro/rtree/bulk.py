"""Sort-Tile-Recursive (STR) bulk loading for the R-tree.

A recovering coordinator rebuilds its region catalog from every chunk
registered in the metadata store (paper Section V); inserting thousands of
regions one at a time builds a mediocre tree slowly.  STR packing
(Leutenegger et al.) sorts entries into tiles and builds the tree
bottom-up: near-100% node fill and far better query clustering.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence, Tuple

from repro.core.model import Region
from repro.rtree.rtree import RTree, _Node


def _center(region: Region) -> Tuple[float, float]:
    keys = region.keys
    times = region.times
    return ((keys.lo + keys.hi) / 2.0, (times.lo + times.hi) / 2.0)


def str_pack(
    entries: Sequence[Tuple[Region, Any]], max_entries: int = 8
) -> RTree:
    """Build an :class:`RTree` from (region, value) pairs via STR packing.

    The result supports the same search/insert/delete operations as an
    incrementally built tree; subsequent inserts simply extend it.
    """
    if max_entries < 4:
        raise ValueError("max_entries must be >= 4")
    tree = RTree(max_entries=max_entries)
    items = list(entries)
    if not items:
        return tree

    # --- leaf level: sort by key-axis, tile, sort each tile by time-axis ---
    leaf_cap = max_entries
    n_leaves = math.ceil(len(items) / leaf_cap)
    n_slices = max(1, math.ceil(math.sqrt(n_leaves)))
    per_slice = n_slices * leaf_cap

    items.sort(key=lambda e: _center(e[0])[0])
    leaves: List[_Node] = []
    for start in range(0, len(items), per_slice):
        tile = items[start : start + per_slice]
        tile.sort(key=lambda e: _center(e[0])[1])
        for leaf_start in range(0, len(tile), leaf_cap):
            node = _Node(leaf=True)
            node.entries = list(tile[leaf_start : leaf_start + leaf_cap])
            leaves.append(node)

    # --- inner levels: same tiling over child MBR centers ---
    level = leaves
    while len(level) > 1:
        nodes = [(node.mbr(), node) for node in level]
        nodes.sort(key=lambda e: _center(e[0])[0])
        n_parents = math.ceil(len(nodes) / max_entries)
        n_slices = max(1, math.ceil(math.sqrt(n_parents)))
        per_slice = n_slices * max_entries
        parents: List[_Node] = []
        for start in range(0, len(nodes), per_slice):
            tile = nodes[start : start + per_slice]
            tile.sort(key=lambda e: _center(e[0])[1])
            for p_start in range(0, len(tile), max_entries):
                parent = _Node(leaf=False)
                parent.entries = list(tile[p_start : p_start + max_entries])
                for _region, child in parent.entries:
                    child.parent = parent
                parents.append(parent)
        level = parents

    tree._root = level[0]
    tree._size = len(items)
    return tree
