"""R-tree over key x time regions.

The query coordinator (paper Section IV-A) keeps the metadata of every data
region in an R-tree so a query region can be matched against overlapping
data regions efficiently.  This is a textbook Guttman R-tree with quadratic
split; regions are :class:`repro.core.model.Region` rectangles and each entry
carries an opaque value (chunk id or indexing-server id).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.model import KeyInterval, Region, TimeInterval


def _area(region: Region) -> float:
    return float(len(region.keys)) * max(region.times.duration(), 1e-9)


def _hull(a: Region, b: Region) -> Region:
    return Region(a.keys.union_hull(b.keys), a.times.union_hull(b.times))


def _enlargement(current: Region, addition: Region) -> float:
    return _area(_hull(current, addition)) - _area(current)


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # Leaf entries: (region, value).  Inner entries: (region, _Node).
        self.entries: List[Tuple[Region, Any]] = []
        self.parent: Optional["_Node"] = None

    def mbr(self) -> Region:
        """Minimum bounding region over this node's entries."""
        region = self.entries[0][0]
        for other, _child in self.entries[1:]:
            region = _hull(region, other)
        return region


class RTree:
    """Dynamic R-tree with quadratic node split.

    ``max_entries`` is the node fanout M; ``min_entries`` defaults to M // 2.
    """

    def __init__(self, max_entries: int = 8):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # --- search -------------------------------------------------------------

    def search(self, region: Region) -> List[Tuple[Region, Any]]:
        """All (region, value) entries whose region overlaps ``region``."""
        out: List[Tuple[Region, Any]] = []
        self._search(self._root, region, out)
        return out

    def search_values(self, region: Region) -> List[Any]:
        """Just the values of :meth:`search` hits."""
        return [value for _region, value in self.search(region)]

    def all_entries(self) -> List[Tuple[Region, Any]]:
        """Every stored (region, value) pair (test/debug helper)."""
        everything = Region(
            KeyInterval(-(2**62), 2**62), TimeInterval(float("-inf"), float("inf"))
        )
        return self.search(everything)

    def _search(self, node: _Node, region: Region, out: list) -> None:
        for entry_region, child in node.entries:
            if not entry_region.overlaps(region):
                continue
            if node.leaf:
                out.append((entry_region, child))
            else:
                self._search(child, region, out)

    # --- insert -------------------------------------------------------------

    def insert(self, region: Region, value: Any) -> None:
        """Add one (region, value) entry, splitting as needed."""
        leaf = self._choose_leaf(self._root, region)
        leaf.entries.append((region, value))
        self._size += 1
        self._handle_overflow(leaf)

    def _choose_leaf(self, node: _Node, region: Region) -> _Node:
        while not node.leaf:
            best = None
            best_cost = None
            for entry_region, child in node.entries:
                cost = (_enlargement(entry_region, region), _area(entry_region))
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best = child
            node = best
        return node

    def _handle_overflow(self, node: _Node) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.entries.append((child.mbr(), child))
                self._root = new_root
                return
            self._refresh_entry(parent, node)
            sibling.parent = parent
            parent.entries.append((sibling.mbr(), sibling))
            node = parent
        self._refresh_upwards(node)

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: seed with the most wasteful pair, then greedily
        assign remaining entries by enlargement preference."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        mbr_a = group_a[0][0]
        mbr_b = group_b[0][0]
        while rest:
            # Force-assign if one group must absorb everything to reach the
            # minimum fill.
            if len(group_a) + len(rest) <= self.min_entries:
                group_a.extend(rest)
                rest = []
                break
            if len(group_b) + len(rest) <= self.min_entries:
                group_b.extend(rest)
                rest = []
                break
            entry = rest.pop()
            grow_a = _enlargement(mbr_a, entry[0])
            grow_b = _enlargement(mbr_b, entry[0])
            if (grow_a, _area(mbr_a)) <= (grow_b, _area(mbr_b)):
                group_a.append(entry)
                mbr_a = _hull(mbr_a, entry[0])
            else:
                group_b.append(entry)
                mbr_b = _hull(mbr_b, entry[0])
        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        if not node.leaf:
            for _region, child in group_b:
                child.parent = sibling
        return sibling

    @staticmethod
    def _pick_seeds(entries: List[Tuple[Region, Any]]) -> Tuple[int, int]:
        worst = (0, 1)
        worst_waste = float("-inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    _area(_hull(entries[i][0], entries[j][0]))
                    - _area(entries[i][0])
                    - _area(entries[j][0])
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst = (i, j)
        return worst

    def _refresh_entry(self, parent: _Node, child: _Node) -> None:
        for i, (_region, node) in enumerate(parent.entries):
            if node is child:
                parent.entries[i] = (child.mbr(), child)
                return
        raise RuntimeError("child not found in parent")

    def _refresh_upwards(self, node: _Node) -> None:
        while node.parent is not None:
            self._refresh_entry(node.parent, node)
            node = node.parent

    # --- delete -------------------------------------------------------------

    def delete(self, region: Region, value: Any) -> bool:
        """Remove one entry matching (region, value); returns success."""
        leaf = self._find_leaf(self._root, region, value)
        if leaf is None:
            return False
        leaf.entries = [
            (r, v) for r, v in leaf.entries if not (r == region and v == value)
        ]
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(self, node: _Node, region: Region, value: Any) -> Optional[_Node]:
        for entry_region, child in node.entries:
            if node.leaf:
                if entry_region == region and child == value:
                    return node
            elif entry_region.overlaps(region):
                found = self._find_leaf(child, region, value)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: List[Tuple[Region, Any]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [(r, c) for r, c in parent.entries if c is not node]
                self._collect_leaf_entries(node, orphans)
            else:
                self._refresh_entry(parent, node)
            node = parent
        # Shrink the root if it has a single inner child.
        while not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
            self._root.parent = None
        if not self._root.leaf and not self._root.entries:
            self._root = _Node(leaf=True)
        for region, value in orphans:
            self._size -= 1  # insert() re-increments
            self.insert(region, value)

    def _collect_leaf_entries(self, node: _Node, out: list) -> None:
        if node.leaf:
            out.extend(node.entries)
            return
        for _region, child in node.entries:
            self._collect_leaf_entries(child, out)
