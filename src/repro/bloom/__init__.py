"""Bloom filters and the per-leaf temporal mini-range sketches."""

from repro.bloom.filter import BloomFilter, optimal_parameters
from repro.bloom.temporal import TemporalSketch, minirange_ids

__all__ = ["BloomFilter", "optimal_parameters", "TemporalSketch", "minirange_ids"]
