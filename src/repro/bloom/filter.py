"""A classic bloom filter with double hashing.

Used by the temporal sketches attached to B+ tree leaves (paper Section
IV-B): membership of time *mini-ranges* lets subqueries skip leaves that
cannot contain temporally-matching tuples.  False positives only cost an
unnecessary leaf read; there are no false negatives, so query results stay
correct.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable


def optimal_parameters(expected_items: int, fp_rate: float) -> "tuple[int, int]":
    """Return (bits, hash_count) sized for ``expected_items`` at ``fp_rate``."""
    if expected_items < 1:
        raise ValueError("expected_items must be >= 1")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError("fp_rate must be in (0, 1)")
    bits = math.ceil(-expected_items * math.log(fp_rate) / (math.log(2) ** 2))
    hashes = max(1, round(bits / expected_items * math.log(2)))
    return max(8, bits), hashes


class BloomFilter:
    """Fixed-size bloom filter over hashable items.

    The two base hashes come from Python's ``hash`` salted two ways; the
    ``i``-th probe is ``h1 + i * h2`` (Kirsch-Mitzenmacher double hashing).
    """

    __slots__ = ("n_bits", "n_hashes", "_bits", "n_added")

    def __init__(self, n_bits: int, n_hashes: int):
        if n_bits < 8:
            raise ValueError("n_bits must be >= 8")
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        # Round up to a whole number of bytes so to_bytes()/from_bytes()
        # reconstruct the exact same probe space.
        self.n_bits = (n_bits + 7) // 8 * 8
        self.n_hashes = n_hashes
        self._bits = bytearray((n_bits + 7) // 8)
        self.n_added = 0

    @classmethod
    def with_capacity(cls, expected_items: int, fp_rate: float = 0.01) -> "BloomFilter":
        """A filter sized for ``expected_items`` at the target FP rate."""
        bits, hashes = optimal_parameters(expected_items, fp_rate)
        return cls(bits, hashes)

    def _probes(self, item: Hashable) -> Iterable[int]:
        h1 = hash((item, 0x9E3779B9))
        h2 = hash((item, 0x7F4A7C15)) | 1  # odd, so probes cycle the table
        for i in range(self.n_hashes):
            yield (h1 + i * h2) % self.n_bits

    def add(self, item: Hashable) -> None:
        """Insert one item."""
        for bit in self._probes(item):
            self._bits[bit >> 3] |= 1 << (bit & 7)
        self.n_added += 1

    def update(self, items: Iterable[Hashable]) -> None:
        """Insert every item."""
        for item in items:
            self.add(item)

    def add_many(self, items: Iterable[Hashable]) -> None:
        """Insert every item with the probe loop inlined.

        Same bit set and ``n_added`` as :meth:`add` per item, but one
        Python frame for the whole batch instead of a generator resumption
        per probe -- the batched-ingest sketch path leans on this.
        """
        bits = self._bits
        n_bits = self.n_bits
        n_hashes = self.n_hashes
        n = 0
        for item in items:
            h1 = hash((item, 0x9E3779B9))
            h2 = hash((item, 0x7F4A7C15)) | 1
            for i in range(n_hashes):
                bit = (h1 + i * h2) % n_bits
                bits[bit >> 3] |= 1 << (bit & 7)
            n += 1
        self.n_added += n

    def __contains__(self, item: Hashable) -> bool:
        return all(self._bits[bit >> 3] & (1 << (bit & 7)) for bit in self._probes(item))

    def might_contain_any(self, items: Iterable[Hashable]) -> bool:
        """True when any probe hits (possible false positive)."""
        return any(item in self for item in items)

    def clear(self) -> None:
        """Reset to the empty filter."""
        for i in range(len(self._bits)):
            self._bits[i] = 0
        self.n_added = 0

    def estimated_fp_rate(self) -> float:
        """FP probability given the actual number of items added."""
        if self.n_added == 0:
            return 0.0
        exponent = -self.n_hashes * self.n_added / self.n_bits
        return (1.0 - math.exp(exponent)) ** self.n_hashes

    def to_bytes(self) -> bytes:
        """The raw bit array (pair with ``n_hashes`` to reconstruct)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes, n_hashes: int, n_added: int = 0) -> "BloomFilter":
        """Reconstruct a filter from :meth:`to_bytes` output."""
        bf = cls(len(data) * 8, n_hashes)
        bf._bits = bytearray(data)
        bf.n_added = n_added
        return bf

    def __len__(self) -> int:
        return self.n_added
