"""Temporal sketches: per-leaf bloom filters over time mini-ranges.

Paper Section IV-B: tuples are indexed only on key, so a subquery must visit
every leaf matching its key range even when the temporal criterion would
reject all of that leaf's tuples.  To skip such leaves, the time domain is
cut into fixed-width *mini-ranges*; each leaf carries a bloom filter of the
mini-range ids its tuples cover, stored alongside the leaf reference in the
last-level inner nodes.

Mini-range ids are ints (``floor(ts / granularity)``), which hash stably
across processes, so sketches survive chunk serialization.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.bloom.filter import BloomFilter

#: Give up probing and conservatively report "might match" when a query
#: spans more mini-ranges than this; a very wide temporal range will almost
#: certainly hit the leaf anyway and probing would cost more than it saves.
_MAX_PROBES = 64


def minirange_ids(t_lo: float, t_hi: float, granularity: float) -> Iterable[int]:
    """Ids of all mini-ranges intersecting the closed interval [t_lo, t_hi]."""
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    first = int(t_lo // granularity)
    last = int(t_hi // granularity)
    return range(first, last + 1)


class TemporalSketch:
    """Bloom filter over the time mini-ranges covered by one leaf node."""

    __slots__ = ("granularity", "_filter")

    def __init__(
        self,
        granularity: float = 1.0,
        expected_items: int = 256,
        fp_rate: float = 0.01,
        _filter: Optional[BloomFilter] = None,
    ):
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        self._filter = _filter or BloomFilter.with_capacity(expected_items, fp_rate)

    def add_timestamp(self, ts: float) -> None:
        """Record one tuple timestamp's mini-range."""
        self._filter.add(int(ts // self.granularity))

    def add_timestamps(self, timestamps: Iterable[float]) -> None:
        """Record every timestamp's mini-range.

        The mini-range ids are deduplicated before probing the filter --
        time-ordered runs land mostly in one mini-range, so a batch pays a
        handful of hash rounds instead of one per tuple.  The resulting bit
        set (and ``n_added``) matches per-timestamp :meth:`add_timestamp`
        calls exactly.
        """
        ts_list = timestamps if isinstance(timestamps, list) else list(timestamps)
        g = self.granularity
        if g == 1.0:
            # int(ts // 1.0) == math.floor(ts) for every finite float, and
            # set(map(floor, ...)) dedupes entirely in C.
            unique = set(map(math.floor, ts_list))
        else:
            unique = {int(ts // g) for ts in ts_list}
        f = self._filter
        f.add_many(unique)
        extra = len(ts_list) - len(unique)
        if extra > 0:
            f.n_added += extra

    def might_overlap(self, t_lo: float, t_hi: float) -> bool:
        """False means *no* tuple in the leaf falls within [t_lo, t_hi];
        True means the leaf must be read (possibly a false positive)."""
        if math.isinf(t_lo) or math.isinf(t_hi):
            return True  # unbounded window: probing cannot help
        ids = minirange_ids(t_lo, t_hi, self.granularity)
        if len(ids) > _MAX_PROBES:
            return True
        return self._filter.might_contain_any(ids)

    def clear(self) -> None:
        """Reset the sketch (leaf emptied on flush)."""
        self._filter.clear()

    # --- serialization (chunk format) --------------------------------------

    def to_bytes(self) -> bytes:
        """The underlying bloom filter's bit array."""
        return self._filter.to_bytes()

    @property
    def n_hashes(self) -> int:
        return self._filter.n_hashes

    @property
    def n_added(self) -> int:
        return self._filter.n_added

    @classmethod
    def from_bytes(
        cls, data: bytes, n_hashes: int, granularity: float, n_added: int = 0
    ) -> "TemporalSketch":
        """Reconstruct a sketch from :meth:`to_bytes` output."""
        bf = BloomFilter.from_bytes(data, n_hashes, n_added)
        return cls(granularity=granularity, _filter=bf)
