"""Clocks: wall time for microbenchmarks, virtual time for cluster runs.

All system components take a :class:`Clock` so the same code path can run
under real time (examples, correctness tests) or simulated time (the
distributed performance experiments, where I/O costs are charged explicitly
by the cost model instead of actually sleeping).
"""

from __future__ import annotations

import time


class Clock:
    """Interface: ``now()`` returns seconds, ``advance()`` charges cost."""

    def now(self) -> float:
        raise NotImplementedError

    def advance(self, seconds: float) -> None:
        raise NotImplementedError


class WallClock(Clock):
    """Real monotonic time; ``advance`` is a no-op (time passes by itself)."""

    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> None:  # noqa: ARG002 - interface
        return None


class VirtualClock(Clock):
    """Manually advanced clock for deterministic simulation."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds

    def advance_to(self, t: float) -> None:
        """Jump forward to absolute time ``t`` (no-op if already past it)."""
        if t > self._now:
            self._now = t
