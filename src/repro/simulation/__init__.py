"""Cluster simulation substrate: clocks, cost model, nodes, virtual threads.

The performance experiments execute the real data path but charge time to a
:class:`VirtualClock` according to :class:`CostModel`, which is what makes a
128-node scalability experiment runnable in-process.
"""

from repro.simulation.clock import Clock, VirtualClock, WallClock
from repro.simulation.cluster import Cluster, Node
from repro.simulation.costs import DEFAULT_COSTS, CostModel
from repro.simulation.pipeline import (
    PipelineTopology,
    dispatch_rate,
    indexing_server_rate,
    insert_cpu_per_tuple,
    network_rate,
    system_insertion_rate,
)
from repro.simulation.threads import LockSimulator, Operation, Segment, SimResult

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "Cluster",
    "Node",
    "CostModel",
    "DEFAULT_COSTS",
    "PipelineTopology",
    "dispatch_rate",
    "indexing_server_rate",
    "insert_cpu_per_tuple",
    "network_rate",
    "system_insertion_rate",
    "LockSimulator",
    "Operation",
    "Segment",
    "SimResult",
]
