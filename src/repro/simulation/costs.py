"""Cost model for the simulated cluster.

Every constant is expressed in seconds (or bytes/second) and was chosen to
match the paper's testbed: 12 commodity nodes, 1 Gbps Ethernet, HDFS with a
2-50 ms per-file-access delay (Section VI-B), and per-tuple CPU costs in the
low microseconds as implied by the reported throughput (~1.5 M tuples/s over
24 indexing servers is roughly 16 us/tuple of total per-tuple work).

The absolute values matter less than the *ratios*: network transfer scales
with bytes, DFS access pays a latency floor regardless of bytes, CPU work
scales with tuples touched.  Those ratios are what produce the shapes in
Figures 11-17.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Tunable cost constants shared by Waterwheel and the baselines."""

    # --- network -----------------------------------------------------------
    network_latency: float = 0.0002  # per-message one-way latency (LAN RTT/2)
    network_bandwidth: float = 125_000_000.0  # 1 Gbps in bytes/s, per node

    # --- distributed file system ------------------------------------------
    dfs_access_latency_min: float = 0.002  # per-file-open floor (paper: 2 ms)
    dfs_access_latency_max: float = 0.050  # worst case (paper: 50 ms)
    dfs_read_bandwidth: float = 100_000_000.0  # sequential read bytes/s
    dfs_write_bandwidth: float = 80_000_000.0  # replicated write bytes/s

    # --- per-tuple CPU work ------------------------------------------------
    dispatch_cpu: float = 0.8e-6  # route one tuple at a dispatcher
    index_insert_cpu: float = 2.0e-6  # template B+ tree insert
    index_insert_cpu_concurrent: float = 5.0e-6  # concurrent B+ tree insert
    scan_cpu: float = 0.25e-6  # test one tuple against query criteria
    serialize_cpu: float = 0.15e-6  # serialize one tuple during flush
    merge_cpu: float = 0.5e-6  # merge one tuple during LSM compaction

    # --- control-plane -----------------------------------------------------
    metadata_update: float = 0.001  # register a chunk / update an interval
    flush_fixed: float = 0.030  # fixed cost per flush (file create, swap)

    def network_transfer(self, nbytes: int) -> float:
        """Time to push ``nbytes`` through one node's NIC plus latency."""
        return self.network_latency + nbytes / self.network_bandwidth

    def dfs_access_latency(self, seed: int) -> float:
        """Deterministic per-access latency in [min, max], keyed by ``seed``.

        HDFS file-open delay varies per access (the paper observes 2-50 ms);
        most accesses are near the floor with a heavy tail, so the jitter
        fraction is cubed.  Derived from a hash of the (chunk, access) seed
        so runs are reproducible.
        """
        span = self.dfs_access_latency_max - self.dfs_access_latency_min
        frac = (seed * 2654435761 % 4294967296) / 4294967296.0
        return self.dfs_access_latency_min + frac**3 * span

    def dfs_read(self, nbytes: int, seed: int, local: bool = False) -> float:
        """Time to read ``nbytes`` from a chunk replica.

        Local reads (chunk locality, Section IV-C) short-circuit the
        DataNode RPC path, paying only a fifth of the access-latency floor
        and no network transfer; remote reads pay both in full.
        """
        access = self.dfs_access_latency(seed)
        t = nbytes / self.dfs_read_bandwidth
        if local:
            t += 0.2 * access
        else:
            t += access + self.network_transfer(nbytes)
        return t

    def dfs_write(self, nbytes: int) -> float:
        """Time to write a chunk (pipeline-replicated, bandwidth-bound)."""
        return self.flush_fixed + nbytes / self.dfs_write_bandwidth

    def scaled(self, **overrides) -> "CostModel":
        """A copy with some constants replaced (used by ablation benches)."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()
