"""Fluid model of the ingestion pipeline.

The distributed insertion-throughput experiments (paper Figures 11a, 12a, 15
and 17) depend on which pipeline stage saturates first:

* dispatchers (CPU: route + sample each tuple),
* the network between dispatchers and indexing servers,
* the indexing servers themselves (tree insert CPU, flush stalls, flush
  transfer bandwidth), and
* skew: the most-loaded indexing server saturates first, so the achievable
  system rate is ``per-server capacity / max share``.

This module computes sustainable rates from the :class:`CostModel` plus the
key-share vector produced by the (real) partitioning code.  Per-tuple insert
CPU grows with the log of the in-memory tree size -- deeper trees cost more
per traversal -- which is what makes very large chunk sizes counterproductive
(Figure 11a's decline past 32 MB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.simulation.costs import CostModel


@dataclass(frozen=True)
class PipelineTopology:
    """How many of each server role the deployment runs (paper Section VI:
    per node 2 dispatchers, 2 indexing servers, 4 query servers)."""

    n_nodes: int
    dispatchers_per_node: int = 2
    indexing_per_node: int = 2

    @property
    def n_dispatchers(self) -> int:
        """Total dispatcher count."""
        return self.n_nodes * self.dispatchers_per_node

    @property
    def n_indexing(self) -> int:
        """Total indexing-server count."""
        return self.n_nodes * self.indexing_per_node


# Tree-depth CPU penalty: traversal work grows once the in-memory tree
# outgrows roughly this many tuples (extra levels / worse cache locality).
_DEPTH_KNEE_TUPLES = 262_144
_DEPTH_PENALTY_PER_LEVEL = 0.35


def insert_cpu_per_tuple(base_cpu: float, tuples_per_chunk: int) -> float:
    """Per-insert CPU cost as a function of in-memory tree size."""
    if tuples_per_chunk <= _DEPTH_KNEE_TUPLES:
        return base_cpu
    extra_levels = math.log2(tuples_per_chunk / _DEPTH_KNEE_TUPLES) / math.log2(64)
    return base_cpu * (1.0 + _DEPTH_PENALTY_PER_LEVEL * extra_levels)


def indexing_server_rate(
    costs: CostModel,
    chunk_bytes: int,
    tuple_size: int,
    base_insert_cpu: float = None,
    extra_cpu_per_tuple: float = 0.0,
    flush_bytes_per_tuple: float = None,
) -> float:
    """Max sustainable tuples/second for one indexing server.

    A server cycles through: fill the in-memory tree (CPU-bound), swap/flush
    (fixed stall), while the previous chunk streams to the DFS.  If the chunk
    transfer outlasts the next fill, transfers back up and bound the cycle:
    ``cycle = max(fill_cpu, transfer) + fixed stall``.

    ``extra_cpu_per_tuple`` and ``flush_bytes_per_tuple`` let baselines model
    additional work (e.g. LSM compaction re-merges each tuple several times,
    inflating both CPU and write bandwidth per ingested tuple).
    """
    if base_insert_cpu is None:
        base_insert_cpu = costs.index_insert_cpu
    if flush_bytes_per_tuple is None:
        flush_bytes_per_tuple = float(tuple_size)
    m = max(1, chunk_bytes // tuple_size)  # tuples per chunk
    cpu = insert_cpu_per_tuple(base_insert_cpu, m) + costs.serialize_cpu
    cpu += extra_cpu_per_tuple
    fill = m * cpu
    transfer = (m * flush_bytes_per_tuple) / costs.dfs_write_bandwidth
    stall = costs.flush_fixed + costs.metadata_update
    cycle = max(fill, transfer) + stall
    return m / cycle


def dispatch_rate(costs: CostModel, topology: PipelineTopology) -> float:
    """Aggregate dispatcher capacity (tuples/second)."""
    return topology.n_dispatchers / costs.dispatch_cpu


def network_rate(
    costs: CostModel, topology: PipelineTopology, tuple_size: int
) -> float:
    """Aggregate dispatcher->indexing network capacity.

    Each tuple leaves one node's NIC and enters another's, so the cluster's
    aggregate NIC budget covers every tuple twice.
    """
    aggregate = topology.n_nodes * costs.network_bandwidth
    return aggregate / (2.0 * tuple_size)


def system_insertion_rate(
    costs: CostModel,
    topology: PipelineTopology,
    tuple_size: int,
    chunk_bytes: int,
    shares: Sequence[float] = None,
    base_insert_cpu: float = None,
    extra_cpu_per_tuple: float = 0.0,
    flush_bytes_per_tuple: float = None,
    sync_overhead_per_node: float = 0.0,
) -> float:
    """System-wide sustainable insertion rate (tuples/second).

    ``shares`` is the fraction of the stream each indexing server receives
    (from the real partitioner against the real key distribution); the
    most-loaded server saturates first.  ``sync_overhead_per_node`` models
    per-tuple coordination work that grows with cluster size, used to
    contrast Waterwheel's synchronization-free design in Figure 17.
    """
    if shares is None:
        shares = [1.0 / topology.n_indexing] * topology.n_indexing
    if len(shares) != topology.n_indexing:
        raise ValueError(
            f"expected {topology.n_indexing} shares, got {len(shares)}"
        )
    total = sum(shares)
    if total <= 0:
        raise ValueError("shares must sum to a positive value")
    max_share = max(shares) / total
    per_server = indexing_server_rate(
        costs,
        chunk_bytes,
        tuple_size,
        base_insert_cpu=base_insert_cpu,
        extra_cpu_per_tuple=extra_cpu_per_tuple,
        flush_bytes_per_tuple=flush_bytes_per_tuple,
    )
    indexing_bound = per_server / max_share if max_share > 0 else math.inf
    bounds = [
        dispatch_rate(costs, topology),
        network_rate(costs, topology, tuple_size),
        indexing_bound,
    ]
    rate = min(bounds)
    if sync_overhead_per_node > 0.0:
        # Coordination work serialized at a central point: each tuple costs
        # sync_overhead_per_node * n_nodes somewhere in the pipeline.
        rate = min(rate, 1.0 / (sync_overhead_per_node * topology.n_nodes))
    return rate
