"""Simulated cluster: nodes, role placement, failure injection.

The paper's deployment (Section VI) runs, per node: 2 indexing servers,
4 query servers, 2 dispatchers, plus a co-located HDFS DataNode.  We model a
node as a named container for server roles; servers themselves live in
``repro.core`` and are plain objects -- the cluster only tracks which node
hosts what, which nodes are alive, and provides deterministic randomness for
replica placement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class Node:
    """One cluster machine: liveness plus hosted server roles."""
    node_id: int
    alive: bool = True
    roles: Dict[str, List[int]] = field(default_factory=dict)

    def add_role(self, role: str, server_id: int) -> None:
        """Record that this node hosts the given server."""
        self.roles.setdefault(role, []).append(server_id)

    def servers(self, role: str) -> List[int]:
        """Server ids of ``role`` hosted on this node."""
        return self.roles.get(role, [])


class Cluster:
    """A set of nodes with placement helpers and failure injection."""

    def __init__(self, n_nodes: int, seed: int = 7):
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.nodes: List[Node] = [Node(i) for i in range(n_nodes)]
        self._rng = random.Random(seed)
        self._failed: Set[int] = set()

    def __len__(self) -> int:
        return len(self.nodes)

    # --- placement ---------------------------------------------------------

    def place_round_robin(self, role: str, count: int) -> Dict[int, int]:
        """Spread ``count`` servers of ``role`` across nodes round-robin.

        Returns a mapping of server id -> node id.
        """
        placement = {}
        for server_id in range(count):
            node = self.nodes[server_id % len(self.nodes)]
            node.add_role(role, server_id)
            placement[server_id] = node.node_id
        return placement

    def pick_replica_nodes(self, n_replicas: int, seed: int) -> List[int]:
        """Deterministic HDFS-style replica placement: ``n_replicas``
        distinct alive nodes chosen by a seeded shuffle."""
        alive = [n.node_id for n in self.nodes if n.alive]
        if not alive:
            raise RuntimeError("no alive node available for replica placement")
        rng = random.Random((seed, len(alive)).__hash__())
        rng.shuffle(alive)
        return alive[: max(1, min(n_replicas, len(alive)))]

    def node_of(self, role: str, server_id: int) -> int:
        """The node hosting a given server."""
        for node in self.nodes:
            if server_id in node.servers(role):
                return node.node_id
        raise KeyError(f"no node hosts {role} server {server_id}")

    # --- failures ----------------------------------------------------------

    def kill(self, node_id: int) -> None:
        """Mark a node failed (its replicas become unreadable)."""
        self.nodes[node_id].alive = False
        self._failed.add(node_id)

    def revive(self, node_id: int) -> None:
        """Bring a failed node back."""
        self.nodes[node_id].alive = True
        self._failed.discard(node_id)

    def is_alive(self, node_id: int) -> bool:
        """Liveness of one node."""
        return self.nodes[node_id].alive

    @property
    def failed_nodes(self) -> Set[int]:
        """Ids of currently failed nodes."""
        return set(self._failed)
