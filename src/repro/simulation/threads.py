"""Virtual-thread latch-contention simulator.

CPython's GIL makes it impossible to demonstrate multi-core index scaling
with real threads, so the thread-scaling experiments (paper Figure 7a) replay
*traces* of real insert operations -- which latches each insert takes, in
which mode, for how much CPU work -- over N virtual threads with
reader-writer lock semantics and a discrete-event clock.

An operation is a sequence of :class:`Segment` s executed in order.  A
segment optionally holds one lock (shared or exclusive) for its duration;
the lock is acquired at segment start (waiting in FIFO order if unavailable)
and released at segment end.  This matches latch crabbing closely enough to
reproduce the contention structure of the two B+ tree variants: the
concurrent tree write-locks inner nodes during splits (serializing other
traversals through them), while the template tree only ever latches leaves.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Segment:
    """One phase of an operation: hold ``lock`` (None = lock-free) in
    ``exclusive`` or shared mode while doing ``duration`` seconds of work."""

    lock: Optional[int]
    exclusive: bool
    duration: float


Operation = Sequence[Segment]


@dataclass
class SimResult:
    """Outcome of one replay: makespan, waits, per-op latencies."""
    makespan: float
    n_ops: int
    n_threads: int
    total_wait: float
    total_work: float
    #: Per-operation service time (pull from queue -> last segment done),
    #: indexed like the input operations; includes lock-wait time.
    op_latencies: Optional[List[float]] = None

    def mean_latency(self, indices: Optional[Sequence[int]] = None) -> float:
        """Mean service time over all ops or a subset (e.g. just reads)."""
        if not self.op_latencies:
            return 0.0
        if indices is None:
            values = self.op_latencies
        else:
            values = [self.op_latencies[i] for i in indices]
        if not values:
            return 0.0
        return sum(values) / len(values)

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.n_ops / self.makespan

    @property
    def utilization(self) -> float:
        """Fraction of thread-time spent doing work rather than waiting."""
        budget = self.makespan * self.n_threads
        if budget <= 0:
            return 0.0
        return self.total_work / budget


class _RWLock:
    """Reader-writer lock with FIFO wait queue for the event simulator."""

    __slots__ = ("readers", "writer", "queue")

    def __init__(self):
        self.readers: int = 0
        self.writer: Optional[int] = None
        self.queue: deque = deque()  # (thread_id, exclusive)

    def try_acquire(self, thread_id: int, exclusive: bool) -> bool:
        """Immediate acquisition; honors FIFO (no barging past waiters)."""
        if self.queue:
            return False
        if exclusive:
            if self.readers == 0 and self.writer is None:
                self.writer = thread_id
                return True
            return False
        if self.writer is None:
            self.readers += 1
            return True
        return False

    def release(self, thread_id: int, exclusive: bool) -> List[Tuple[int, bool]]:
        """Release and return the list of (thread, exclusive) now granted."""
        if exclusive:
            if self.writer != thread_id:
                raise RuntimeError("releasing a writer lock not held")
            self.writer = None
        else:
            if self.readers <= 0:
                raise RuntimeError("releasing a reader lock not held")
            self.readers -= 1
        granted: List[Tuple[int, bool]] = []
        while self.queue:
            waiter, wants_excl = self.queue[0]
            if wants_excl:
                if self.readers == 0 and self.writer is None:
                    self.queue.popleft()
                    self.writer = waiter
                    granted.append((waiter, True))
                break
            # Shared request: grant as long as no writer holds the lock, and
            # keep draining consecutive shared waiters.
            if self.writer is not None:
                break
            self.queue.popleft()
            self.readers += 1
            granted.append((waiter, False))
        return granted


class LockSimulator:
    """Replay a workload of operations over ``n_threads`` virtual threads.

    Threads pull operations from a single shared queue (the same
    work-stealing structure a real insert pool uses) and execute their
    segments under simulated reader-writer locks.
    """

    def run(self, operations: Sequence[Operation], n_threads: int) -> SimResult:
        """Replay ``operations`` over ``n_threads`` virtual threads."""
        if n_threads < 1:
            raise ValueError("need at least one thread")
        ops = list(operations)
        if not ops:
            return SimResult(0.0, 0, n_threads, 0.0, 0.0, [])

        locks: Dict[int, _RWLock] = {}
        next_op = 0
        # Per-thread cursor: (op_index, segment_index)
        cursor: List[Optional[Tuple[int, int]]] = [None] * n_threads
        wait_since: List[float] = [0.0] * n_threads
        pulled_at: List[float] = [0.0] * len(ops)
        op_latencies: List[float] = [0.0] * len(ops)
        total_wait = 0.0
        total_work = 0.0
        makespan = 0.0

        counter = itertools.count()
        # Event = (time, seq, thread_id, kind); kind: 0 = ready to start the
        # segment at ``cursor``; 1 = segment finished (release its lock).
        events: List[Tuple[float, int, int, int]] = []

        def push(time: float, thread: int, kind: int) -> None:
            heapq.heappush(events, (time, next(counter), thread, kind))

        def take_next_op(thread: int, now: float) -> bool:
            nonlocal next_op
            if next_op >= len(ops):
                cursor[thread] = None
                return False
            cursor[thread] = (next_op, 0)
            pulled_at[next_op] = now
            next_op += 1
            push(now, thread, 0)
            return True

        def lock_of(segment: Segment) -> Optional[_RWLock]:
            if segment.lock is None:
                return None
            lock = locks.get(segment.lock)
            if lock is None:
                lock = locks[segment.lock] = _RWLock()
            return lock

        for thread in range(n_threads):
            take_next_op(thread, 0.0)

        while events:
            now, _seq, thread, kind = heapq.heappop(events)
            makespan = max(makespan, now)
            position = cursor[thread]
            if position is None:
                continue
            op_idx, seg_idx = position
            segment = ops[op_idx][seg_idx]

            if kind == 0:  # try to start (or resume after a lock grant)
                lock = lock_of(segment)
                if lock is not None:
                    if not lock.try_acquire(thread, segment.exclusive):
                        lock.queue.append((thread, segment.exclusive))
                        wait_since[thread] = now
                        continue  # blocked; a future release re-schedules us
                total_work += segment.duration
                push(now + segment.duration, thread, 1)
            else:  # segment finished
                lock = lock_of(segment)
                if lock is not None:
                    for granted, _excl in lock.release(thread, segment.exclusive):
                        total_wait += now - wait_since[granted]
                        # The granted thread holds the lock already; charge
                        # its segment work directly.
                        g_op, g_seg = cursor[granted]  # type: ignore[misc]
                        g_segment = ops[g_op][g_seg]
                        total_work += g_segment.duration
                        push(now + g_segment.duration, granted, 1)
                if seg_idx + 1 < len(ops[op_idx]):
                    cursor[thread] = (op_idx, seg_idx + 1)
                    push(now, thread, 0)
                else:
                    op_latencies[op_idx] = now - pulled_at[op_idx]
                    take_next_op(thread, now)

        return SimResult(
            makespan, len(ops), n_threads, total_wait, total_work, op_latencies
        )
