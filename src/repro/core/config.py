"""Waterwheel deployment configuration.

Defaults mirror the paper's evaluation setup (Section VI): a 12-node cluster
running 2 dispatchers, 2 indexing servers and 4 query servers per node,
16 MB chunks, 1 GB query-server cache, 3-way replicated chunk storage and a
late-arrival visibility window Delta-t.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.costs import DEFAULT_COSTS, CostModel


@dataclass(frozen=True)
class WaterwheelConfig:
    """All knobs for one Waterwheel deployment."""

    # --- key domain ---------------------------------------------------------
    key_lo: int = 0
    key_hi: int = 1 << 32  # z-codes / IPv4 addresses fit in 32 bits

    # --- cluster layout ------------------------------------------------------
    n_nodes: int = 12
    dispatchers_per_node: int = 2
    indexing_per_node: int = 2
    query_servers_per_node: int = 4
    replication: int = 3

    # --- ingestion / chunks ---------------------------------------------------
    chunk_bytes: int = 16 << 20  # flush threshold (paper default 16 MB)
    tuple_size: int = 36  # logical wire size used for flush accounting
    fanout: int = 64
    compress_chunks: bool = False  # deflate leaf blocks at flush time
    leaf_target_tuples: int = 512  # desired tuples per leaf at flush time
    max_template_leaves: int = 4096
    #: Flush pipeline mode.  "sync" (default) serializes and replicates the
    #: chunk inline on the ingest thread -- deterministic, but every flush
    #: is a full ingest stall.  "async" *seals* the full tree (immutable
    #: snapshot; the retained template spawns the new active tree
    #: immediately) and hands it to a background flush executor, so ingest
    #: never blocks on DFS writes (Sections III-A/III-B).
    flush_mode: str = "sync"
    #: Async mode only: cap on sealed-but-uncommitted bytes across the
    #: deployment.  A seal that would exceed it blocks the ingest thread
    #: until the executor drains (bounded-memory backpressure instead of
    #: unbounded queueing); one sealed tree is always admitted when the
    #: pipeline is idle, so a cap below ``chunk_bytes`` cannot deadlock.
    flush_inflight_bytes: int = 64 << 20

    # --- adaptivity ------------------------------------------------------------
    skew_threshold: float = 0.2  # template update trigger (Eq. 1)
    skew_check_every: int = 4096
    rebalance_threshold: float = 0.2  # indexing-server load deviation trigger
    sample_every: int = 64  # dispatcher key-frequency sampling stride
    frequency_buckets: int = 1024
    #: Inserts between balancer trigger checks (the aggregation period).
    rebalance_check_every: int = 10_000
    #: What an indexing server does with in-flight data that a repartition
    #: moved away: "overlap" keeps it in memory (the paper's design -- the
    #: server's *actual* region overlaps neighbours until the next flush),
    #: "flush" writes it out immediately so the moved interval becomes a
    #: globally readable chunk and the overlap window closes at once.
    rebalance_migration: str = "overlap"

    # --- queries ------------------------------------------------------------------
    sketch_granularity: float = 1.0  # temporal mini-range width (seconds)
    use_temporal_sketch: bool = True  # ablation switch for leaf pruning
    #: Secondary indexes on payload attributes (paper Section VIII future
    #: work): a tuple of repro.secondary.AttributeSpec; empty = disabled.
    secondary_specs: tuple = ()
    late_delta: float = 5.0  # Delta-t late-arrival visibility window
    cache_bytes: int = 1 << 30  # per query server (paper: 1 GB)
    #: Query-side ranged DFS reads: a cold prefix transfers only the prefix
    #: bytes and candidate leaves are fetched as coalesced span batches.
    #: False restores the legacy whole-blob fetch path (the equivalence
    #: baseline: identical results, ~chunk-size more bytes on the wire).
    ranged_reads: bool = True
    #: Candidate leaf blocks whose directory entries sit within this many
    #: bytes of each other merge into one ranged read (the gap bytes ride
    #: along instead of paying another access floor).
    leaf_coalesce_gap_bytes: int = 1024
    #: Ranged leaf spans kept in flight on the ``query_server->dfs`` edge
    #: while the current span is decoded and filtered (double-buffering);
    #: 0 fetches every span in one multi-range access up front.  Only
    #: concurrent transports can overlap -- inline stays serial.
    fetch_pipeline_depth: int = 2
    #: Subqueries queued behind the one just assigned whose chunk prefixes
    #: the dispatcher warms on the target server (assignment-aware
    #: prefetch, via the dispatch policy's preference lists); 0 disables.
    prefetch_lookahead: int = 1

    # --- multi-query scheduling -----------------------------------------------------
    #: Coordinator-level subquery result cache over immutable chunks;
    #: 0 disables it (every chunk subquery reads the DFS).
    result_cache_bytes: int = 0
    #: Worker threads draining the scheduler's admission queue (clamped
    #: to 1 on transports that cannot execute queries concurrently).
    scheduler_max_concurrency: int = 8
    #: Bound on queries waiting for a scheduler worker; submissions past
    #: it are shed (or degraded) rather than queued.
    scheduler_queue_limit: int = 64
    #: Overload policy: "shed" rejects excess queries with an error,
    #: "degrade" answers them immediately with an empty partial result.
    scheduler_overload: str = "shed"

    # --- durability ------------------------------------------------------------------
    #: When set, every metadata mutation is journaled to this file so a
    #: restarted deployment can recover its metadata (ZooKeeper-style
    #: transaction log); None keeps metadata in memory only.
    metastore_journal: str = None
    #: When set, chunk bytes are spilled to files under this directory
    #: instead of held in memory (large experiments); None keeps them in
    #: memory.
    dfs_spill_dir: str = None

    # --- simulation -----------------------------------------------------------------
    costs: CostModel = field(default=DEFAULT_COSTS)
    seed: int = 7
    #: When > 0, every DFS data-plane read sleeps this many real seconds
    #: (realising the access-latency floor the cost model otherwise only
    #: prices); used by transport benchmarks so concurrent fan-out has
    #: genuine I/O waiting to overlap.
    dfs_read_sleep: float = 0.0
    #: When > 0, every DFS chunk write sleeps this many real seconds --
    #: the write-side twin of ``dfs_read_sleep``.  Used by the flush-stall
    #: benchmark (and flush-heavy tests) so a sync flush genuinely stalls
    #: the ingest thread while the async pipeline overlaps the wait.
    dfs_write_sleep: float = 0.0

    def __post_init__(self):
        if self.key_hi <= self.key_lo:
            raise ValueError("empty key domain")
        if self.chunk_bytes < 1024:
            raise ValueError("chunk_bytes unreasonably small")
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if not 0 < self.rebalance_threshold:
            raise ValueError("rebalance_threshold must be positive")
        if self.rebalance_check_every < 1:
            raise ValueError("rebalance_check_every must be >= 1")
        if self.rebalance_migration not in ("overlap", "flush"):
            raise ValueError(
                f"unknown rebalance_migration {self.rebalance_migration!r}"
            )
        if self.flush_mode not in ("sync", "async"):
            raise ValueError(f"unknown flush_mode {self.flush_mode!r}")
        if self.flush_inflight_bytes < 1:
            raise ValueError("flush_inflight_bytes must be >= 1")
        if self.dfs_write_sleep < 0:
            raise ValueError("dfs_write_sleep must be >= 0")
        if self.result_cache_bytes < 0:
            raise ValueError("result_cache_bytes must be >= 0")
        if self.leaf_coalesce_gap_bytes < 0:
            raise ValueError("leaf_coalesce_gap_bytes must be >= 0")
        if self.fetch_pipeline_depth < 0:
            raise ValueError("fetch_pipeline_depth must be >= 0")
        if self.prefetch_lookahead < 0:
            raise ValueError("prefetch_lookahead must be >= 0")
        if self.scheduler_max_concurrency < 1:
            raise ValueError("scheduler_max_concurrency must be >= 1")
        if self.scheduler_queue_limit < 1:
            raise ValueError("scheduler_queue_limit must be >= 1")
        if self.scheduler_overload not in ("shed", "degrade"):
            raise ValueError(
                f"unknown scheduler_overload {self.scheduler_overload!r}"
            )

    # --- derived sizes ---------------------------------------------------------------

    @property
    def n_dispatchers(self) -> int:
        """Total dispatcher count across the cluster."""
        return self.n_nodes * self.dispatchers_per_node

    @property
    def n_indexing_servers(self) -> int:
        """Total indexing-server count across the cluster."""
        return self.n_nodes * self.indexing_per_node

    @property
    def n_query_servers(self) -> int:
        """Total query-server count across the cluster."""
        return self.n_nodes * self.query_servers_per_node

    @property
    def tuples_per_chunk(self) -> int:
        """Logical tuples accumulated before a flush."""
        return max(1, self.chunk_bytes // self.tuple_size)

    @property
    def template_leaves(self) -> int:
        """The template's leaf count l, sized so leaves hit
        ``leaf_target_tuples`` when the chunk is full."""
        return max(1, min(self.max_template_leaves,
                          self.tuples_per_chunk // self.leaf_target_tuples))


#: A small configuration for unit tests and examples: tiny chunks so flushes
#: happen quickly, a handful of servers, deterministic seed.
def small_config(**overrides) -> WaterwheelConfig:
    """A small test/example configuration (tiny chunks, few servers)."""
    defaults = dict(
        key_lo=0,
        key_hi=10_000,
        n_nodes=3,
        dispatchers_per_node=1,
        indexing_per_node=1,
        query_servers_per_node=2,
        chunk_bytes=8192,
        tuple_size=32,
        leaf_target_tuples=16,
        skew_check_every=256,
        sample_every=4,
        frequency_buckets=64,
        sketch_granularity=1.0,
        late_delta=2.0,
        cache_bytes=1 << 20,
    )
    defaults.update(overrides)
    return WaterwheelConfig(**defaults)
