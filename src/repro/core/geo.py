"""Geo-temporal query helper: rectangle queries over z-ordered keys.

The paper's T-Drive pipeline (Section VI) z-orders (latitude, longitude)
into keys and converts a geographic query rectangle into a handful of
z-code intervals, "for each of the z-code intervals, the system issues a
query with the time range and the z-code range".  This helper packages
that fan-out: decomposition, per-interval execution, exact geometric
post-filtering and result merging.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.core.model import QueryResult
from repro.zorder import ZCurve

#: Extracts (lat, lon) from a tuple payload.
PointExtractor = Callable[[object], Tuple[float, float]]


def default_point_extractor(payload) -> Tuple[float, float]:
    """Works for payloads with ``lat``/``lon`` attributes (e.g. TaxiRecord)."""
    return payload.lat, payload.lon


def geo_query(
    system,
    curve: ZCurve,
    lat_lo: float,
    lat_hi: float,
    lon_lo: float,
    lon_hi: float,
    t_lo: float,
    t_hi: float,
    point_of: PointExtractor = default_point_extractor,
    max_ranges: int = 8,
    predicate: Optional[Callable] = None,
) -> QueryResult:
    """All tuples inside the geographic rectangle and time window.

    ``system`` is any object with the ``query(key_lo, key_hi, t_lo, t_hi,
    predicate)`` interface (normally :class:`repro.core.system.Waterwheel`).
    The z-intervals over-cover the rectangle, so the exact geometric test is
    pushed down as the per-tuple predicate.  The merged result's latency is
    the slowest interval's (intervals run in parallel, like subqueries).
    """
    if lat_hi < lat_lo or lon_hi < lon_lo:
        raise ValueError("inverted geographic rectangle")

    def exact(t) -> bool:
        lat, lon = point_of(t.payload)
        inside = lat_lo <= lat <= lat_hi and lon_lo <= lon <= lon_hi
        return inside and (predicate is None or predicate(t))

    merged = QueryResult(query_id=0)
    for z_lo, z_hi in curve.query_ranges(
        lat_lo, lat_hi, lon_lo, lon_hi, max_ranges=max_ranges
    ):
        res = system.query(z_lo, z_hi, t_lo, t_hi, predicate=exact)
        merged.tuples.extend(res.tuples)
        merged.subquery_count += res.subquery_count
        merged.bytes_read += res.bytes_read
        merged.leaves_read += res.leaves_read
        merged.leaves_skipped += res.leaves_skipped
        merged.latency = max(merged.latency, res.latency)
    return merged
