"""Core Waterwheel system: data model, servers, coordinator, facade."""

from repro.core.balancer import PartitionBalancer
from repro.core.config import WaterwheelConfig, small_config
from repro.core.coordinator import QueryCoordinator
from repro.core.dispatch import (
    DispatchError,
    DispatchOutcome,
    DispatchPolicy,
    HashingDispatch,
    LadaDispatch,
    RoundRobinDispatch,
    SharedQueueDispatch,
    run_dispatch,
)
from repro.core.dispatcher import Dispatcher, SharedPartition
from repro.core.indexing_server import IndexingServer, ServerDownError
from repro.core.model import (
    DataTuple,
    KeyInterval,
    Query,
    QueryResult,
    Region,
    SubQuery,
    TimeInterval,
    brute_force_query,
)
from repro.core.partitioning import (
    FrequencySampler,
    KeyPartition,
    aggregate_histograms,
    load_deviation,
    partition_loads,
)
from repro.core.query_server import LRUCache, QueryServer, SubQueryResult
from repro.core.system import Waterwheel

__all__ = [
    "DataTuple",
    "KeyInterval",
    "TimeInterval",
    "Region",
    "Query",
    "SubQuery",
    "QueryResult",
    "brute_force_query",
    "WaterwheelConfig",
    "small_config",
    "Waterwheel",
    "QueryCoordinator",
    "IndexingServer",
    "QueryServer",
    "ServerDownError",
    "Dispatcher",
    "SharedPartition",
    "PartitionBalancer",
    "KeyPartition",
    "FrequencySampler",
    "aggregate_histograms",
    "load_deviation",
    "partition_loads",
    "LRUCache",
    "SubQueryResult",
    "DispatchPolicy",
    "LadaDispatch",
    "RoundRobinDispatch",
    "HashingDispatch",
    "SharedQueueDispatch",
    "DispatchOutcome",
    "DispatchError",
    "run_dispatch",
]
