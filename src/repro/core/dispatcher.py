"""Dispatchers: route tuples to indexing servers, sample key frequencies.

Dispatchers receive the raw stream, look up the target indexing server in
the shared key partition, append the tuple to that server's durable-log
partition (making it replayable for recovery), and keep a sliding-window
sample of key frequencies that the balancer aggregates for adaptive key
partitioning (Section III-D).
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from repro.core.config import WaterwheelConfig
from repro.core.model import DataTuple
from repro.core.partitioning import FrequencySampler, KeyPartition
from repro.messaging import DurableLog
from repro.obs import metrics as _obs


class SharedPartition:
    """Mutable holder for the current global key partition and its epoch.

    Dispatchers read it on every tuple while the balancer may be
    installing a new partition from another thread, so the partition and
    its epoch live in one ``(partition, epoch)`` tuple attribute: readers
    always see a consistent pair (one attribute load), never a new
    partition with an old epoch or vice versa.  The epoch increases by one
    per installed partition; the ingest path compares epochs around a
    dispatch to detect that it routed under a since-replaced partition.
    """

    def __init__(self, partition: KeyPartition):
        self._state: Tuple[KeyPartition, int] = (partition, 0)
        self._lock = threading.Lock()  # serializes the epoch bump

    @property
    def current(self) -> KeyPartition:
        """The installed partition (consistent snapshot)."""
        return self._state[0]

    @property
    def epoch(self) -> int:
        """Install counter: bumped by every :meth:`update`."""
        return self._state[1]

    def snapshot(self) -> Tuple[KeyPartition, int]:
        """The (partition, epoch) pair as one consistent read."""
        return self._state

    def update(self, partition: KeyPartition) -> int:
        """Atomically swap in a new partition; returns its epoch."""
        with self._lock:
            state = (partition, self._state[1] + 1)
            self._state = state
        return state[1]


class Dispatcher:
    """One dispatcher instance (the paper runs two per node)."""

    def __init__(
        self,
        dispatcher_id: int,
        config: WaterwheelConfig,
        shared_partition: SharedPartition,
        log: DurableLog,
        topic: str,
    ):
        self.dispatcher_id = dispatcher_id
        self.config = config
        self._shared = shared_partition
        self._log = log
        self._topic = topic
        self.sampler = FrequencySampler(
            config.key_lo, config.key_hi, config.frequency_buckets
        )
        self._since_sample = 0
        self.tuples_dispatched = 0
        reg = _obs.registry()
        self._m_dispatched = reg.counter(
            "dispatcher.tuples", dispatcher=dispatcher_id
        )
        self._m_sampled = reg.counter("dispatcher.keys_sampled")
        self._m_rotations = reg.counter("dispatcher.window_rotations")

    def route(self, t: DataTuple) -> int:
        """The indexing server responsible for this tuple's key."""
        return self._shared.current.server_for(t.key)

    def dispatch(self, t: DataTuple) -> Tuple[int, int]:
        """Route, log and sample one tuple.

        Returns (indexing server id, durable-log offset).
        """
        server = self.route(t)
        offset = self._log.append(self._topic, server, t)
        self.tuples_dispatched += 1
        if _obs.ENABLED:
            self._m_dispatched.inc()
        self._since_sample += 1
        if self._since_sample >= self.config.sample_every:
            self._since_sample = 0
            self.sampler.record(t.key, weight=float(self.config.sample_every))
            if _obs.ENABLED:
                self._m_sampled.inc()
        return server, offset

    def route_batch(
        self, batch: Sequence[DataTuple]
    ) -> Dict[int, Tuple[List[DataTuple], int]]:
        """Route and log a whole batch in one shared-partition read.

        Returns ``{server_id: (tuples in arrival order, first offset)}``;
        each server's tuples got contiguous durable-log offsets starting at
        ``first offset``.  Routing and log contents are byte-identical to
        :meth:`dispatch` per tuple, but the partition is read once and each
        log partition takes a single ``append_batch``.  Sampling and
        dispatch accounting are *not* done here -- the system splits those
        across dispatchers with :meth:`observe_batch` to mirror the
        per-tuple round-robin exactly.
        """
        partition = self._shared.current  # one shared read per batch
        boundaries = partition.boundaries
        per_server: Dict[int, List[DataTuple]] = {}
        if boundaries:
            # Keep the per-tuple loop body minimal: one C bisect, one list
            # index, one pre-bound append call.
            runs: List[List[DataTuple]] = [
                [] for _ in range(len(boundaries) + 1)
            ]
            appenders = [run.append for run in runs]
            bisect = bisect_right
            for t in batch:
                appenders[bisect(boundaries, t.key)](t)
            per_server = {
                server: run for server, run in enumerate(runs) if run
            }
        else:
            per_server[0] = list(batch)
        out: Dict[int, Tuple[List[DataTuple], int]] = {}
        for server, run in per_server.items():
            first = self._log.append_batch(self._topic, server, run)
            out[server] = (run, first)
        return out

    def observe_batch(self, seen: Sequence[DataTuple]) -> None:
        """Account for ``seen`` tuples and stride-sample their keys.

        ``seen`` is the subsequence of a batch this dispatcher would have
        received tuple-by-tuple under the system's round-robin.  The tuples
        the per-tuple countdown would have sampled sit at fixed positions,
        so the sampler ends in exactly the state :meth:`dispatch` would
        have left it in.
        """
        n = len(seen)
        if n == 0:
            return
        self.tuples_dispatched += n
        if _obs.ENABLED:
            self._m_dispatched.inc(n)
        stride = self.config.sample_every
        i = stride - self._since_sample - 1
        sampled = 0
        while i < n:
            self.sampler.record(seen[i].key, weight=float(stride))
            sampled += 1
            i += stride
        self._since_sample = (self._since_sample + n) % stride
        if _obs.ENABLED and sampled:
            self._m_sampled.inc(sampled)

    def dispatch_batch(
        self, batch: Sequence[DataTuple]
    ) -> Dict[int, Tuple[List[DataTuple], int]]:
        """Route, log, account and sample a whole batch on this dispatcher.

        Standalone convenience equal to :meth:`dispatch` per tuple when a
        single dispatcher owns the stream; multi-dispatcher systems split
        the sampling via :meth:`observe_batch` instead.
        """
        out = self.route_batch(batch)
        self.observe_batch(batch)
        return out

    def sample_histogram(self) -> List[float]:
        """This dispatcher's key-frequency histogram (balancer probe).

        Answered over the ``balancer->dispatcher`` edge so histogram
        collection sees the same RPC weather as the data path.
        """
        return self.sampler.histogram()

    def rotate_sample_window(self) -> None:
        """Age out the older sampling window."""
        self.sampler.rotate()
        if _obs.ENABLED:
            self._m_rotations.inc()
