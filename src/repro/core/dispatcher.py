"""Dispatchers: route tuples to indexing servers, sample key frequencies.

Dispatchers receive the raw stream, look up the target indexing server in
the shared key partition, append the tuple to that server's durable-log
partition (making it replayable for recovery), and keep a sliding-window
sample of key frequencies that the balancer aggregates for adaptive key
partitioning (Section III-D).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import WaterwheelConfig
from repro.core.model import DataTuple
from repro.core.partitioning import FrequencySampler, KeyPartition
from repro.messaging import DurableLog
from repro.obs import metrics as _obs


class SharedPartition:
    """Mutable holder for the current global key partition.

    Dispatchers read it on every tuple; the balancer swaps in a new
    partition atomically (a single attribute assignment).
    """

    def __init__(self, partition: KeyPartition):
        self.current = partition

    def update(self, partition: KeyPartition) -> None:
        """Atomically swap in a new partition."""
        self.current = partition


class Dispatcher:
    """One dispatcher instance (the paper runs two per node)."""

    def __init__(
        self,
        dispatcher_id: int,
        config: WaterwheelConfig,
        shared_partition: SharedPartition,
        log: DurableLog,
        topic: str,
    ):
        self.dispatcher_id = dispatcher_id
        self.config = config
        self._shared = shared_partition
        self._log = log
        self._topic = topic
        self.sampler = FrequencySampler(
            config.key_lo, config.key_hi, config.frequency_buckets
        )
        self._since_sample = 0
        self.tuples_dispatched = 0
        reg = _obs.registry()
        self._m_dispatched = reg.counter(
            "dispatcher.tuples", dispatcher=dispatcher_id
        )
        self._m_sampled = reg.counter("dispatcher.keys_sampled")
        self._m_rotations = reg.counter("dispatcher.window_rotations")

    def route(self, t: DataTuple) -> int:
        """The indexing server responsible for this tuple's key."""
        return self._shared.current.server_for(t.key)

    def dispatch(self, t: DataTuple) -> Tuple[int, int]:
        """Route, log and sample one tuple.

        Returns (indexing server id, durable-log offset).
        """
        server = self.route(t)
        offset = self._log.append(self._topic, server, t)
        self.tuples_dispatched += 1
        if _obs.ENABLED:
            self._m_dispatched.inc()
        self._since_sample += 1
        if self._since_sample >= self.config.sample_every:
            self._since_sample = 0
            self.sampler.record(t.key, weight=float(self.config.sample_every))
            if _obs.ENABLED:
                self._m_sampled.inc()
        return server, offset

    def rotate_sample_window(self) -> None:
        """Age out the older sampling window."""
        self.sampler.rotate()
        if _obs.ENABLED:
            self._m_rotations.inc()
