"""Coordinator-level subquery result cache over immutable chunks.

Chunks are immutable once flushed (the point of Waterwheel's bi-layer
partitioning), so the answer to a chunk subquery -- a (chunk_id,
key-range, time-range, attribute-filter) rectangle -- never changes for
as long as the chunk exists.  Repeated queries over the same historical
windows therefore re-read exactly the same bytes from the DFS; this
cache keeps the *decoded answers* instead, keyed by the clipped subquery
rectangle, so a warm repeated workload skips the chunk read entirely.

Two events can retire a cached answer, and both are wired to explicit
invalidation rather than TTLs:

* **compaction** rewrites chunks (rollup merges, retention drops) --
  ``ChunkCompactor`` invalidates every dropped input chunk, and the
  coordinator's metastore watch does the same when a chunk is
  deregistered, so either path suffices on its own;
* **re-replication** moves chunk replicas after node failures -- the
  results themselves stay valid, but the DFS notifies its invalidation
  listeners anyway so locality-sensitive cached state is never trusted
  across a placement change.

Byte accounting reuses the query servers' :class:`LRUCache` (the same
unit-size-bounded LRU that holds chunk prefixes and leaf blocks), charged
with the wire size of the cached tuples.  Hits/misses/evictions/
invalidations are exported as ``cache.result.*`` metrics.

Subqueries carrying an opaque user predicate are never cached: the
predicate is an arbitrary callable with no stable identity, so two
textually identical lambdas would alias each other's results.
Attribute-filter subqueries are cacheable because ``attr_equals`` /
``attr_ranges`` are plain value maps that participate in the key.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set, Tuple

from repro.core.model import SubQuery
from repro.core.query_server import LRUCache, SubQueryResult
from repro.obs import metrics as _obs

#: Fixed per-entry overhead charged on top of the tuples' wire size
#: (key, dict slots, interval objects).  Keeps zero-tuple answers --
#: which are just as valuable to cache -- from being free.
ENTRY_OVERHEAD_BYTES = 96


class SubQueryResultCache:
    """Byte-bounded cache of :class:`SubQueryResult` by subquery rectangle.

    ``capacity_bytes=0`` disables the cache entirely: every lookup misses,
    nothing is stored, and the coordinator's query path is byte-for-byte
    the uncached one (the equivalence property tests rely on this).
    Thread-safe: the scheduler executes queries from worker threads.
    """

    def __init__(self, capacity_bytes: int = 0):
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity_bytes
        self._lru = LRUCache(capacity_bytes)
        self._entries: Dict[tuple, SubQueryResult] = {}
        self._by_chunk: Dict[str, Set[tuple]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        reg = _obs.registry()
        self._m_hits = reg.counter("cache.result.hits")
        self._m_misses = reg.counter("cache.result.misses")
        self._m_insertions = reg.counter("cache.result.insertions")
        self._m_evictions = reg.counter("cache.result.evictions")
        self._m_invalidations = reg.counter("cache.result.invalidations")
        self._m_bytes = reg.gauge("cache.result.bytes")

    @property
    def enabled(self) -> bool:
        """True when the cache can hold anything at all."""
        return self.capacity > 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently charged to cached results."""
        return self._lru.used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    # --- keying -----------------------------------------------------------------

    @staticmethod
    def key_for(sq: SubQuery) -> Optional[tuple]:
        """The cache key for a chunk subquery, or None when uncacheable.

        Uncacheable: fresh-data subqueries (no chunk id), subqueries with
        an opaque predicate, and attribute filters whose values are not
        hashable.
        """
        if sq.chunk_id is None or sq.predicate is not None:
            return None
        try:
            eq = (
                tuple(sorted(sq.attr_equals.items()))
                if sq.attr_equals
                else None
            )
            rng = (
                tuple(sorted(sq.attr_ranges.items()))
                if sq.attr_ranges
                else None
            )
            key = (
                sq.chunk_id, sq.keys.lo, sq.keys.hi,
                sq.times.lo, sq.times.hi, eq, rng,
            )
            hash(key)  # unhashable attribute values disqualify the key
            return key
        except TypeError:
            return None

    @staticmethod
    def _entry_size(result: SubQueryResult) -> int:
        return ENTRY_OVERHEAD_BYTES + sum(t.size for t in result.tuples)

    # --- lookup / insert -----------------------------------------------------------

    def get(self, key: Optional[tuple]) -> Optional[SubQueryResult]:
        """The cached result for ``key``, or None.  Counts a miss for
        every cacheable lookup that finds nothing (disabled caches miss
        everything)."""
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._lru.touch(key):
                self.hits += 1
                if _obs.ENABLED:
                    self._m_hits.inc()
                return entry
            self.misses += 1
            if _obs.ENABLED:
                self._m_misses.inc()
            return None

    def put(self, key: Optional[tuple], result: SubQueryResult) -> bool:
        """Admit a subquery result; returns True when it was retained.

        Oversized results (and everything, when disabled) are refused by
        the LRU without disturbing the resident working set.
        """
        if key is None or not self.enabled:
            return False
        chunk_id = key[0]
        size = self._entry_size(result)
        with self._lock:
            for evicted_key in self._lru.add(key, size):
                self._forget(evicted_key)
                self.evictions += 1
                if _obs.ENABLED:
                    self._m_evictions.inc()
            if key not in self._lru:
                return False
            self._entries[key] = result
            self._by_chunk.setdefault(chunk_id, set()).add(key)
            if _obs.ENABLED:
                self._m_insertions.inc()
                self._m_bytes.set(self._lru.used_bytes)
            return True

    def _forget(self, key: tuple) -> None:
        """Drop bookkeeping for a key already removed from the LRU."""
        self._entries.pop(key, None)
        keys = self._by_chunk.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_chunk[key[0]]

    # --- invalidation ---------------------------------------------------------------

    def invalidate_chunk(self, chunk_id: str) -> int:
        """Drop every cached answer for ``chunk_id``; returns how many.

        Called when compaction rewrites the chunk, when the metastore
        deregisters it, or when re-replication moves its replicas.
        Idempotent -- the three wirings overlap on purpose.
        """
        with self._lock:
            keys = self._by_chunk.pop(chunk_id, None)
            if not keys:
                return 0
            for key in keys:
                self._entries.pop(key, None)
                self._lru.discard(key)
            self.invalidations += len(keys)
            if _obs.ENABLED:
                self._m_invalidations.inc(len(keys))
                self._m_bytes.set(self._lru.used_bytes)
            return len(keys)

    def clear(self) -> int:
        """Drop everything (benchmarks use this for cold-cache runs);
        returns the number of entries dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._by_chunk.clear()
            self._lru = LRUCache(self.capacity)
            if _obs.ENABLED:
                self._m_bytes.set(0)
            return n

    # --- introspection --------------------------------------------------------------

    def stats(self) -> dict:
        """Point-in-time counters (JSON-friendly)."""
        return {
            "entries": len(self._entries),
            "bytes": self._lru.used_bytes,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
