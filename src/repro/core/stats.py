"""Deployment statistics: one structured snapshot of every component.

Production stores expose counters for dashboards and alerting; this module
gathers Waterwheel's into a single nested snapshot -- per-server ingest and
flush counts, query-server cache occupancy and hit rates, dispatcher
activity, DFS volume, balancer activity -- without touching any component's
hot path (all values are already tracked).

For *live* instruments (histograms, per-stage latency breakdowns) see the
process-wide registry in :mod:`repro.obs.metrics`; :func:`collect` merges a
registry snapshot into the component snapshot when metrics are enabled, so
there is exactly one source for each number: per-instance totals come from
the components, rates/percentiles come from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.obs import metrics as _obs


@dataclass
class IndexingServerStats:
    """Snapshot row for one indexing server."""
    server_id: int
    node_id: int
    alive: bool
    tuples_ingested: int
    in_memory_tuples: int
    bytes_in_memory: int
    flush_count: int
    assigned_lo: int
    assigned_hi: int


@dataclass
class QueryServerStats:
    """Snapshot row for one query server."""
    server_id: int
    node_id: int
    alive: bool
    subqueries_executed: int
    cache_units: int
    cache_bytes: int
    cache_capacity_bytes: int
    cache_hits: int
    cache_misses: int
    bytes_read: int


@dataclass
class DispatcherStats:
    """Snapshot row for one dispatcher."""
    dispatcher_id: int
    tuples_dispatched: int


@dataclass
class SystemSnapshot:
    """A point-in-time view of the whole deployment."""

    tuples_inserted: int
    in_memory_tuples: int
    chunk_count: int
    dfs_objects: int
    dfs_bytes_written: int
    dfs_bytes_read: int
    rebalance_count: int
    queries_executed: int
    catalog_regions: int
    log_backlog: int
    dead_indexing_servers: int = 0
    dead_query_servers: int = 0
    quarantined_indexing_servers: int = 0
    indexing: List[IndexingServerStats] = field(default_factory=list)
    query: List[QueryServerStats] = field(default_factory=list)
    dispatchers: List[DispatcherStats] = field(default_factory=list)

    def as_dict(self) -> Dict:
        """Nested-dict view (JSON-friendly)."""
        return {
            "tuples_inserted": self.tuples_inserted,
            "in_memory_tuples": self.in_memory_tuples,
            "chunk_count": self.chunk_count,
            "dfs_objects": self.dfs_objects,
            "dfs_bytes_written": self.dfs_bytes_written,
            "dfs_bytes_read": self.dfs_bytes_read,
            "rebalance_count": self.rebalance_count,
            "queries_executed": self.queries_executed,
            "catalog_regions": self.catalog_regions,
            "log_backlog": self.log_backlog,
            "dead_indexing_servers": self.dead_indexing_servers,
            "dead_query_servers": self.dead_query_servers,
            "quarantined_indexing_servers": self.quarantined_indexing_servers,
            "indexing": [vars(s) for s in self.indexing],
            "query": [vars(s) for s in self.query],
            "dispatchers": [vars(s) for s in self.dispatchers],
        }


def snapshot(system) -> SystemSnapshot:
    """Collect a :class:`SystemSnapshot` from a running Waterwheel."""
    log_backlog = 0
    for server in system.indexing_servers:
        topic = "tuples"
        latest = system.log.latest_offset(topic, server.server_id)
        base = system.log.base_offset(topic, server.server_id)
        log_backlog += latest - base

    snap = SystemSnapshot(
        tuples_inserted=system.tuples_inserted,
        in_memory_tuples=system.in_memory_tuples,
        chunk_count=system.chunk_count,
        dfs_objects=len(system.dfs),
        dfs_bytes_written=system.dfs.total_bytes_written,
        dfs_bytes_read=system.dfs.total_bytes_read,
        rebalance_count=system.balancer.rebalance_count,
        queries_executed=system.coordinator.queries_executed,
        catalog_regions=system.coordinator.catalog_size,
        log_backlog=log_backlog,
        dead_indexing_servers=sum(
            1 for s in system.indexing_servers if not s.alive
        ),
        dead_query_servers=sum(1 for s in system.query_servers if not s.alive),
        quarantined_indexing_servers=len(
            getattr(system, "quarantined_servers", ())
        ),
    )
    for server in system.indexing_servers:
        snap.indexing.append(
            IndexingServerStats(
                server_id=server.server_id,
                node_id=server.node_id,
                alive=server.alive,
                tuples_ingested=server.tuples_ingested,
                in_memory_tuples=server.in_memory_tuples if server.alive else 0,
                bytes_in_memory=server.bytes_in_memory if server.alive else 0,
                flush_count=server.flush_count,
                assigned_lo=server.assigned.lo,
                assigned_hi=server.assigned.hi,
            )
        )
    for server in system.query_servers:
        # A crashed server's cache is volatile state: report zero occupancy
        # explicitly rather than whatever the object happens to hold (the
        # same dead-server guard the indexing rows apply).
        alive = server.alive
        snap.query.append(
            QueryServerStats(
                server_id=server.server_id,
                node_id=server.node_id,
                alive=alive,
                subqueries_executed=server.subqueries_executed,
                cache_units=len(server.cache) if alive else 0,
                cache_bytes=server.cache.used_bytes if alive else 0,
                cache_capacity_bytes=server.cache.capacity,
                cache_hits=server.cache_hits_total,
                cache_misses=server.cache_misses_total,
                bytes_read=server.bytes_read_total,
            )
        )
    for dispatcher in system.dispatchers:
        snap.dispatchers.append(
            DispatcherStats(
                dispatcher_id=dispatcher.dispatcher_id,
                tuples_dispatched=dispatcher.tuples_dispatched,
            )
        )
    return snap


def collect(system) -> Dict:
    """One merged dict: component snapshot + live metrics registry.

    The ``"metrics"`` key delegates to :mod:`repro.obs.metrics` (present
    only while metrics are enabled).  Registry values are process-wide --
    with several Waterwheel instances in one process they aggregate across
    all of them, whereas the component fields are per-instance; overlapping
    names (e.g. ``coordinator.queries`` vs. ``queries_executed``) agree
    whenever a single system is running.
    """
    out = snapshot(system).as_dict()
    if _obs.ENABLED:
        out["metrics"] = _obs.registry().snapshot()
    return out
