"""Consistency checker: an fsck for a Waterwheel deployment.

Audits the invariants the design relies on:

1. **No loss, no duplication** -- every ingested tuple is present exactly
   once across the flushed chunks plus the indexing servers' in-memory
   trees (checked against the durable log, the source of truth).
2. **Region metadata is honest** -- each chunk's registered key/time region
   in the metadata store bounds exactly what the chunk contains (a region
   narrower than the data would make the coordinator skip results).
3. **Chunk integrity** -- every chunk and sidecar decodes and passes its
   CRCs; every chunk has at least one live replica.
4. **Catalog completeness** -- the coordinator's R-tree has exactly one
   entry per registered chunk.

Used by tests and exposed as ``python -m repro`` users' post-incident
sanity check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.storage import ChunkReader
from repro.storage.dfs import ChunkUnavailable


@dataclass
class VerificationReport:
    """Outcome of a full audit: empty ``problems`` means healthy."""

    tuples_in_log: int = 0
    tuples_in_chunks: int = 0
    tuples_in_memory: int = 0
    chunks_checked: int = 0
    sidecars_checked: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the audit found no problems."""
        return not self.problems

    def summary(self) -> str:
        """One-line report for logs/CLIs."""
        status = "OK" if self.ok else f"{len(self.problems)} PROBLEM(S)"
        return (
            f"[{status}] log={self.tuples_in_log} "
            f"chunks={self.tuples_in_chunks} (over {self.chunks_checked} chunks) "
            f"memory={self.tuples_in_memory}"
        )


def verify_system(system) -> VerificationReport:
    """Run the full audit against a live :class:`Waterwheel`."""
    report = VerificationReport()
    problems = report.problems

    # --- 1. gather the ground truth from the durable log -------------------
    log_rows = []
    for server in system.indexing_servers:
        base = system.log.base_offset("tuples", server.server_id)
        for _offset, t in system.log.replay("tuples", server.server_id, base):
            log_rows.append((t.key, t.ts))
    report.tuples_in_log = len(log_rows)

    # --- 2. decode every chunk, check CRCs, regions, replicas --------------
    chunk_rows = []
    registered = dict(system.metastore.items_prefix("/chunks/"))
    for key, info in registered.items():
        chunk_id = info["chunk_id"]
        report.chunks_checked += 1
        try:
            if not system.dfs.live_replicas(chunk_id):
                problems.append(f"{chunk_id}: no live replica")
                continue
            reader = ChunkReader(system.dfs.get_bytes(chunk_id))
            rows = reader.all_tuples()
        except ChunkUnavailable:
            problems.append(f"{chunk_id}: unavailable")
            continue
        except ValueError as exc:
            problems.append(f"{chunk_id}: failed to decode ({exc})")
            continue
        if len(rows) != info["n_tuples"]:
            problems.append(
                f"{chunk_id}: metadata says {info['n_tuples']} tuples, "
                f"chunk holds {len(rows)}"
            )
        for t in rows:
            if not (info["key_lo"] <= t.key < info["key_hi"]):
                problems.append(
                    f"{chunk_id}: tuple key {t.key} outside registered "
                    f"key region [{info['key_lo']}, {info['key_hi']})"
                )
                break
        for t in rows:
            if not (info["t_lo"] <= t.ts <= info["t_hi"]):
                problems.append(
                    f"{chunk_id}: tuple ts {t.ts} outside registered "
                    f"time region [{info['t_lo']}, {info['t_hi']}]"
                )
                break
        chunk_rows.extend((t.key, t.ts) for t in rows)

        sidecar_name = f"{chunk_id}.sidx"
        if system.dfs.exists(sidecar_name):
            from repro.secondary import ChunkSecondaryIndex

            try:
                ChunkSecondaryIndex.from_bytes(
                    system.dfs.get_bytes(sidecar_name)
                )
                report.sidecars_checked += 1
            except ValueError as exc:
                problems.append(f"{sidecar_name}: corrupt ({exc})")
    report.tuples_in_chunks = len(chunk_rows)

    # --- 3. in-memory data -------------------------------------------------
    memory_rows = []
    for server in system.indexing_servers:
        if not server.alive:
            continue
        # Active, late *and* sealed-but-uncommitted trees: sealed data has
        # left the active tree but is not yet durable in a chunk.
        for tree in server.in_memory_trees():
            memory_rows.extend((t.key, t.ts) for t in tree.all_tuples())
    report.tuples_in_memory = len(memory_rows)

    # --- 4. conservation: log == chunks + memory ---------------------------
    # (Only checkable when the log has not been truncated past flushed data
    # and no indexing server is down with unrecovered state.)
    all_alive = all(s.alive for s in system.indexing_servers)
    untruncated = all(
        system.log.base_offset("tuples", s.server_id) == 0
        for s in system.indexing_servers
    )
    if all_alive and untruncated:
        stored = sorted(chunk_rows + memory_rows)
        logged = sorted(log_rows)
        if stored != logged:
            missing = len(logged) - len(stored)
            problems.append(
                f"conservation violated: log has {len(logged)} tuples, "
                f"chunks+memory hold {len(stored)} ({missing:+d})"
            )

    # --- 5. catalog mirrors the metadata store ------------------------------
    catalog = system.coordinator.catalog_size
    if catalog != len(registered):
        problems.append(
            f"catalog has {catalog} regions, metadata registers "
            f"{len(registered)} chunks"
        )
    return report
