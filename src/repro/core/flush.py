"""Background flush executor: the write stage of the seal-and-swap pipeline.

The paper's central ingestion claim (Sections III-A/III-B, Figures 7-9) is
that an indexing server keeps accepting tuples at full rate *while* the
previous tree is serialized and shipped to the DFS.  This module is the
background half of that pipeline: with ``flush_mode="async"`` a full tree
is *sealed* -- swapped out whole as an immutable snapshot while a spawn of
the same template takes over ingestion -- and submitted here as a
:class:`FlushTask`.  A single worker thread serializes each sealed tree,
replicates the chunk, registers its region in the metastore, checkpoints
the replay offset and only then retires the snapshot, in submission order,
so per-server chunk sequence numbers and offset checkpoints commit in the
same order the data arrived.

Backpressure instead of unbounded queueing: sealed-but-uncommitted bytes
are capped (``flush_inflight_bytes``).  A seal that would exceed the cap
blocks the ingest thread until the worker drains -- except that one task
is always admitted when the pipeline is idle, so a cap smaller than one
chunk cannot deadlock.

Task lifecycle::

    pending --> inflight --> committed            (normal path)
                   |   \\--> failed --> pending    (supervisor retry)
    pending / inflight / failed --> cancelled     (server crash; the
                                                   durable log still holds
                                                   every sealed tuple)

A sealed-but-uncommitted tree stays query-visible on its server and its
offsets stay below the replay checkpoint, so a crash anywhere in this
pipeline loses nothing: recovery replays the log suffix the commit never
checkpointed.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import Optional

from repro.obs import metrics as _obs


class FlushTask:
    """One sealed tree waiting for (or undergoing) its background write."""

    __slots__ = (
        "server",
        "tree",
        "late",
        "seq",
        "chunk_id",
        "nbytes",
        "offset_ranges",
        "state",
        "error",
        "attempts",
    )

    def __init__(self, server, tree, late, seq, chunk_id, nbytes, offset_ranges):
        self.server = server
        self.tree = tree
        self.late = late
        self.seq = seq
        self.chunk_id = chunk_id
        #: Logical bytes sealed (the server's flush-threshold accounting),
        #: charged against the executor's in-flight cap.
        self.nbytes = nbytes
        #: Disjoint ascending ``[lo, hi)`` log-offset ranges held by the
        #: sealed tree, folded into the replay checkpoint at commit time.
        self.offset_ranges = offset_ranges
        self.state = "pending"
        self.error: Optional[BaseException] = None
        self.attempts = 0

    @property
    def uncommitted(self) -> bool:
        """Still holding data the chunk store does not durably have."""
        return self.state in ("pending", "inflight", "failed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlushTask({self.chunk_id}, {self.state}, {self.nbytes}B, "
            f"offsets={self.offset_ranges})"
        )


class FlushExecutor:
    """Bounded background executor draining sealed trees to the DFS.

    One executor is shared by every indexing server of a deployment (the
    cap bounds deployment-wide sealed memory); the single worker thread
    preserves per-server commit order.  The commit itself runs on the
    owning server (:meth:`IndexingServer._execute_flush`) under that
    server's seal lock, so a concurrent crash sees either a fully
    committed chunk or none of it.
    """

    def __init__(self, max_inflight_bytes: int):
        if max_inflight_bytes < 1:
            raise ValueError("max_inflight_bytes must be >= 1")
        self.max_inflight_bytes = max_inflight_bytes
        self._cv = threading.Condition()
        self._queue: deque = deque()
        self._inflight_bytes = 0  # queued + executing (uncommitted) bytes
        self._busy = 0  # tasks popped from the queue but not yet finished
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        reg = _obs.registry()
        self._m_queue_depth = reg.histogram(
            "flush.queue_depth", scale=1.0, unit="tasks"
        )
        self._m_inflight = reg.histogram(
            "flush.inflight_bytes", scale=1024.0, unit="bytes"
        )
        self._m_backpressure = reg.histogram("flush.backpressure_wall")
        self._m_commit_wall = reg.histogram("flush.commit_wall")
        self._m_failures = reg.counter("flush.failures")
        self._m_retries = reg.counter("flush.retries")

    # --- submission (ingest thread) ------------------------------------------

    def submit(self, task: FlushTask) -> None:
        """Enqueue a sealed tree; blocks while the in-flight byte cap is
        exceeded (backpressure), unless the pipeline is idle."""
        with self._cv:
            if self._closed:
                raise RuntimeError("flush executor is closed")
            waited_since = None
            while (
                self._inflight_bytes > 0
                and self._inflight_bytes + task.nbytes > self.max_inflight_bytes
                and not self._closed
            ):
                if waited_since is None:
                    waited_since = _time.perf_counter()
                self._cv.wait()
            if _obs.ENABLED and waited_since is not None:
                self._m_backpressure.observe(
                    _time.perf_counter() - waited_since
                )
            self._enqueue(task)

    def resubmit(self, task: FlushTask) -> None:
        """Re-queue a previously failed task (the supervisor's retry).

        Skips the backpressure wait: the sealed bytes are resident either
        way, and a supervisor blocked on the cap could not drive the very
        retries that would drain it."""
        with self._cv:
            if self._closed:
                return
            if _obs.ENABLED:
                self._m_retries.inc()
            self._enqueue(task)

    def _enqueue(self, task: FlushTask) -> None:
        """Queue a task and kick the worker; caller holds the lock."""
        self._inflight_bytes += task.nbytes
        self._queue.append(task)
        if _obs.ENABLED:
            self._m_queue_depth.observe(len(self._queue))
            self._m_inflight.observe(self._inflight_bytes)
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="waterwheel-flush", daemon=True
            )
            self._thread.start()
        self._cv.notify_all()

    # --- the worker -----------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue and self._closed:
                    return
                task = self._queue.popleft()
                self._busy += 1
            started = _time.perf_counter() if _obs.ENABLED else 0.0
            committed = False
            try:
                committed = task.server._execute_flush(task)
            except BaseException as exc:  # pragma: no cover - defensive:
                # _execute_flush parks its own failures; this only guards
                # the worker thread against an unexpected escape.
                task.error = exc
                if task.state != "cancelled":
                    task.state = "failed"
            finally:
                with self._cv:
                    self._busy -= 1
                    self._inflight_bytes -= task.nbytes
                    self._cv.notify_all()
            if _obs.ENABLED:
                if committed:
                    self._m_commit_wall.observe(_time.perf_counter() - started)
                elif task.state == "failed":
                    self._m_failures.inc()

    # --- draining & shutdown ---------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued task has been processed (committed,
        failed or cancelled); returns False on timeout.  A ``failed`` task
        leaves the queue -- it stays sealed on its server until a
        :meth:`resubmit` (or a crash cancels it)."""
        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._cv:
            while self._queue or self._busy:
                remaining = None
                if deadline is not None:
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        return False
                self._cv.wait(remaining)
        return True

    def close(self) -> None:
        """Stop accepting work and let the worker finish what is queued.

        Does not wait for the queue: anything uncommitted stays in its
        server's sealed list (and in the durable log), exactly like a
        crash -- call :meth:`drain` first for a clean shutdown.
        Idempotent."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    # --- introspection ----------------------------------------------------------

    @property
    def inflight_bytes(self) -> int:
        """Bytes sealed but not yet committed/failed/cancelled."""
        with self._cv:
            return self._inflight_bytes

    @property
    def depth(self) -> int:
        """Tasks queued or executing right now."""
        with self._cv:
            return len(self._queue) + self._busy
