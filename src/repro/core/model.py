"""Core data model: tuples, intervals, regions, queries.

The paper (Section II-A) defines a tuple ``d = <d_k, d_t, d_e>`` of key,
timestamp and payload, a two-dimensional key x time space ``R``, and queries
``q = <K_q, T_q, f_q>`` selecting a rectangle of that space plus an optional
user predicate.

Conventions used throughout this reproduction:

* Keys are non-negative integers (z-codes, IPv4 addresses, sensor ids all map
  naturally onto ints).  Key intervals are half-open ``[lo, hi)`` so that a
  partitioning of the key domain is a set of disjoint adjacent intervals.
* Timestamps are floats (seconds).  Time intervals are closed ``[lo, hi]``,
  matching the paper's ``T(t-, t+)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Tuple


@dataclass(frozen=True)
class DataTuple:
    """A single stream record.

    ``key`` is the index key (not necessarily unique), ``ts`` the event
    timestamp, and ``payload`` an opaque application value.  ``size`` is the
    wire size in bytes used by the cost model; the default approximates the
    paper's 30-50 byte tuples.
    """

    key: int
    ts: float
    payload: Any = None
    size: int = 36

    def as_row(self) -> Tuple[int, float, Any]:
        """One (key, ts, payload) row, e.g. for CSV export."""
        return (self.key, self.ts, self.payload)


class KeyInterval:
    """Half-open integer key interval ``[lo, hi)``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        if hi < lo:
            raise ValueError(f"empty-inverted key interval [{lo}, {hi})")
        self.lo = lo
        self.hi = hi

    @classmethod
    def closed(cls, lo: int, hi: int) -> "KeyInterval":
        """Build from an inclusive pair ``[lo, hi]`` as used in queries."""
        return cls(lo, hi + 1)

    def __contains__(self, key: int) -> bool:
        return self.lo <= key < self.hi

    def __len__(self) -> int:
        return max(0, self.hi - self.lo)

    def is_empty(self) -> bool:
        """True when the interval contains no key."""
        return self.hi <= self.lo

    def overlaps(self, other: "KeyInterval") -> bool:
        """True when the two intervals share at least one key."""
        if self.is_empty() or other.is_empty():
            return False
        return self.lo < other.hi and other.lo < self.hi

    def intersect(self, other: "KeyInterval") -> "KeyInterval":
        """The overlap of two intervals; may be empty (lo == hi)."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return KeyInterval(lo, max(lo, hi))

    def union_hull(self, other: "KeyInterval") -> "KeyInterval":
        """The smallest interval containing both inputs."""
        return KeyInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KeyInterval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"KeyInterval({self.lo}, {self.hi})"


class TimeInterval:
    """Closed time interval ``[lo, hi]`` in seconds."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        if hi < lo:
            raise ValueError(f"inverted time interval [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def __contains__(self, ts: float) -> bool:
        return self.lo <= ts <= self.hi

    def duration(self) -> float:
        """Interval length in seconds."""
        return self.hi - self.lo

    def overlaps(self, other: "TimeInterval") -> bool:
        """True when the two intervals share at least one instant."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersect(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """The overlap of the two intervals, or None when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi < lo:
            return None
        return TimeInterval(lo, hi)

    def union_hull(self, other: "TimeInterval") -> "TimeInterval":
        """The smallest interval containing both inputs."""
        return TimeInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def extend_left(self, delta: float) -> "TimeInterval":
        """Widen the left boundary by ``delta`` (the paper's late-arrival
        visibility adjustment, Section IV-D)."""
        return TimeInterval(self.lo - delta, self.hi)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimeInterval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"TimeInterval({self.lo}, {self.hi})"


class Region:
    """A rectangle in key x time space (the paper's *data region*)."""

    __slots__ = ("keys", "times")

    def __init__(self, keys: KeyInterval, times: TimeInterval):
        self.keys = keys
        self.times = times

    def overlaps(self, other: "Region") -> bool:
        """True when the rectangles intersect in both domains."""
        return self.keys.overlaps(other.keys) and self.times.overlaps(other.times)

    def contains(self, key: int, ts: float) -> bool:
        """True when the point (key, ts) lies inside the region."""
        return key in self.keys and ts in self.times

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Region)
            and self.keys == other.keys
            and self.times == other.times
        )

    def __hash__(self) -> int:
        return hash((self.keys, self.times))

    def __repr__(self) -> str:
        return f"Region({self.keys!r}, {self.times!r})"


Predicate = Callable[[DataTuple], bool]


@dataclass(frozen=True)
class Query:
    """A user query ``q = <K_q, T_q, f_q>``.

    ``keys`` uses inclusive bounds at the API surface (``KeyInterval.closed``
    is applied by callers); ``predicate`` defaults to accepting everything.
    """

    keys: KeyInterval
    times: TimeInterval
    predicate: Optional[Predicate] = None
    query_id: int = 0
    #: Equality predicates on secondary (payload) attributes, served by the
    #: bitmap/bloom sidecar indexes when configured.  Transported to the
    #: servers; exact filtering uses the configured attribute extractors.
    attr_equals: Optional[Dict[str, Any]] = None
    #: Inclusive (lo, hi) range predicates on numeric secondary attributes
    #: (zone maps).
    attr_ranges: Optional[Dict[str, Tuple[Any, Any]]] = None

    def region(self) -> Region:
        """The query's rectangle in key x time space."""
        return Region(self.keys, self.times)

    def matches(self, t: DataTuple) -> bool:
        """True when the tuple satisfies key, time and predicate criteria."""
        if t.key not in self.keys or t.ts not in self.times:
            return False
        return self.predicate is None or self.predicate(t)


@dataclass(frozen=True)
class SubQuery:
    """One unit of decomposed query work bound to a single data region.

    ``chunk_id`` is None when the subquery targets an indexing server's
    in-memory tree (fresh data) rather than a flushed chunk.
    """

    query_id: int
    keys: KeyInterval
    times: TimeInterval
    predicate: Optional[Predicate]
    chunk_id: Optional[str]
    indexing_server: Optional[int] = None
    attr_equals: Optional[Dict[str, Any]] = None
    attr_ranges: Optional[Dict[str, Tuple[Any, Any]]] = None

    @property
    def on_fresh_data(self) -> bool:
        """True when this subquery targets an in-memory tree, not a chunk."""
        return self.chunk_id is None


@dataclass
class QueryResult:
    """Merged result of a query: matching tuples plus execution metrics."""

    query_id: int
    tuples: list = field(default_factory=list)
    subquery_count: int = 0
    latency: float = 0.0
    bytes_read: int = 0
    leaves_read: int = 0
    leaves_skipped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Chunk subqueries answered from the coordinator's result cache
    #: (their chunk reads were skipped entirely).
    result_cache_hits: int = 0
    #: True when some subqueries could not be answered (all replicas of a
    #: chunk on failed nodes, or an unreachable query-server edge); the
    #: tuples above still cover every healthy region.
    partial: bool = False
    #: True when the scheduler answered this query without executing it
    #: (overload ``degrade`` policy); implies ``partial`` and zero tuples.
    degraded: bool = False
    #: Chunk ids whose subqueries failed (deduplicated, insertion order).
    unreadable_chunks: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tuples)


def brute_force_query(tuples: Iterable[DataTuple], query: Query) -> list:
    """Reference oracle: linear scan used by tests to validate the system."""
    return [t for t in tuples if query.matches(t)]
