"""Query coordinator: decomposition, dispatch, merge (paper Section IV).

The coordinator keeps an R-tree over every flushed chunk's data region
(fed by a metadata-store watch, so a re-created coordinator rebuilds the
catalog from persistent state -- Section V's coordinator recovery).  A user
query is decomposed into one subquery per overlapping data region: chunk
subqueries go to query servers through the configured dispatch policy,
fresh-data subqueries go to the indexing servers whose live regions overlap
the query (with the Delta-t late-arrival widening applied by the servers
themselves).  Results are merged and returned with a simulated latency:
the slower of the fresh branch and the chunk branch plus result transfer.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import WaterwheelConfig
from repro.core.dispatch import (
    DispatchOutcome,
    DispatchPolicy,
    run_dispatch,
    run_dispatch_concurrent,
)
from repro.core.indexing_server import IndexingServer, ServerDownError
from repro.core.model import (
    KeyInterval,
    Query,
    QueryResult,
    Region,
    SubQuery,
    TimeInterval,
)
from repro.core.query_server import QueryServer
from repro.core.result_cache import SubQueryResultCache
from repro.metastore import MetadataStore
from repro.obs import metrics as _obs
from repro.obs import tracing as _trace
from repro.rpc import MessagePlane, RpcError
from repro.rtree import RTree, str_pack


class QueryCoordinator:
    """Decomposes, dispatches and merges user queries."""

    def __init__(
        self,
        config: WaterwheelConfig,
        metastore: MetadataStore,
        indexing_servers: Sequence[IndexingServer],
        query_servers: Sequence[QueryServer],
        policy: DispatchPolicy,
        plane: Optional[MessagePlane] = None,
    ):
        self.config = config
        self.metastore = metastore
        self.indexing_servers = list(indexing_servers)
        self.query_servers = list(query_servers)
        self.policy = policy
        # All coordinator hops ride the message plane: fresh scans down the
        # coordinator->indexing edge, chunk subqueries down the
        # coordinator->query_server edge (concurrently, when the plane's
        # transport supports it).
        self.plane = plane or MessagePlane()
        self._ep_fresh = self.plane.endpoint(
            "coordinator->indexing", self.indexing_servers
        )
        self._ep_chunk = self.plane.endpoint(
            "coordinator->query_server", self.query_servers
        )
        self._query_ids = itertools.count(1)
        self.alive = True
        self.queries_executed = 0
        self.last_trace: Optional[_trace.Span] = None
        #: Subquery answers over immutable chunks, reused across queries
        #: (disabled when ``config.result_cache_bytes`` is 0).  Invalidated
        #: through the metastore watch below and -- belt and braces -- by
        #: the compactor and the DFS's re-replication listeners.
        self.result_cache = SubQueryResultCache(
            getattr(config, "result_cache_bytes", 0)
        )
        # The scheduler executes queries from worker threads while ingest
        # keeps mutating the catalog through the metastore watch; catalog
        # reads/writes take this lock (queries hold it only to *collect*
        # overlapping regions, never while executing subqueries).
        self._catalog_lock = threading.Lock()
        self._exec_lock = threading.Lock()
        # Instruments are resolved once here; execute() only checks the
        # module flag and pokes these handles (no registry lookups per query).
        reg = _obs.registry()
        self._m_queries = reg.counter("coordinator.queries")
        self._m_subqueries = reg.histogram(
            "coordinator.subqueries_per_query", scale=1.0, unit="subqueries"
        )
        self._m_latency_sim = reg.histogram("query.latency_sim")
        self._m_latency_wall = reg.histogram("query.latency_wall")
        self._m_stage = {
            stage: reg.histogram(f"query.stage.{stage}_wall")
            for stage in ("decompose", "fresh", "dispatch", "merge")
        }
        self._m_partial = reg.counter("coordinator.partial_queries")
        self._m_fresh_pruned = reg.counter("coordinator.fresh_pruned")
        self._catalog = RTree(max_entries=16)
        self._catalog_regions: Dict[str, Region] = {}
        #: Each indexing server's published *actual* key interval (assigned
        #: plus any transient post-repartition overlap, Section III-D).
        #: Fed by the ``/partition/actual/`` watch; used to prune fresh
        #: scans without a round trip to every server.  Servers that never
        #: published (absent here) are conservatively always consulted.
        self._actual_intervals: Dict[int, KeyInterval] = {}
        self._bootstrap_catalog()
        self._unwatch = metastore.watch("/chunks/", self._on_chunk_event)
        self._unwatch_actual = metastore.watch(
            "/partition/actual/", self._on_actual_event
        )

    # --- catalog maintenance -----------------------------------------------------

    def _bootstrap_catalog(self) -> None:
        """Load every registered chunk region (coordinator recovery path).

        STR bulk loading packs the catalog bottom-up: a failover with
        thousands of chunks rebuilds in one pass with near-full nodes.
        """
        entries = []
        for _key, info in self.metastore.items_prefix("/chunks/"):
            region = Region(
                KeyInterval(info["key_lo"], info["key_hi"]),
                TimeInterval(info["t_lo"], info["t_hi"]),
            )
            entries.append((region, info["chunk_id"]))
            self._catalog_regions[info["chunk_id"]] = region
        if entries:
            self._catalog = str_pack(entries, max_entries=16)
        for key, value in self.metastore.items_prefix("/partition/actual/"):
            self._on_actual_event(key, value)

    def _on_actual_event(self, key: str, value) -> None:
        try:
            server_id = int(key.rsplit("/", 1)[-1])
        except ValueError:
            return
        with self._catalog_lock:
            if value is None:
                self._actual_intervals.pop(server_id, None)
            else:
                self._actual_intervals[server_id] = KeyInterval(
                    value[0], value[1]
                )

    def _on_chunk_event(self, key: str, value: Optional[dict]) -> None:
        chunk_id = key.rsplit("/", 1)[-1]
        if value is None:
            with self._catalog_lock:
                region = self._catalog_regions.pop(chunk_id, None)
                if region is not None:
                    self._catalog.delete(region, chunk_id)
            # A deregistered chunk is gone (retention) or rewritten into a
            # rollup output (compaction): its cached subquery answers must
            # never be served again.
            self.result_cache.invalidate_chunk(chunk_id)
        elif chunk_id not in self._catalog_regions:
            self._add_chunk(value)

    def _add_chunk(self, info: dict) -> None:
        region = Region(
            KeyInterval(info["key_lo"], info["key_hi"]),
            TimeInterval(info["t_lo"], info["t_hi"]),
        )
        with self._catalog_lock:
            self._catalog.insert(region, info["chunk_id"])
            self._catalog_regions[info["chunk_id"]] = region

    def close(self) -> None:
        """Detach from the metadata store (used when failing over)."""
        self._unwatch()
        self._unwatch_actual()

    def heartbeat(self) -> dict:
        """Liveness probe answered over the message plane (supervision)."""
        if not self.alive:
            raise ServerDownError("coordinator is down")
        return {
            "component": "coordinator",
            "queries_executed": self.queries_executed,
            "catalog_regions": len(self._catalog),
        }

    def fail(self) -> None:
        """Crash the coordinator: it stops answering queries and detaches
        its metastore watch.  Idempotent.  The catalog it held is volatile
        -- a standby rebuilds its own from the metastore
        (:meth:`_bootstrap_catalog`)."""
        if not self.alive:
            return
        self.alive = False
        self.close()

    @property
    def catalog_size(self) -> int:
        """Number of chunk regions in the R-tree catalog."""
        return len(self._catalog)

    # --- decomposition ------------------------------------------------------------

    def decompose(self, query: Query) -> Tuple[List[SubQuery], List[SubQuery]]:
        """Split a query into (fresh subqueries, chunk subqueries)."""
        fresh: List[SubQuery] = []
        region = query.region()
        with self._catalog_lock:
            actual_intervals = dict(self._actual_intervals)
        pruned = 0
        for server in self.indexing_servers:
            # Published actual intervals prune the fan-out: a server whose
            # possible in-memory key span (assignment + any transient
            # repartition overlap) misses the query needs no round trip.
            # The interval is maintained conservatively -- widened on every
            # out-of-interval ingest before the data is queryable -- so a
            # pruned server can not hold matching tuples.
            known = actual_intervals.get(server.server_id)
            if known is not None and not known.overlaps(query.keys):
                pruned += 1
                continue
            live = self._ep_fresh.call(server.server_id, "fresh_region")
            if live is None or not live.overlaps(region):
                continue
            keys = query.keys.intersect(live.keys)
            if keys.is_empty():
                continue
            fresh.append(
                SubQuery(
                    query_id=query.query_id,
                    keys=keys,
                    times=query.times,
                    predicate=query.predicate,
                    chunk_id=None,
                    indexing_server=server.server_id,
                    attr_equals=query.attr_equals,
                    attr_ranges=query.attr_ranges,
                )
            )
        if pruned and _obs.ENABLED:
            self._m_fresh_pruned.inc(pruned)
        chunks: List[SubQuery] = []
        # Snapshot the R-tree search under the lock: the metastore watch
        # mutates the catalog from whatever thread registers a chunk, and
        # scheduler workers decompose queries concurrently.
        with self._catalog_lock:
            overlapping = list(self._catalog.search(region))
        for chunk_region, chunk_id in overlapping:
            keys = query.keys.intersect(chunk_region.keys)
            times = query.times.intersect(chunk_region.times)
            if keys.is_empty() or times is None:
                continue
            chunks.append(
                SubQuery(
                    query_id=query.query_id,
                    keys=keys,
                    times=times,
                    predicate=query.predicate,
                    chunk_id=chunk_id,
                    attr_equals=query.attr_equals,
                    attr_ranges=query.attr_ranges,
                )
            )
        return fresh, chunks

    # --- explain ------------------------------------------------------------------

    def explain(self, query: Query) -> dict:
        """The decomposition plan, without executing anything.

        Returns a dict suitable for printing or asserting in tests: which
        indexing servers would be consulted for fresh data, which chunks
        would be read (with their clipped key/time intervals and replica
        nodes), and totals -- a database EXPLAIN for the streaming store.
        """
        fresh_sqs, chunk_sqs = self.decompose(query)
        plan = {
            "key_range": [query.keys.lo, query.keys.hi - 1],
            "time_range": [query.times.lo, query.times.hi],
            "attr_equals": dict(query.attr_equals) if query.attr_equals else None,
            "fresh": [
                {
                    "indexing_server": sq.indexing_server,
                    "keys": [sq.keys.lo, sq.keys.hi],
                }
                for sq in fresh_sqs
            ],
            "chunks": [],
            "subquery_count": len(fresh_sqs) + len(chunk_sqs),
        }
        # R-tree search order depends on insertion history, which differs
        # between a catalog grown chunk-by-chunk and one rebuilt from the
        # metastore after a coordinator failover; sort so the *plan* is a
        # stable artifact (diffable across takeovers) either way.
        for sq in sorted(chunk_sqs, key=lambda sq: sq.chunk_id):
            info = self.metastore.get(f"/chunks/{sq.chunk_id}", {})
            replicas = []
            for server in self.query_servers:
                dfs = getattr(server, "dfs", None)
                if dfs is not None and dfs.exists(sq.chunk_id):
                    replicas = dfs.live_replicas(sq.chunk_id)
                    break
            plan["chunks"].append(
                {
                    "chunk_id": sq.chunk_id,
                    "keys": [sq.keys.lo, sq.keys.hi],
                    "times": [sq.times.lo, sq.times.hi],
                    "n_tuples": info.get("n_tuples"),
                    "bytes": info.get("bytes"),
                    "replica_nodes": replicas,
                }
            )
        return plan

    @staticmethod
    def render_plan(plan: dict) -> str:
        """Human-readable rendering of an :meth:`explain` plan."""
        lines = [
            f"Query keys [{plan['key_range'][0]}, {plan['key_range'][1]}] "
            f"x time [{plan['time_range'][0]:.3f}, {plan['time_range'][1]:.3f}]"
        ]
        if plan["attr_equals"]:
            lines.append(f"  attribute filters: {plan['attr_equals']}")
        lines.append(f"  {len(plan['fresh'])} fresh subquery(ies):")
        for item in plan["fresh"]:
            lines.append(
                f"    indexing server {item['indexing_server']} "
                f"keys [{item['keys'][0]}, {item['keys'][1]})"
            )
        lines.append(f"  {len(plan['chunks'])} chunk subquery(ies):")
        for item in plan["chunks"]:
            lines.append(
                f"    {item['chunk_id']} ({item['n_tuples']} tuples, "
                f"{item['bytes']} bytes, replicas {item['replica_nodes']})"
            )
        return "\n".join(lines)

    # --- execution -------------------------------------------------------------------

    def execute(self, query: Query) -> QueryResult:
        """Run the full query workflow; returns merged results + metrics."""
        if not self.alive:
            raise ServerDownError("coordinator is down")
        if query.query_id == 0:
            query = Query(
                query.keys,
                query.times,
                query.predicate,
                next(self._query_ids),
                query.attr_equals,
                query.attr_ranges,
            )
        costs = self.config.costs
        with _trace.span(
            "query",
            query_id=query.query_id,
            key_lo=query.keys.lo,
            key_hi=query.keys.hi,
            t_lo=query.times.lo,
            t_hi=query.times.hi,
        ) as root:
            with _trace.span("decompose") as sp:
                fresh_sqs, chunk_sqs = self.decompose(query)
                if sp is not None:
                    sp.set_attr("catalog_regions", len(self._catalog))
                    sp.set_attr("fresh_subqueries", len(fresh_sqs))
                    sp.set_attr("chunk_subqueries", len(chunk_sqs))
                    sp.set_attr(
                        "chunks_pruned", len(self._catalog) - len(chunk_sqs)
                    )
            result = QueryResult(query_id=query.query_id)
            result.subquery_count = len(fresh_sqs) + len(chunk_sqs)

            # Fresh branch: indexing servers scan their in-memory trees in
            # parallel; each pays a coordinator round trip plus scan CPU.
            fresh_latency = 0.0
            with _trace.span("fresh", subqueries=len(fresh_sqs)) as fresh_sp:
                if self.plane.concurrent and len(fresh_sqs) > 1:
                    fresh_latency = self._run_fresh_concurrent(
                        fresh_sqs, result, costs
                    )
                else:
                    fresh_latency = self._run_fresh_serial(
                        fresh_sqs, result, costs
                    )
                if fresh_sp is not None:
                    fresh_sp.set_attr("latency_sim", fresh_latency)

            # Chunk branch: dispatch policy spreads subqueries over query
            # servers; the makespan is the branch latency.
            chunk_latency = 0.0
            with _trace.span(
                "dispatch", policy=self.policy.name, subqueries=len(chunk_sqs)
            ) as disp_sp:
                # Answer what we can from the result cache; only the misses
                # go to the query servers.  Cached answers contribute tuples
                # but no I/O counters -- no chunk bytes were read for them.
                run_sqs, cache_keys, cached = self._lookup_result_cache(
                    chunk_sqs
                )
                for hit in cached:
                    result.tuples.extend(hit.tuples)
                result.result_cache_hits = len(cached)
                if disp_sp is not None and cached:
                    disp_sp.set_attr("result_cache_hits", len(cached))
                if run_sqs:
                    outcome = self._run_chunks(run_sqs)
                    chunk_latency = outcome.makespan
                    for idx, sub_result in enumerate(outcome.results):
                        if sub_result is None:
                            continue
                        result.tuples.extend(sub_result.tuples)
                        result.bytes_read += sub_result.bytes_read
                        result.leaves_read += sub_result.leaves_read
                        result.leaves_skipped += sub_result.leaves_skipped
                        result.cache_hits += sub_result.cache_hits
                        result.cache_misses += sub_result.cache_misses
                        self.result_cache.put(cache_keys[idx], sub_result)
                    for idx in sorted(outcome.failed):
                        result.partial = True
                        chunk_id = run_sqs[idx].chunk_id
                        if (
                            chunk_id is not None
                            and chunk_id not in result.unreadable_chunks
                        ):
                            result.unreadable_chunks.append(chunk_id)
                    if disp_sp is not None:
                        disp_sp.set_attr("makespan_sim", outcome.makespan)
                        disp_sp.set_attr("retried", outcome.retried)
                        disp_sp.set_attr("failed", len(outcome.failed))

            with _trace.span("merge") as merge_sp:
                transfer = costs.network_transfer(
                    len(result.tuples) * self.config.tuple_size
                )
                result.latency = max(fresh_latency, chunk_latency) + transfer
                if merge_sp is not None:
                    merge_sp.set_attr("tuples", len(result.tuples))
                    merge_sp.set_attr("transfer_sim", transfer)

            if root is not None:
                root.set_attr("latency_sim", result.latency)
                root.set_attr("tuples", len(result.tuples))
                root.set_attr("bytes_read", result.bytes_read)
                root.set_attr("leaves_read", result.leaves_read)
                root.set_attr("leaves_skipped", result.leaves_skipped)
                root.set_attr("cache_hits", result.cache_hits)
                root.set_attr("cache_misses", result.cache_misses)
                if result.partial:
                    root.set_attr("partial", True)

        # Bookkeeping is shared across scheduler workers; one lock keeps the
        # counters exact and last_trace pointing at a fully-built span tree.
        with self._exec_lock:
            self.queries_executed += 1
            if root is not None:
                self.last_trace = root
            if _obs.ENABLED:
                self._m_queries.inc()
                if result.partial:
                    self._m_partial.inc()
                self._m_subqueries.observe(result.subquery_count)
                self._m_latency_sim.observe(result.latency)
                if root is not None:
                    # Stage-latency breakdown: span durations feed the
                    # registry so --metrics benchmark runs get per-stage
                    # histograms.
                    self._m_latency_wall.observe(root.duration)
                    for child in root.children:
                        hist = self._m_stage.get(child.name)
                        if hist is not None:
                            hist.observe(child.duration)
        return result

    def _lookup_result_cache(self, chunk_sqs):
        """Partition chunk subqueries into (to-run, their cache keys,
        cached hits).  With the cache disabled this is the identity split:
        every subquery runs, every key is None."""
        if not self.result_cache.enabled or not chunk_sqs:
            return chunk_sqs, [None] * len(chunk_sqs), []
        run_sqs, keys, cached = [], [], []
        for sq in chunk_sqs:
            key = self.result_cache.key_for(sq)
            hit = self.result_cache.get(key)
            if hit is not None:
                cached.append(hit)
            else:
                run_sqs.append(sq)
                keys.append(key)
        return run_sqs, keys, cached

    # --- branch runners ----------------------------------------------------------

    def _fresh_branch_cost(self, tuples, examined, costs) -> float:
        """Simulated cost of one fresh scan: round trip + CPU + transfer."""
        return (
            2 * costs.network_latency
            + examined * costs.scan_cpu
            + costs.network_transfer(len(tuples) * self.config.tuple_size)
        )

    def _run_fresh_serial(self, fresh_sqs, result: QueryResult, costs) -> float:
        """Fresh scans one at a time down the coordinator->indexing edge
        (the deterministic inline path).  A scan lost to a dead server or a
        broken edge degrades that region to a partial result."""
        fresh_latency = 0.0
        for sq in fresh_sqs:
            with _trace.span(
                "fresh_scan", server=sq.indexing_server
            ) as scan_sp:
                try:
                    tuples, examined = self._ep_fresh.call(
                        sq.indexing_server, "query_fresh", sq
                    )
                except (ServerDownError, RpcError):
                    result.partial = True
                    if scan_sp is not None:
                        scan_sp.set_attr("failed", True)
                    continue
                result.tuples.extend(tuples)
                branch = self._fresh_branch_cost(tuples, examined, costs)
                if scan_sp is not None:
                    scan_sp.set_attr("tuples", len(tuples))
                    scan_sp.set_attr("tuples_examined", examined)
                    scan_sp.set_attr("cost_sim", branch)
                fresh_latency = max(fresh_latency, branch)
        return fresh_latency

    def _run_fresh_concurrent(
        self, fresh_sqs, result: QueryResult, costs
    ) -> float:
        """Fan every fresh scan out at once (per-server transport workers)
        and merge completions; same cost model as the serial path."""
        pol = self.plane.policy("coordinator->indexing")
        calls = [
            (sq, self._ep_fresh.submit(sq.indexing_server, "query_fresh", sq))
            for sq in fresh_sqs
        ]
        fresh_latency = 0.0
        for _sq, call in calls:
            try:
                tuples, examined = call.result(pol.timeout)
            except (ServerDownError, RpcError):
                result.partial = True
                continue
            result.tuples.extend(tuples)
            fresh_latency = max(
                fresh_latency, self._fresh_branch_cost(tuples, examined, costs)
            )
        return fresh_latency

    def _run_chunks(self, chunk_sqs) -> DispatchOutcome:
        """Dispatch chunk subqueries down the coordinator->query_server
        edge: the virtual-time loop under the inline transport, the
        completion-driven concurrent loop when the transport fans out."""
        # Policies hold per-query prepared state; concurrent queries from
        # scheduler workers must each dispatch through their own instance.
        policy = self.policy.fresh()
        if self.plane.concurrent:
            pol = self.plane.policy("coordinator->query_server")
            prefetch = None
            if self.config.ranged_reads and self.config.prefetch_lookahead > 0:
                # Assignment-aware warm-up: the policy's preference lists
                # predict which subqueries a slot runs next; the server
                # starts their prefix reads while executing the current one.
                def prefetch(slot, sqs):
                    self.query_servers[slot].prefetch_prefixes(
                        [sq.chunk_id for sq in sqs if sq.chunk_id is not None]
                    )

            return run_dispatch_concurrent(
                chunk_sqs,
                self.query_servers,
                policy,
                submit=lambda slot, sq: self._ep_chunk.submit(
                    slot, "execute", sq
                ),
                timeout=pol.timeout,
                retries=pol.retries,
                on_timeout=self._ep_chunk.note_timeout,
                on_retry=self._ep_chunk.note_retry,
                prefetch=prefetch,
                lookahead=self.config.prefetch_lookahead,
            )
        slot_of = {id(s): slot for slot, s in enumerate(self.query_servers)}
        return run_dispatch(
            chunk_sqs,
            self.query_servers,
            policy,
            execute=lambda server, sq: self._ep_chunk.call(
                slot_of[id(server)], "execute", sq
            ),
        )
