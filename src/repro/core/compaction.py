"""Chunk rollup and retention: lifecycle management for immutable chunks.

Waterwheel never merges fresh data into historical data -- that is the
point of its partitioning -- but a long-running deployment still
accumulates chunk *files*: small flushes (forced at shutdown, after
repartitions, from late buffers) fragment the catalog, and data eventually
ages past usefulness.  Two offline maintenance passes handle this without
touching the ingest path:

* **Rollup** merges an indexing server's adjacent small chunks into one
  larger chunk (reading real bytes, merging the key-sorted runs,
  re-serializing with fresh sketches and sidecars).  Unlike LSM
  compaction this never re-merges *new* into *old* data -- it only
  coalesces already-historical neighbours, so ingest throughput is
  untouched.
* **Retention** drops chunks whose newest tuple is older than a horizon.

Both keep the metadata store, the DFS and the coordinator catalog in sync
(the catalog follows automatically through its metadata watch).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.storage import ChunkReader, serialize_chunk


@dataclass
class CompactionReport:
    """What a rollup/retention pass did."""
    chunks_merged: int = 0
    chunks_created: int = 0
    chunks_expired: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    merged_groups: List[List[str]] = field(default_factory=list)


class ChunkCompactor:
    """Offline maintenance over a deployment's chunk set."""

    def __init__(self, system, target_bytes: Optional[int] = None):
        """``target_bytes`` is the rollup output ceiling (defaults to the
        deployment's configured chunk size)."""
        self.system = system
        self.target_bytes = target_bytes or system.config.chunk_bytes

    # --- rollup ----------------------------------------------------------------

    def _chunks_by_server(self) -> Dict[int, List[dict]]:
        by_server: Dict[int, List[dict]] = {}
        for _key, info in self.system.metastore.items_prefix("/chunks/"):
            by_server.setdefault(info["server"], []).append(info)
        for infos in by_server.values():
            infos.sort(key=lambda i: i["t_lo"])
        return by_server

    def rollup(self, min_group: int = 2) -> CompactionReport:
        """Merge temporally adjacent undersized chunks per server.

        Groups consecutive chunks (by time) whose combined serialized size
        stays under ``target_bytes``; groups smaller than ``min_group`` are
        left alone.
        """
        report = CompactionReport()
        for server, infos in self._chunks_by_server().items():
            group: List[dict] = []
            group_bytes = 0
            for info in infos + [None]:  # sentinel flushes the last group
                fits = (
                    info is not None
                    and group_bytes + info["bytes"] <= self.target_bytes
                    and info["bytes"] < self.target_bytes // 2
                )
                if fits:
                    group.append(info)
                    group_bytes += info["bytes"]
                    continue
                if len(group) >= min_group:
                    self._merge_group(server, group, report)
                group = []
                group_bytes = 0
                if (
                    info is not None
                    and info["bytes"] < self.target_bytes // 2
                ):
                    group = [info]
                    group_bytes = info["bytes"]
        return report

    def _merge_group(
        self, server: int, group: List[dict], report: CompactionReport
    ) -> None:
        runs = []
        for info in group:
            reader = ChunkReader(self.system.dfs.get_bytes(info["chunk_id"]))
            runs.append(reader.all_tuples())
            report.bytes_before += info["bytes"]
        merged = list(heapq.merge(*runs, key=lambda t: t.key))

        # Re-leaf the merged run at the configured leaf granularity.
        leaf_size = max(1, self.system.config.leaf_target_tuples)
        leaves = []
        for start in range(0, len(merged), leaf_size):
            run = merged[start : start + leaf_size]
            leaves.append(([t.key for t in run], run))
        blob = serialize_chunk(
            leaves,
            self.system.config.sketch_granularity,
            compress=self.system.config.compress_chunks,
        )

        seq_key = f"/compaction/{server}/next_seq"
        seq = self.system.metastore.get(seq_key, 0)
        self.system.metastore.put(seq_key, seq + 1)
        chunk_id = f"chunk-{server}-R{seq}"
        self.system.dfs.put(chunk_id, blob)
        if self.system.config.secondary_specs:
            from repro.secondary import ChunkSecondaryIndex, sidecar_id

            sidecar = ChunkSecondaryIndex.build(
                self.system.config.secondary_specs, leaves
            )
            self.system.dfs.put(sidecar_id(chunk_id), sidecar.to_bytes())

        # Register the new region, then retire the inputs (catalog follows
        # through the metadata watch in both directions).
        self.system.metastore.put(
            f"/chunks/{chunk_id}",
            {
                "chunk_id": chunk_id,
                "server": server,
                "key_lo": min(i["key_lo"] for i in group),
                "key_hi": max(i["key_hi"] for i in group),
                "t_lo": min(i["t_lo"] for i in group),
                "t_hi": max(i["t_hi"] for i in group),
                "n_tuples": len(merged),
                "bytes": len(blob),
                "late": False,
            },
        )
        for info in group:
            self._drop_chunk(info["chunk_id"])
        report.chunks_merged += len(group)
        report.chunks_created += 1
        report.bytes_after += len(blob)
        report.merged_groups.append([i["chunk_id"] for i in group])

    # --- retention -----------------------------------------------------------------

    def expire(self, older_than_ts: float) -> CompactionReport:
        """Drop every chunk whose newest tuple predates ``older_than_ts``."""
        report = CompactionReport()
        for _key, info in list(self.system.metastore.items_prefix("/chunks/")):
            if info["t_hi"] < older_than_ts:
                self._drop_chunk(info["chunk_id"])
                report.chunks_expired += 1
                report.bytes_before += info["bytes"]
        return report

    def _drop_chunk(self, chunk_id: str) -> None:
        self.system.metastore.delete(f"/chunks/{chunk_id}")
        self.system.dfs.delete(chunk_id)
        sidecar = f"{chunk_id}.sidx"
        if self.system.dfs.exists(sidecar):
            self.system.dfs.delete(sidecar)
        # Belt and braces: the metastore watch and the DFS delete listener
        # both invalidate too, but a coordinator whose watch is detached
        # (failover window) must still never serve a dropped chunk's
        # cached answers.
        self.system.coordinator.result_cache.invalidate_chunk(chunk_id)
