"""Subquery dispatch policies (paper Section IV-C and Figure 13).

Chunk subqueries must be assigned to query servers so that load balance,
cache locality (the same chunk keeps going to the same server) and chunk
locality (prefer servers co-located with a chunk replica) hold together.
The paper's LADA builds, per query server, a preference array over the
query's subqueries: servers co-located with a subquery's chunk come first,
orders are shuffled with the chunk id as the random seed (so preferences
are consistent across queries but differ between servers), and idle servers
repeatedly bid for the pending subquery they prefer most.

All four policies (LADA plus the round-robin / hashing / shared-queue
baselines) run through the same virtual-time simulation loop: a heap of
server free-times, each pop letting that server pick (or be assigned) a
pending subquery whose real execution cost advances its free-time.  The
query's makespan is the time the last subquery finishes -- which is the
latency component Figure 13 compares.
"""

from __future__ import annotations

import copy
import heapq
import itertools
import queue as _queue
import random
from dataclasses import dataclass, field
from time import monotonic as _monotonic
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.model import SubQuery
from repro.hashing import stable_hash32
from repro.core.query_server import QueryServer, ServerDownError, SubQueryResult
from repro.obs import metrics as _obs
from repro.obs import tracing as _trace
from repro.rpc import Call, RpcError
from repro.storage import ChunkUnavailable


@dataclass
class DispatchOutcome:
    """What a dispatch run did: per-subquery results and timing."""

    results: List[Optional[SubQueryResult]]
    makespan: float
    assignments: Dict[int, int]  # subquery index -> query server id
    retried: int = 0
    #: Subqueries no server could answer: index -> reason.  A failed
    #: subquery has ``results[idx] is None``; the coordinator folds these
    #: into ``QueryResult.partial`` / ``unreadable_chunks``.
    failed: Dict[int, str] = field(default_factory=dict)


class DispatchPolicy:
    """Base: subclasses pick the next subquery for an idle server."""

    name = "base"

    def fresh(self) -> "DispatchPolicy":
        """A per-query instance of this policy.

        ``prepare()`` fills per-query state (preference arrays, static
        assignments) on the policy object itself, so concurrent query
        executions -- the scheduler runs several at once -- must each
        dispatch through their own instance.  A shallow copy suffices:
        ``prepare()`` reassigns the state attributes wholesale, while
        configuration (e.g. LADA's locality oracle) is shared read-only.
        """
        return copy.copy(self)

    def prepare(
        self, subqueries: Sequence[SubQuery], servers: Sequence[QueryServer]
    ) -> None:
        """Hook called once per query before the bidding loop."""

    def pick(
        self,
        server_slot: int,
        server: QueryServer,
        pending: "set[int]",
        subqueries: Sequence[SubQuery],
    ) -> Optional[int]:
        """Index of the pending subquery this server executes next, or None
        if this server has nothing (more) to do."""
        raise NotImplementedError

    def peek(
        self,
        server_slot: int,
        pending: "set[int]",
        subqueries: Sequence[SubQuery],
        k: int,
    ) -> List[int]:
        """Up to ``k`` pending subquery indices this server is likely to
        run next (after its current assignment) -- the prefetcher's
        lookahead into the policy's preference order.  Best-effort: a
        policy that cannot predict returns nothing (the base default).
        """
        return []

    def assign(
        self,
        idle_slots: Sequence[int],
        servers: Sequence[QueryServer],
        pending: "set[int]",
        subqueries: Sequence[SubQuery],
    ) -> List[Tuple[int, int]]:
        """Resolve one bidding wave: (slot, subquery index) pairs for the
        currently idle servers.  Default: each idle slot picks greedily in
        slot order.  At most one subquery per slot, one slot per subquery.
        """
        taken: "set[int]" = set()
        out: List[Tuple[int, int]] = []
        for slot in idle_slots:
            remaining = pending - taken
            if not remaining:
                break
            idx = self.pick(slot, servers[slot], remaining, subqueries)
            if idx is not None:
                taken.add(idx)
                out.append((slot, idx))
        return out


class RoundRobinDispatch(DispatchPolicy):
    """Static: subquery i goes to server i mod n, idleness ignored."""

    name = "round_robin"

    def prepare(self, subqueries, servers):
        self._assigned: Dict[int, List[int]] = {}
        for i in range(len(subqueries)):
            self._assigned.setdefault(i % len(servers), []).append(i)

    def pick(self, server_slot, server, pending, subqueries):
        queue = self._assigned.get(server_slot, [])
        while queue:
            idx = queue[0]
            if idx in pending:
                return idx
            queue.pop(0)
        return None

    def peek(self, server_slot, pending, subqueries, k):
        queue = self._assigned.get(server_slot, [])
        return [i for i in queue if i in pending][:k]


class HashingDispatch(DispatchPolicy):
    """Static: subqueries hash-partitioned by chunk id.

    Cache locality holds (same chunk -> same server, across queries) but
    load balance does not.
    """

    name = "hashing"

    def prepare(self, subqueries, servers):
        self._assigned: Dict[int, List[int]] = {}
        for i, sq in enumerate(subqueries):
            slot = stable_hash32(sq.chunk_id or "") % len(servers)
            self._assigned.setdefault(slot, []).append(i)

    def pick(self, server_slot, server, pending, subqueries):
        queue = self._assigned.get(server_slot, [])
        while queue:
            idx = queue[0]
            if idx in pending:
                return idx
            queue.pop(0)
        return None

    def peek(self, server_slot, pending, subqueries, k):
        queue = self._assigned.get(server_slot, [])
        return [i for i in queue if i in pending][:k]


class SharedQueueDispatch(DispatchPolicy):
    """Dynamic: idle servers take the next pending subquery in order.

    Perfect load balance, no locality of any kind.
    """

    name = "shared_queue"

    def pick(self, server_slot, server, pending, subqueries):
        if not pending:
            return None
        return min(pending)

    def peek(self, server_slot, pending, subqueries, k):
        # Any idle server takes the next pending subquery, so the queue
        # head is the best guess for everyone.
        return sorted(pending)[:k]


class LadaDispatch(DispatchPolicy):
    """The paper's locality-aware dispatch algorithm."""

    name = "lada"

    def __init__(self, chunk_locality: Callable[[str, int], bool]):
        """``chunk_locality(chunk_id, node_id)`` says whether the node holds
        a live replica of the chunk (wired to the DFS NameNode)."""
        self._chunk_locality = chunk_locality

    def prepare(self, subqueries, servers):
        # preference[slot] = subquery indices in bidding order;
        # rank[(slot, i)] = that subquery's position in slot's array.
        ranked: Dict[int, List[Tuple[int, int]]] = {
            slot: [] for slot in range(len(servers))
        }
        self._rank: Dict[Tuple[int, int], int] = {}
        for i, sq in enumerate(subqueries):
            near = [
                slot
                for slot, server in enumerate(servers)
                if sq.chunk_id is not None
                and self._chunk_locality(sq.chunk_id, server.node_id)
            ]
            far = [slot for slot in range(len(servers)) if slot not in near]
            random.Random(f"near-{sq.chunk_id}").shuffle(near)
            random.Random(f"far-{sq.chunk_id}").shuffle(far)
            for rank, slot in enumerate(near + far):
                ranked[slot].append((rank, i))
                self._rank[(slot, i)] = rank
        self._preference: Dict[int, List[int]] = {
            slot: [i for _rank, i in sorted(entries)]
            for slot, entries in ranked.items()
        }

    def pick(self, server_slot, server, pending, subqueries):
        for idx in self._preference.get(server_slot, []):
            if idx in pending:
                return idx
        return None

    def peek(self, server_slot, pending, subqueries, k):
        out = []
        for idx in self._preference.get(server_slot, []):
            if idx in pending:
                out.append(idx)
                if len(out) >= k:
                    break
        return out

    def assign(self, idle_slots, servers, pending, subqueries):
        """Resolve a bidding wave by global preference rank: the (server,
        subquery) pair with the best rank wins its bid first, so a chunk
        consistently lands on the server that prefers it most (cache
        locality survives contention between simultaneously idle servers).
        """
        pairs = sorted(
            (self._rank[(slot, idx)], slot, idx)
            for slot in idle_slots
            for idx in pending
        )
        used_slots: "set[int]" = set()
        taken: "set[int]" = set()
        out: List[Tuple[int, int]] = []
        for _rank, slot, idx in pairs:
            if slot in used_slots or idx in taken:
                continue
            used_slots.add(slot)
            taken.add(idx)
            out.append((slot, idx))
        return out


class DispatchError(RuntimeError):
    """No alive query server could execute some subquery."""


def run_dispatch(
    subqueries: Sequence[SubQuery],
    servers: Sequence[QueryServer],
    policy: DispatchPolicy,
    execute: Optional[Callable[[QueryServer, SubQuery], SubQueryResult]] = None,
) -> DispatchOutcome:
    """Execute ``subqueries`` across ``servers`` under ``policy``.

    Virtual-time loop: servers become idle at their free-time; an idle
    server picks its next subquery per the policy and its (real) execution
    cost advances the clock.  A server dying mid-execution gets its subquery
    returned to the pending set and re-dispatched (Section V's query-side
    fault tolerance); static policies fall back to any alive server for
    orphaned work.

    Per-subquery failure capture: an unreadable chunk
    (:class:`~repro.storage.ChunkUnavailable` -- every replica on a failed
    node) or an unreachable edge (:class:`~repro.rpc.RpcError` after the
    endpoint's own retries) marks just that subquery failed in
    ``outcome.failed`` instead of aborting the query; an edge failure also
    quarantines the server's slot for the rest of this run and re-routes
    the subquery to another server while any remains.
    """
    if execute is None:
        execute = lambda server, sq: server.execute(sq)  # noqa: E731
    results: List[Optional[SubQueryResult]] = [None] * len(subqueries)
    if not subqueries:
        return DispatchOutcome(results, 0.0, {})
    if not any(s.alive for s in servers):
        raise DispatchError("no alive query servers")
    policy_name = policy.name
    policy.prepare(subqueries, servers)

    pending = set(range(len(subqueries)))
    assignments: Dict[int, int] = {}
    failed: Dict[int, str] = {}
    edge_attempts: Dict[int, int] = {}
    quarantined: "set[int]" = set()
    retried = 0
    makespan = 0.0
    # Completion events of busy servers: (done_time, tiebreak, slot).
    heap: List[Tuple[float, int, int]] = []
    idle = [slot for slot, s in enumerate(servers) if s.alive]
    now = 0.0
    swept = False

    while pending or heap:
        # One bidding wave: every currently idle server bids; the policy
        # resolves contention (LADA by preference rank).
        progressed = False
        if pending and idle:
            for slot, idx in policy.assign(idle, servers, pending, subqueries):
                server = servers[slot]
                if not server.alive or idx not in pending or slot not in idle:
                    continue
                pending.discard(idx)
                idle.remove(slot)
                progressed = True
                try:
                    result = execute(server, subqueries[idx])
                except ServerDownError:
                    pending.add(idx)
                    retried += 1
                    continue
                except ChunkUnavailable as exc:
                    failed[idx] = str(exc)
                    idle.append(slot)
                    continue
                except RpcError as exc:
                    quarantined.add(slot)
                    edge_attempts[idx] = edge_attempts.get(idx, 0) + 1
                    if edge_attempts[idx] >= len(servers):
                        failed[idx] = str(exc)
                    else:
                        pending.add(idx)
                        retried += 1
                    continue
                results[idx] = result
                assignments[idx] = server.server_id
                done_at = now + result.cost
                makespan = max(makespan, done_at)
                heapq.heappush(heap, (done_at, slot, slot))
        if not pending and not heap:
            break
        if heap:
            now, _tb, slot = heapq.heappop(heap)
            if servers[slot].alive and slot not in quarantined:
                idle.append(slot)
            continue
        if progressed:
            continue
        # Work remains but no server is busy and the last wave assigned
        # nothing: static policies can strand orphans of dead servers --
        # hand the leftovers to any alive server via a shared-queue sweep.
        idle = [
            slot
            for slot, s in enumerate(servers)
            if s.alive and slot not in quarantined
        ]
        if not idle or swept:
            if quarantined:
                # Every remaining route is a broken edge, not a planning
                # bug: degrade to a partial result.
                for idx in pending:
                    failed.setdefault(idx, "no reachable query server")
                pending.clear()
                break
            raise DispatchError("subqueries remain but no server will take them")
        policy = SharedQueueDispatch()
        policy.prepare(subqueries, servers)
        swept = True

    _emit_dispatch_metrics(policy_name, len(subqueries), retried, makespan)
    _trace.set_attr("assigned_servers", len(set(assignments.values())))
    return DispatchOutcome(results, makespan, assignments, retried, failed)


def _emit_dispatch_metrics(
    policy_name: str, n_subqueries: int, retried: int, makespan: float
) -> None:
    if _obs.ENABLED:
        reg = _obs.registry()
        reg.counter("dispatch.runs", policy=policy_name).inc()
        reg.counter("dispatch.subqueries").inc(n_subqueries)
        reg.counter("dispatch.retries").inc(retried)
        reg.histogram("dispatch.makespan_sim").observe(makespan)


def run_dispatch_concurrent(
    subqueries: Sequence[SubQuery],
    servers: Sequence[QueryServer],
    policy: DispatchPolicy,
    submit: Callable[[int, SubQuery], Call],
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_timeout: Optional[Callable[[], None]] = None,
    on_retry: Optional[Callable[[], None]] = None,
    prefetch: Optional[Callable[[int, List[SubQuery]], None]] = None,
    lookahead: int = 1,
) -> DispatchOutcome:
    """Completion-driven dispatch over an asynchronous ``submit``.

    The concurrent sibling of :func:`run_dispatch`, used when the message
    plane's transport runs submissions on per-server workers: each idle
    server is assigned one subquery per the policy, ``submit(slot, sq)``
    puts it in flight, and results are merged *as completions arrive* --
    the wall-clock win of fanning subqueries out over servers.

    ``timeout`` / ``retries`` mirror the edge policy: a call that misses
    its wall-clock deadline quarantines that server's slot (its worker may
    be wedged) and the subquery is re-sent elsewhere up to ``retries``
    times before it is marked failed.  ``on_timeout`` / ``on_retry`` let
    the caller feed its per-edge ``rpc.*`` counters.

    The returned makespan is the largest per-server accumulated simulated
    cost -- the same quantity the virtual-time loop tracks, modulo wave
    alignment (assignment order here follows real completions).

    ``prefetch``, when given, is called right after each assignment with
    ``(slot, subqueries)`` -- up to ``lookahead`` still-pending subqueries
    the policy predicts that slot will run next (:meth:`DispatchPolicy.peek`)
    -- so the server can warm their chunk prefixes while it executes the
    one just submitted.  Best-effort: predictions may go to other servers.
    """
    results: List[Optional[SubQueryResult]] = [None] * len(subqueries)
    if not subqueries:
        return DispatchOutcome(results, 0.0, {})
    if not any(s.alive for s in servers):
        raise DispatchError("no alive query servers")
    policy_name = policy.name
    policy.prepare(subqueries, servers)

    pending = set(range(len(subqueries)))
    assignments: Dict[int, int] = {}
    failed: Dict[int, str] = {}
    edge_attempts: Dict[int, int] = {}
    quarantined: "set[int]" = set()
    retried = 0
    busy_sim = [0.0] * len(servers)  # per-slot accumulated simulated cost
    makespan = 0.0
    idle = [slot for slot, s in enumerate(servers) if s.alive]
    #: token -> (slot, subquery index, wall-clock deadline or None)
    outstanding: Dict[int, Tuple[int, int, Optional[float]]] = {}
    completions: "_queue.Queue[Tuple[int, Call]]" = _queue.Queue()
    tokens = itertools.count()
    swept = False

    def _give_back(slot: int) -> None:
        if servers[slot].alive and slot not in quarantined:
            idle.append(slot)

    def _edge_failure(slot: int, idx: int, reason: str) -> None:
        nonlocal retried
        quarantined.add(slot)
        edge_attempts[idx] = edge_attempts.get(idx, 0) + 1
        if edge_attempts[idx] > retries:
            failed[idx] = reason
        else:
            pending.add(idx)
            retried += 1
            if on_retry is not None:
                on_retry()

    while pending or outstanding:
        progressed = False
        if pending and idle:
            for slot, idx in policy.assign(idle, servers, pending, subqueries):
                if slot not in idle or idx not in pending:
                    continue
                if not servers[slot].alive:
                    idle.remove(slot)
                    continue
                pending.discard(idx)
                idle.remove(slot)
                progressed = True
                token = next(tokens)
                deadline = (_monotonic() + timeout) if timeout else None
                call = submit(slot, subqueries[idx])
                outstanding[token] = (slot, idx, deadline)
                call.add_done_callback(
                    lambda c, _t=token: completions.put((_t, c))
                )
                if prefetch is not None and lookahead > 0 and pending:
                    ahead = policy.peek(slot, pending, subqueries, lookahead)
                    if ahead:
                        prefetch(slot, [subqueries[i] for i in ahead])
        if not outstanding:
            if not pending:
                break
            if progressed:
                continue
            # Same stranded-orphan handling as the virtual-time loop.
            idle = [
                slot
                for slot, s in enumerate(servers)
                if s.alive and slot not in quarantined
            ]
            if not idle or swept:
                if quarantined:
                    for idx in pending:
                        failed.setdefault(idx, "no reachable query server")
                    pending.clear()
                    break
                raise DispatchError(
                    "subqueries remain but no server will take them"
                )
            policy = SharedQueueDispatch()
            policy.prepare(subqueries, servers)
            swept = True
            continue

        wait: Optional[float] = None
        if timeout:
            nearest = min(
                d for (_s, _i, d) in outstanding.values() if d is not None
            )
            wait = max(0.0, nearest - _monotonic())
        try:
            token, call = completions.get(timeout=wait)
        except _queue.Empty:
            # Deadline sweep: abandon expired calls (late completions are
            # recognised as stale by their token) and re-route their work.
            now = _monotonic()
            for token, (slot, idx, deadline) in list(outstanding.items()):
                if deadline is not None and deadline <= now:
                    del outstanding[token]
                    if on_timeout is not None:
                        on_timeout()
                    _edge_failure(slot, idx, "timed out")
            continue
        if token not in outstanding:
            continue  # stale: already abandoned by the deadline sweep
        slot, idx, _deadline = outstanding.pop(token)
        error = call.exception()
        if error is None:
            result = call.result()
            results[idx] = result
            assignments[idx] = servers[slot].server_id
            busy_sim[slot] += result.cost
            makespan = max(makespan, busy_sim[slot])
            _give_back(slot)
        elif isinstance(error, ServerDownError):
            pending.add(idx)
            retried += 1
        elif isinstance(error, ChunkUnavailable):
            failed[idx] = str(error)
            _give_back(slot)
        elif isinstance(error, RpcError):
            _edge_failure(slot, idx, str(error))
        else:
            raise error

    _emit_dispatch_metrics(policy_name, len(subqueries), retried, makespan)
    _trace.set_attr("assigned_servers", len(set(assignments.values())))
    return DispatchOutcome(results, makespan, assignments, retried, failed)
