"""Multi-query scheduler: admission control, priorities, overload shedding.

The coordinator executes one query per call; nothing in the base system
stands between "heavy traffic from millions of users" and unbounded
queueing.  The :class:`QueryScheduler` closes that gap at the coordinator
boundary:

* clients ``submit()`` queries with an optional **priority** (higher runs
  sooner) and **deadline** (max seconds the query may wait for a worker);
* a **bounded admission queue** holds at most ``queue_limit`` waiting
  queries; ``max_concurrency`` workers drain it through
  ``Coordinator.execute`` (whose chunk fan-out rides
  ``run_dispatch_concurrent`` on a concurrency-capable message plane);
* on overload the scheduler **sheds** -- excess submissions fail fast with
  :class:`OverloadShedError` -- or **degrades** -- they complete
  immediately with an empty ``partial=True``/``degraded=True`` result --
  instead of queueing forever, so admitted-query latency stays bounded by
  ``queue_limit / max_concurrency`` query times no matter the offered load;
* everything is observable: ``scheduler.admitted`` / ``.shed`` /
  ``.completed`` / ``.deadline_missed`` counters, a ``scheduler.queue_depth``
  gauge, a ``scheduler.queue_wait`` histogram and per-priority
  ``scheduler.latency{priority=p}`` histograms.

Admission decisions happen synchronously on the submitting thread, so a
full queue rejects deterministically; execution is asynchronous on the
scheduler's worker threads and each :class:`ScheduledQuery` ticket is a
future the caller can wait on.

Concurrency only helps when query execution can actually overlap: on the
threaded message plane each query server runs subqueries on its own
worker, so several in-flight queries interleave their DFS waits across
servers.  On the inline transport every call runs on the submitting
thread and shared per-server caches are unsynchronised -- the
``Waterwheel`` facade therefore clamps the worker pool to 1 there, keeping
the admission-control semantics (bounded queue, shedding, priorities)
without unsafe parallelism.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from time import monotonic as _monotonic
from time import perf_counter as _perf
from typing import Dict, List, Optional, Sequence

from repro.core.model import Query, QueryResult
from repro.obs import metrics as _obs

#: Overload policies: reject excess queries with an error, or answer them
#: immediately with an empty partial result.
OVERLOAD_POLICIES = ("shed", "degrade")


class OverloadShedError(RuntimeError):
    """The admission queue was full and the query was shed."""


class DeadlineExceededError(OverloadShedError):
    """The query waited past its deadline before a worker picked it up."""


class ScheduledQuery:
    """A submitted query's ticket: a waitable future over its result."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    SHED = "shed"
    FAILED = "failed"

    def __init__(self, query: Query, priority: int, deadline: Optional[float]):
        self.query = query
        self.priority = priority
        #: Seconds the query may wait in the admission queue (None = forever).
        self.deadline = deadline
        self.submitted_at = _monotonic()
        self.state = self.PENDING
        #: Seconds spent waiting in the queue (set when a worker dequeues
        #: or sheds the ticket).
        self.queue_wait: Optional[float] = None
        #: Wall seconds from submit to completion (set when done).
        self.latency: Optional[float] = None
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None
        self._event = threading.Event()

    # --- caller side -----------------------------------------------------------

    def done(self) -> bool:
        """True once the ticket has a result or an error."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block for the result.  Raises :class:`OverloadShedError` (or the
        execution error) when the query was shed or failed, and
        :class:`TimeoutError` when ``timeout`` elapses first."""
        if not self._event.wait(timeout):
            raise TimeoutError("query still pending")
        if self._error is not None:
            raise self._error
        return self._result

    def error(self) -> Optional[BaseException]:
        """The shed/execution error, or None (also None while pending)."""
        return self._error

    # --- scheduler side ----------------------------------------------------------

    def _complete(self, result: QueryResult) -> None:
        self.state = self.DONE
        self.latency = _monotonic() - self.submitted_at
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException, state: str = FAILED) -> None:
        self.state = state
        self.latency = _monotonic() - self.submitted_at
        self._error = error
        self._event.set()


class QueryScheduler:
    """Bounded-concurrency query executor with admission control."""

    def __init__(
        self,
        coordinator,
        *,
        max_concurrency: int = 4,
        queue_limit: int = 64,
        overload: str = "shed",
    ):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload policy {overload!r} "
                f"(expected one of {OVERLOAD_POLICIES})"
            )
        self.coordinator = coordinator
        self.max_concurrency = max_concurrency
        self.queue_limit = queue_limit
        self.overload = overload
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.deadline_missed = 0
        #: Highest queue depth ever observed (overload tests assert this
        #: never exceeds ``queue_limit``).
        self.max_queue_depth = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: Min-heap of (-priority, seq, ticket): higher priority first,
        #: FIFO within a priority.
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._running = 0
        self._idle = threading.Condition(self._lock)
        self._workers: List[threading.Thread] = []
        self._closed = False
        reg = _obs.registry()
        self._m_admitted = reg.counter("scheduler.admitted")
        self._m_shed = reg.counter("scheduler.shed")
        self._m_completed = reg.counter("scheduler.completed")
        self._m_deadline = reg.counter("scheduler.deadline_missed")
        self._m_depth = reg.gauge("scheduler.queue_depth")
        self._m_wait = reg.histogram("scheduler.queue_wait")
        self._m_latency: Dict[int, object] = {}

    # --- submission ----------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for a worker (excludes running)."""
        return len(self._heap)

    @property
    def in_flight(self) -> int:
        """Queries currently executing on a worker."""
        return self._running

    def submit(
        self,
        query: Query,
        *,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> ScheduledQuery:
        """Admit (or shed) a query; returns its ticket immediately.

        ``priority``: higher values are dequeued first (FIFO within a
        level).  ``deadline``: max seconds the query may wait in the queue
        before a worker starts it; missing it sheds the query with
        :class:`DeadlineExceededError`.

        Admission control runs synchronously: when ``queue_limit`` queries
        are already waiting, the ticket is resolved on the spot -- with
        :class:`OverloadShedError` under the ``"shed"`` policy, or with an
        empty ``partial=True`` result under ``"degrade"``.
        """
        ticket = ScheduledQuery(query, priority, deadline)
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if len(self._heap) >= self.queue_limit:
                self._shed(ticket, "admission queue full")
                return ticket
            self.admitted += 1
            heapq.heappush(
                self._heap, (-priority, next(self._seq), ticket)
            )
            depth = len(self._heap)
            self.max_queue_depth = max(self.max_queue_depth, depth)
            if _obs.ENABLED:
                self._m_admitted.inc()
                self._m_depth.set(depth)
            self._ensure_workers()
            self._not_empty.notify()
        return ticket

    def execute_many(
        self,
        queries: Sequence[Query],
        *,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> List[QueryResult]:
        """Submit a batch and wait for every result, in submission order.

        Raises the first shed/execution error encountered (shed queries
        under the ``"degrade"`` policy return normally with
        ``degraded=True`` results instead).
        """
        tickets = [self.submit(q, priority=priority) for q in queries]
        return [t.result(timeout) for t in tickets]

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no query is running;
        returns False when ``timeout`` elapses first."""
        deadline = None if timeout is None else _monotonic() + timeout
        with self._idle:
            while self._heap or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - _monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def rebind(self, coordinator) -> None:
        """Point the workers at a new coordinator (standby promotion)."""
        self.coordinator = coordinator

    def close(self) -> None:
        """Stop the workers; pending tickets are shed.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            while self._heap:
                _, _, ticket = heapq.heappop(self._heap)
                self._shed(ticket, "scheduler closed")
            self._not_empty.notify_all()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers.clear()

    # --- internals ---------------------------------------------------------------------

    def _shed(
        self,
        ticket: ScheduledQuery,
        reason: str,
        error_cls=OverloadShedError,
    ) -> None:
        """Resolve a ticket as shed (caller holds the lock)."""
        self.shed += 1
        if _obs.ENABLED:
            self._m_shed.inc()
            if error_cls is DeadlineExceededError:
                self._m_deadline.inc()
        if error_cls is DeadlineExceededError:
            self.deadline_missed += 1
        if self.overload == "degrade" and error_cls is OverloadShedError:
            # Degraded service: answer now, with nothing, marked as such.
            result = QueryResult(query_id=ticket.query.query_id)
            result.partial = True
            result.degraded = True
            ticket._complete(result)
            ticket.state = ScheduledQuery.SHED
            return
        ticket._fail(
            error_cls(f"query shed: {reason}"), state=ScheduledQuery.SHED
        )

    def _ensure_workers(self) -> None:
        """Start worker threads lazily (caller holds the lock)."""
        while len(self._workers) < self.max_concurrency:
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"query-scheduler-{len(self._workers)}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    def _latency_histogram(self, priority: int):
        hist = self._m_latency.get(priority)
        if hist is None:
            hist = _obs.registry().histogram(
                "scheduler.latency", priority=priority
            )
            self._m_latency[priority] = hist
        return hist

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._heap and not self._closed:
                    self._not_empty.wait()
                if self._closed:
                    return
                _, _, ticket = heapq.heappop(self._heap)
                now = _monotonic()
                ticket.queue_wait = now - ticket.submitted_at
                if _obs.ENABLED:
                    self._m_depth.set(len(self._heap))
                    self._m_wait.observe(ticket.queue_wait)
                if (
                    ticket.deadline is not None
                    and ticket.queue_wait > ticket.deadline
                ):
                    self._shed(
                        ticket,
                        f"waited {ticket.queue_wait:.3f}s past its "
                        f"{ticket.deadline:.3f}s deadline",
                        error_cls=DeadlineExceededError,
                    )
                    continue
                ticket.state = ScheduledQuery.RUNNING
                self._running += 1
                coordinator = self.coordinator
            started = _perf()
            try:
                result = coordinator.execute(ticket.query)
            except BaseException as exc:  # noqa: BLE001 - delivered to caller
                ticket._fail(exc)
            else:
                ticket._complete(result)
                with self._lock:
                    self.completed += 1
                    if _obs.ENABLED:
                        self._m_completed.inc()
                        self._latency_histogram(ticket.priority).observe(
                            _perf() - started
                        )
            finally:
                with self._idle:
                    self._running -= 1
                    if not self._heap and not self._running:
                        self._idle.notify_all()
