"""Adaptive key partitioning balancer (paper Section III-D).

A centralized process periodically aggregates the dispatchers' key-frequency
samples into a global histogram, computes each indexing server's expected
load under the current partition, and -- when any server deviates from the
mean by more than the rebalance threshold (20% in the paper) -- installs a
new partition whose boundaries equalize the observed frequency mass.

Install protocol (live migration without torn state):

1. **Reassign first.**  Every indexing server is handed its new interval
   over the ``balancer->indexing`` RPC edge.  Per the configured migration
   mode servers either keep their in-flight data (``"overlap"`` -- their
   *actual* data regions transiently overlap neighbours until the next
   flush, published to the metadata server for the coordinator) or flush
   displaced trees immediately (``"flush"``).
2. **Commit last.**  Only after every reassign succeeded does the shared
   partition advance (bumping the partition *epoch*) and the new
   boundaries + epoch land in the metadata server as one atomic
   ``multi_put``.  A reassign that fails mid-install -- dead server,
   injected fault surviving the edge's retries -- rolls the already
   reassigned servers back to their old intervals and aborts: dispatch
   never observes a half-installed partition.

Rebalancing *defers* (rather than half-runs) whenever it cannot proceed
safely: while paused by the supervisor during a repair, while a previous
install is still in flight, while any indexing server is quarantined or
failing health probes, or when a dispatcher's histogram cannot be fetched.
Deferral is cheap -- the trigger simply fires again next period.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence, Set

from repro.core.config import WaterwheelConfig
from repro.core.dispatcher import Dispatcher, SharedPartition
from repro.core.indexing_server import IndexingServer, ServerDownError
from repro.core.partitioning import (
    KeyPartition,
    aggregate_histograms,
    load_deviation,
    partition_loads,
)
from repro.metastore import MetadataStore
from repro.obs import metrics as _obs
from repro.obs import tracing as _trace
from repro.rpc import MessagePlane, RpcError


class PartitionBalancer:
    """Centralized load balancer over the indexing servers."""

    def __init__(
        self,
        config: WaterwheelConfig,
        shared_partition: SharedPartition,
        dispatchers: Sequence[Dispatcher],
        indexing_servers: Sequence[IndexingServer],
        metastore: MetadataStore,
        enabled: bool = True,
        *,
        plane: Optional[MessagePlane] = None,
        quarantined: Optional[Set[int]] = None,
        health: Optional[Callable[[int], bool]] = None,
    ):
        """``quarantined`` is a live set of indexing-server ids currently
        buffering to the log only (shared with the facade, read each
        trigger check); ``health`` is an optional per-server liveness
        predicate (the supervisor's detector verdict)."""
        self.config = config
        self._shared = shared_partition
        self._dispatchers = list(dispatchers)
        self._indexing_servers = list(indexing_servers)
        self._metastore = metastore
        self.enabled = enabled
        self._plane = plane if plane is not None else MessagePlane("inline")
        self._ep_dispatch = self._plane.endpoint(
            "balancer->dispatcher", self._dispatchers
        )
        self._ep_index = self._plane.endpoint(
            "balancer->indexing", self._indexing_servers
        )
        self._quarantined: Set[int] = (
            quarantined if quarantined is not None else set()
        )
        self._health = health
        #: Serializes installs; trigger checks that lose the race defer.
        self._install_lock = threading.Lock()
        #: Pause nesting depth (supervisor holds >= 1 during repairs).
        self._pause_depth = 0
        self._pause_lock = threading.Lock()
        self.rebalance_count = 0
        self.deferred_count = 0
        self.aborted_count = 0
        self.migrated_tuples = 0
        #: Why the most recent trigger check deferred (None = it didn't).
        self.last_deferral: Optional[str] = None
        reg = _obs.registry()
        self._m_rebalances = reg.counter("balancer.rebalances")
        self._m_deferred = reg.counter("balancer.deferred")
        self._m_aborted = reg.counter("balancer.aborted")
        self._m_migrated = reg.counter("balancer.migrated_tuples")
        self._m_install_wall = reg.histogram("balancer.install_wall")

    # --- supervisor integration -------------------------------------------------

    def pause(self) -> None:
        """Suspend rebalancing (nested: every pause needs a resume).

        The supervisor pauses the balancer around repairs so a recovering
        server's assignment is never moved mid-replay."""
        with self._pause_lock:
            self._pause_depth += 1

    def resume(self) -> None:
        """Lift one :meth:`pause`; rebalancing restarts when depth is 0."""
        with self._pause_lock:
            if self._pause_depth > 0:
                self._pause_depth -= 1

    @property
    def paused(self) -> bool:
        """True while at least one pause is outstanding."""
        return self._pause_depth > 0

    # --- observation ------------------------------------------------------------

    def global_histogram(self) -> List[float]:
        """Aggregated key-frequency histogram across dispatchers (RPC).

        Raises :class:`~repro.rpc.RpcError` when a dispatcher cannot be
        reached past the edge policy's retries."""
        return aggregate_histograms(
            [
                self._ep_dispatch.call(d, "sample_histogram")
                for d in range(len(self._dispatchers))
            ]
        )

    def current_deviation(self) -> float:
        """Max relative load deviation under the current partition."""
        histogram = self.global_histogram()
        if not any(histogram):
            return 0.0
        loads = partition_loads(self._shared.current, histogram)
        return load_deviation(loads)

    # --- trigger ----------------------------------------------------------------

    def _defer(self, reason: str) -> None:
        self.deferred_count += 1
        self.last_deferral = reason
        if _obs.ENABLED:
            self._m_deferred.inc()

    def _unavailable_server(self) -> Optional[int]:
        """An indexing server id that must not receive a reassign, if any.

        A repartition hands *every* server a new interval, so one
        quarantined or unhealthy server defers the whole install -- moving
        its boundaries while its replay is pending could strand logged
        tuples outside the interval their log partition maps to."""
        for server_id in range(len(self._indexing_servers)):
            if server_id in self._quarantined:
                return server_id
            if self._health is not None and not self._health(server_id):
                return server_id
        return None

    def maybe_rebalance(self) -> Optional[KeyPartition]:
        """Check the trigger and repartition if needed.

        Returns the new partition when one was installed, else None (no
        skew, nothing sampled, or the check deferred/aborted -- see
        ``last_deferral`` / ``aborted_count``).
        """
        if not self.enabled:
            return None
        self.last_deferral = None
        if self.paused:
            self._defer("paused")
            return None
        unavailable = self._unavailable_server()
        if unavailable is not None:
            self._defer(f"server {unavailable} unavailable")
            return None
        try:
            histogram = self.global_histogram()
        except (RpcError, ServerDownError):
            self._defer("histogram unavailable")
            return None
        if not any(histogram):
            return None
        current = self._shared.current
        if load_deviation(partition_loads(current, histogram)) <= (
            self.config.rebalance_threshold
        ):
            return None
        candidate = KeyPartition.from_frequencies(
            self.config.key_lo,
            self.config.key_hi,
            len(self._indexing_servers),
            histogram,
        )
        if candidate == current:
            return None
        if not self._install_lock.acquire(blocking=False):
            self._defer("install in progress")
            return None
        try:
            installed = self._install(candidate)
        finally:
            self._install_lock.release()
        return candidate if installed else None

    # --- install ----------------------------------------------------------------

    def _install(self, partition: KeyPartition) -> bool:
        """Reassign-first / commit-last; returns False on an abort."""
        n_servers = len(self._indexing_servers)
        new_intervals = partition.padded_intervals(n_servers)
        old_intervals = self._shared.current.padded_intervals(n_servers)
        migration = self.config.rebalance_migration
        started = time.perf_counter()
        with _trace.span("rebalance", servers=n_servers) as sp:
            migrated = 0
            for server_id in range(n_servers):
                try:
                    migrated += self._ep_index.call(
                        server_id, "reassign",
                        new_intervals[server_id], migration,
                    )
                except (RpcError, ServerDownError):
                    self._rollback(server_id, old_intervals)
                    self.aborted_count += 1
                    if _obs.ENABLED:
                        self._m_aborted.inc()
                    if sp is not None:
                        sp.attrs["aborted_at"] = server_id
                    return False
            epoch = self._shared.update(partition)
            self._metastore.multi_put(
                [
                    ("/partition/boundaries", list(partition.boundaries)),
                    ("/partition/epoch", epoch),
                ]
            )
            for d in range(len(self._dispatchers)):
                try:
                    self._ep_dispatch.call(d, "rotate_sample_window")
                except (RpcError, ServerDownError):
                    # Best effort: a stale window means at worst one extra
                    # (idempotent) rebalance next period.
                    pass
            self.rebalance_count += 1
            self.migrated_tuples += migrated
            if _obs.ENABLED:
                self._m_rebalances.inc()
                if migrated:
                    self._m_migrated.inc(migrated)
                self._m_install_wall.observe(time.perf_counter() - started)
            if sp is not None:
                sp.attrs["epoch"] = epoch
                sp.attrs["migrated"] = migrated
        return True

    def _rollback(self, failed_at: int, old_intervals: List) -> None:
        """Return servers ``[0, failed_at)`` to their pre-install intervals.

        Best effort: a server that dies before its rollback reaches it
        re-syncs its assignment from the committed metastore boundaries on
        recovery, so a lost rollback cannot strand a divergent interval."""
        for server_id in range(failed_at):
            try:
                self._ep_index.call(
                    server_id, "reassign", old_intervals[server_id], "overlap"
                )
            except (RpcError, ServerDownError):
                pass
