"""Adaptive key partitioning balancer (paper Section III-D).

A centralized process periodically aggregates the dispatchers' key-frequency
samples into a global histogram, computes each indexing server's expected
load under the current partition, and -- when any server deviates from the
mean by more than the rebalance threshold (20% in the paper) -- installs a
new partition whose boundaries equalize the observed frequency mass.

The new partition is persisted to the metadata server and pushed to the
indexing servers via :meth:`IndexingServer.reassign`; servers keep their
in-flight data, so data regions may transiently overlap until the next
flush (handled by the coordinator through actual-region metadata).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.config import WaterwheelConfig
from repro.core.dispatcher import Dispatcher, SharedPartition
from repro.core.indexing_server import IndexingServer
from repro.core.partitioning import (
    KeyPartition,
    aggregate_histograms,
    load_deviation,
    partition_loads,
)
from repro.metastore import MetadataStore


class PartitionBalancer:
    """Centralized load balancer over the indexing servers."""

    def __init__(
        self,
        config: WaterwheelConfig,
        shared_partition: SharedPartition,
        dispatchers: Sequence[Dispatcher],
        indexing_servers: Sequence[IndexingServer],
        metastore: MetadataStore,
        enabled: bool = True,
    ):
        self.config = config
        self._shared = shared_partition
        self._dispatchers = list(dispatchers)
        self._indexing_servers = list(indexing_servers)
        self._metastore = metastore
        self.enabled = enabled
        self.rebalance_count = 0

    def global_histogram(self) -> List[float]:
        """Aggregated key-frequency histogram across dispatchers."""
        return aggregate_histograms(
            [d.sampler.histogram() for d in self._dispatchers]
        )

    def current_deviation(self) -> float:
        """Max relative load deviation under the current partition."""
        histogram = self.global_histogram()
        if not any(histogram):
            return 0.0
        loads = partition_loads(self._shared.current, histogram)
        return load_deviation(loads)

    def maybe_rebalance(self) -> Optional[KeyPartition]:
        """Check the trigger and repartition if needed.

        Returns the new partition when one was installed, else None.
        """
        if not self.enabled:
            return None
        histogram = self.global_histogram()
        if not any(histogram):
            return None
        current = self._shared.current
        if load_deviation(partition_loads(current, histogram)) <= (
            self.config.rebalance_threshold
        ):
            return None
        candidate = KeyPartition.from_frequencies(
            self.config.key_lo,
            self.config.key_hi,
            len(self._indexing_servers),
            histogram,
        )
        if candidate == current:
            return None
        self._install(candidate)
        return candidate

    def _install(self, partition: KeyPartition) -> None:
        self._shared.update(partition)
        for server_id, interval in enumerate(partition.intervals()):
            self._indexing_servers[server_id].reassign(interval)
        self._metastore.put("/partition/boundaries", list(partition.boundaries))
        for dispatcher in self._dispatchers:
            dispatcher.rotate_sample_window()
        self.rebalance_count += 1
