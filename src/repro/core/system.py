"""The Waterwheel facade: wires every component into one runnable system.

This is the public entry point::

    from repro import Waterwheel, small_config

    ww = Waterwheel(small_config())
    ww.insert_record(key=42, ts=0.5, payload="hello")
    result = ww.query(key_lo=0, key_hi=100, t_lo=0.0, t_hi=1.0)

Everything runs in one process: dispatchers, indexing servers, query
servers, the metadata store, the durable input log and the simulated DFS.
The data path is real (tuples are routed, indexed, serialized into binary
chunks, replicated, decoded and filtered); time-like metrics (query
latency) are simulated seconds from the cost model.
"""

from __future__ import annotations

import itertools
import os
import time as _time
import weakref
from typing import List, Optional, Union

from repro.core.balancer import PartitionBalancer
from repro.core.config import WaterwheelConfig
from repro.core.coordinator import QueryCoordinator
from repro.core.dispatch import DispatchPolicy, LadaDispatch
from repro.core.dispatcher import Dispatcher, SharedPartition
from repro.core.flush import FlushExecutor
from repro.core.indexing_server import IndexingServer, ServerDownError
from repro.core.model import DataTuple, KeyInterval, Predicate, Query, QueryResult, TimeInterval
from repro.core.partitioning import KeyPartition
from repro.core.query_server import QueryServer
from repro.core.scheduler import QueryScheduler, ScheduledQuery
from repro.messaging import DurableLog
from repro.metastore import MetadataStore
from repro.obs import metrics as _obs
from repro.obs import tracing as _tracing
from repro.rpc import FaultInjector, MessagePlane, Transport
from repro.simulation import Cluster
from repro.storage import ChunkWriteError, SimulatedDFS

_TOPIC = "tuples"

#: Legacy default for inserts between balancer trigger checks; the live
#: value is ``WaterwheelConfig.rebalance_check_every``.
_BALANCE_CHECK_EVERY = 10_000


class Waterwheel:
    """A complete single-process Waterwheel deployment."""

    def __init__(
        self,
        config: Optional[WaterwheelConfig] = None,
        dispatch_policy: Optional[DispatchPolicy] = None,
        adaptive_partitioning: bool = True,
        transport: Union[str, Transport, None] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        """``transport`` selects the message plane's transport: ``"inline"``
        (default; deterministic direct calls) or ``"threaded"`` (per-server
        workers; chunk subqueries fan out concurrently).  When None, the
        ``REPRO_TRANSPORT`` environment variable decides (CI runs the whole
        suite under ``REPRO_TRANSPORT=threaded``).  ``fault_injector`` (also
        reachable as ``self.faults``) can delay/drop/fail any edge."""
        self.config = config or WaterwheelConfig()
        cfg = self.config

        if transport is None:
            transport = os.environ.get("REPRO_TRANSPORT", "inline")
        self.plane = MessagePlane(transport, fault_injector)
        self.faults = self.plane.faults
        # Worker threads (threaded transport only) die with the system even
        # when close() is never called explicitly.
        self._finalizer = weakref.finalize(self, self.plane.close)

        self.cluster = Cluster(cfg.n_nodes, seed=cfg.seed)
        self.metastore = MetadataStore(journal_path=cfg.metastore_journal)
        self.dfs = SimulatedDFS(
            self.cluster, cfg.costs, cfg.replication,
            spill_dir=cfg.dfs_spill_dir,
            read_sleep=cfg.dfs_read_sleep,
            write_sleep=cfg.dfs_write_sleep,
        )
        self.log = DurableLog()
        self.log.create_topic(_TOPIC, cfg.n_indexing_servers)

        partition = KeyPartition.uniform(
            cfg.key_lo, cfg.key_hi, cfg.n_indexing_servers
        )
        self.shared_partition = SharedPartition(partition)
        self.metastore.multi_put(
            [
                ("/partition/boundaries", list(partition.boundaries)),
                ("/partition/epoch", self.shared_partition.epoch),
            ]
        )

        indexing_placement = self.cluster.place_round_robin(
            "indexing", cfg.n_indexing_servers
        )
        assigned = partition.padded_intervals(cfg.n_indexing_servers)
        # One executor for the whole deployment: the in-flight byte cap
        # bounds total sealed memory, and the single worker preserves
        # per-server commit order.  None in sync mode -- servers then
        # flush inline on the ingest thread, exactly the seed behaviour.
        self.flush_executor: Optional[FlushExecutor] = (
            FlushExecutor(cfg.flush_inflight_bytes)
            if cfg.flush_mode == "async"
            else None
        )
        self.indexing_servers: List[IndexingServer] = [
            IndexingServer(
                server_id,
                indexing_placement[server_id],
                cfg,
                self.dfs,
                self.metastore,
                assigned[server_id],
                flush_executor=self.flush_executor,
            )
            for server_id in range(cfg.n_indexing_servers)
        ]

        query_placement = self.cluster.place_round_robin(
            "query", cfg.n_query_servers
        )
        self.query_servers: List[QueryServer] = [
            QueryServer(
                server_id, query_placement[server_id], cfg, self.dfs,
                plane=self.plane,
            )
            for server_id in range(cfg.n_query_servers)
        ]

        self.cluster.place_round_robin("dispatcher", cfg.n_dispatchers)
        self.dispatchers: List[Dispatcher] = [
            Dispatcher(d, cfg, self.shared_partition, self.log, _TOPIC)
            for d in range(cfg.n_dispatchers)
        ]
        self._dispatcher_rr = itertools.cycle(range(cfg.n_dispatchers))

        #: Indexing servers whose key interval is quarantined: their tuples
        #: are appended to the durable log (durable, hence acknowledged)
        #: but not delivered; recovery replays them from the checkpoint.
        #: Shared (live) with the balancer, which defers rebalances while
        #: any server sits in it.
        self._quarantined: set = set()
        self.balancer = PartitionBalancer(
            cfg,
            self.shared_partition,
            self.dispatchers,
            self.indexing_servers,
            self.metastore,
            enabled=adaptive_partitioning,
            plane=self.plane,
            quarantined=self._quarantined,
            health=self._indexing_healthy,
        )

        if dispatch_policy is None:
            dispatch_policy = LadaDispatch(self.dfs.has_local_replica)
        self.coordinator = QueryCoordinator(
            cfg,
            self.metastore,
            self.indexing_servers,
            self.query_servers,
            dispatch_policy,
            plane=self.plane,
        )
        #: Lazily-built multi-query scheduler (see :meth:`scheduler`).
        self._scheduler = None
        self._wire_result_cache_invalidation()

        # Ingest-path endpoints: the facade talks to dispatchers, and the
        # dispatch decision is delivered to indexing servers, through the
        # message plane (control-plane calls -- kill/recover/balance --
        # stay direct).
        self._ep_dispatch = self.plane.endpoint(
            "waterwheel->dispatcher", self.dispatchers
        )
        self._ep_index = self.plane.endpoint(
            "dispatcher->indexing", self.indexing_servers
        )

        self.tuples_inserted = 0
        self._since_balance_check = 0
        #: The optional supervision loop (see :meth:`supervise`).
        self.supervisor = None
        reg = _obs.registry()
        self._m_inserted = reg.counter("ingest.inserted")
        self._m_insert_wall = reg.histogram("ingest.insert_wall_sampled")
        self._m_batches = reg.counter("ingest.batches")
        self._m_batch_size = reg.histogram(
            "ingest.batch_size", scale=1.0, unit="tuples"
        )
        self._m_quarantined = reg.counter("dispatch.quarantined")
        self._m_stale_epoch = reg.counter("dispatch.stale_epoch")

    # --- ingestion ---------------------------------------------------------------

    def _indexing_healthy(self, server_id: int) -> bool:
        """Balancer health predicate: False while the supervisor's failure
        detector has an outstanding verdict against the server (rebalances
        defer rather than hand a new interval to a suspect target)."""
        if self.supervisor is None:
            return True
        try:
            verdict = self.supervisor.detector.health("indexing", server_id)
        except ValueError:  # no watch registered for indexing servers
            return True
        return verdict.value == "alive"

    def insert(self, t: DataTuple) -> Optional[str]:
        """Ingest one tuple end-to-end; returns a chunk id on flush."""
        # End-to-end wall latency is sampled 1-in-64 so enabling metrics
        # stays within the <5% ingest-throughput budget.
        sampled = _obs.ENABLED and (self.tuples_inserted & 63) == 0
        started = _time.perf_counter() if sampled else 0.0
        epoch0 = self.shared_partition.epoch
        server_id, offset = self._ep_dispatch.call(
            next(self._dispatcher_rr), "dispatch", t
        )
        # The tuple is durable in the log the moment dispatch returns; a
        # dead indexing server quarantines its key interval instead of
        # raising -- the buffered (= logged, undelivered) suffix is drained
        # by the recovery replay, so acknowledged tuples are never lost.
        if self._quarantined and server_id in self._quarantined:
            chunk_id = None
            if _obs.ENABLED:
                self._m_quarantined.inc()
        else:
            try:
                chunk_id = self._ep_index.call(server_id, "ingest", t, offset)
            except ServerDownError:
                self._quarantine(server_id)
                chunk_id = None
        self.tuples_inserted += 1
        if _obs.ENABLED:
            self._m_inserted.inc()
            if sampled:
                self._m_insert_wall.observe(_time.perf_counter() - started)
            # The partition epoch advanced between routing and delivery (a
            # concurrent rebalance): the tuple still goes to the server
            # whose log partition holds it -- replay correctness demands
            # log-partition correspondence -- it is just counted.
            if self.shared_partition.epoch != epoch0:
                self._m_stale_epoch.inc()
        self._since_balance_check += 1
        if self._since_balance_check >= self.config.rebalance_check_every:
            self._since_balance_check = 0
            self.balancer.maybe_rebalance()
        return chunk_id

    def insert_record(self, key: int, ts: float, payload=None, size: int = None) -> Optional[str]:
        """Convenience wrapper building the :class:`DataTuple` for you."""
        if size is None:
            size = self.config.tuple_size
        return self.insert(DataTuple(key, ts, payload, size))

    def insert_many(self, tuples) -> int:
        """Bulk ingest via the one-tuple path; returns the number of main
        chunk flushes triggered.  This is the looped reference path --
        :meth:`insert_batch` produces equivalent state at a fraction of the
        per-tuple overhead.
        """
        flushes = 0
        for t in tuples:
            if self.insert(t) is not None:
                flushes += 1
        return flushes

    def insert_batch(self, tuples) -> List[str]:
        """Batched ingest fast path; returns the chunk ids flushed.

        Equivalent to calling :meth:`insert` on each tuple in order -- same
        routing, same durable-log contents and offsets, same late-buffer
        classification, same flush points, so recovery and query results
        are identical (enforced by a property test) -- but the whole batch
        is routed with a single shared-partition read, appended to each
        server's log partition in one ``append_batch``, and handed to each
        indexing server as a run that :meth:`TemplateBTree.insert_run`
        walks with one leaf-to-leaf cursor.  Flush checks, late-buffer
        routing, skew-detector sampling and balancer triggers all run at
        per-batch granularity.
        """
        batch = tuples if isinstance(tuples, list) else list(tuples)
        n = len(batch)
        if n == 0:
            return []
        chunk_ids: List[str] = []
        # Split at balance-check boundaries so the balancer fires at the
        # exact tuple counts the per-tuple path would have fired at --
        # routing after a mid-batch repartition stays identical.
        check_every = self.config.rebalance_check_every
        start = 0
        while start < n:
            take = min(n - start, check_every - self._since_balance_check)
            sub = batch if take == n else batch[start : start + take]
            chunk_ids.extend(self._ingest_batch(sub))
            start += take
            self._since_balance_check += take
            if self._since_balance_check >= check_every:
                self._since_balance_check = 0
                self.balancer.maybe_rebalance()
        self.tuples_inserted += n
        if _obs.ENABLED:
            self._m_inserted.inc(n)
            self._m_batches.inc()
            self._m_batch_size.observe(n)
        return chunk_ids

    def _ingest_batch(self, batch: List[DataTuple]) -> List[str]:
        """Route, log, sample and index one balance-window-aligned batch."""
        n_disp = len(self.dispatchers)
        rr0 = next(self._dispatcher_rr)
        epoch0 = self.shared_partition.epoch
        per_server = self._ep_dispatch.call(rr0, "route_batch", batch)
        # The per-tuple path hands tuple i to dispatcher (rr0 + i) % n_disp;
        # give each dispatcher its round-robin slice so every frequency
        # sampler ends in the identical state.
        if n_disp == 1:
            self._ep_dispatch.call(rr0, "observe_batch", batch)
        else:
            # The cycle is periodic, so advancing (n - 1) % n_disp steps
            # leaves it exactly where n - 1 per-tuple next() calls would.
            for _ in range((len(batch) - 1) % n_disp):
                next(self._dispatcher_rr)
            for d in range(n_disp):
                self._ep_dispatch.call(
                    (rr0 + d) % n_disp, "observe_batch", batch[d::n_disp]
                )
        chunk_ids: List[str] = []
        flush_error: Optional[ChunkWriteError] = None
        for server_id in sorted(per_server):
            run, first_offset = per_server[server_id]
            if self._quarantined and server_id in self._quarantined:
                if _obs.ENABLED:
                    self._m_quarantined.inc(len(run))
                continue
            try:
                chunk_ids.extend(
                    self._ep_index.call(
                        server_id, "ingest_run", run, first_offset
                    )
                )
            except ServerDownError:
                self._quarantine(server_id)
                if _obs.ENABLED:
                    self._m_quarantined.inc(len(run))
            except ChunkWriteError as exc:
                # The run was delivered and is retained in memory (see
                # IndexingServer.ingest_run); only a chunk write failed.
                # The other servers' runs are already durable in the log,
                # so deliver them too, then surface the error.
                flush_error = exc
        # A concurrent rebalance advanced the epoch mid-batch: deliveries
        # still follow the routing (= log-partition) decision, counted only.
        if _obs.ENABLED and self.shared_partition.epoch != epoch0:
            self._m_stale_epoch.inc()
        if flush_error is not None:
            raise flush_error
        return chunk_ids

    def compact_log(self) -> int:
        """Truncate each durable-log partition below its flush checkpoint.

        Everything before a checkpoint is already durable in chunks
        (Section V), so retention only needs the unflushed suffix.  Returns
        the number of records dropped across all partitions.

        Partitions whose indexing server is currently failed (or
        quarantined) are skipped: the checkpoint is the *only* durable
        record of where that server's pending replay must start, and its
        in-memory suffix exists nowhere but the log -- truncating while a
        recovery is pending could race the replay and silently lose
        replayable tuples (the conservation invariant ``verify_system``
        audits).  They compact on the next call after recovery.
        """
        dropped = 0
        for server in self.indexing_servers:
            if not server.alive or server.server_id in self._quarantined:
                continue
            checkpoint = self.metastore.get(
                f"/indexing/{server.server_id}/offset", 0
            )
            dropped += self.log.truncate(_TOPIC, server.server_id, checkpoint)
        return dropped

    def flush_all(self) -> List[str]:
        """Force-flush every indexing server (tests / shutdown).

        In async flush mode this also drains the background pipeline, so
        on return every chunk id in the result is committed and globally
        readable -- same postcondition as sync mode.
        """
        out: List[str] = []
        for server in self.indexing_servers:
            if server.alive:
                out.extend(self._ep_index.call(server.server_id, "flush_all"))
        self.drain_flushes()
        return out

    def drain_flushes(self, timeout: Optional[float] = None) -> bool:
        """Wait for the background flush pipeline to empty (async mode).

        Returns True once nothing is queued or executing (trivially, in
        sync mode), False on timeout.  Tasks that *failed* are not waited
        for -- they stay sealed on their servers until
        :meth:`retry_failed_flushes` or a crash cancels them.
        """
        if self.flush_executor is None:
            return True
        ok = self.flush_executor.drain(timeout)
        for server in self.indexing_servers:
            if server.alive:
                server.finish_flushes()
        return ok

    def retry_failed_flushes(self) -> int:
        """Resubmit sealed trees whose background write failed; returns
        the number requeued.  The supervisor calls this every poll so a
        transient DFS outage self-heals once it lifts."""
        requeued = 0
        for server in self.indexing_servers:
            requeued += server.retry_failed_flushes()
        return requeued

    def bulk_load(self, records) -> List[str]:
        """Backfill historical records straight into chunks.

        Bypasses the dispatcher/log path entirely (the batch is already
        durable at its source): records are routed by the current key
        partition, split per server into chunk-sized time-contiguous
        batches, and written as regular data regions.  Returns the chunk
        ids created.  Use :meth:`insert` for live streams -- bulk-loaded
        data is never replayable from the durable log.
        """
        per_server: dict = {}
        for t in records:
            server_id = self.shared_partition.current.server_for(t.key)
            per_server.setdefault(server_id, []).append(t)
        chunk_ids: List[str] = []
        per_chunk = self.config.tuples_per_chunk
        for server_id, batch in sorted(per_server.items()):
            batch.sort(key=lambda t: t.ts)  # time-contiguous regions
            for start in range(0, len(batch), per_chunk):
                chunk_id = self._ep_index.call(
                    server_id, "bulk_load_chunk", batch[start : start + per_chunk]
                )
                if chunk_id is not None:
                    chunk_ids.append(chunk_id)
        return chunk_ids

    # --- queries --------------------------------------------------------------------

    def query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float,
        t_hi: float,
        predicate: Optional[Predicate] = None,
        attr_equals: Optional[dict] = None,
        attr_ranges: Optional[dict] = None,
    ) -> QueryResult:
        """Temporal range query: keys in [key_lo, key_hi] (inclusive),
        timestamps in [t_lo, t_hi].

        ``attr_equals`` adds equality predicates on payload attributes; when
        the deployment configures ``secondary_specs`` for those attributes,
        the bitmap/bloom sidecar indexes prune leaf reads (Section VIII's
        future-work secondary indexes).  ``attr_ranges`` adds inclusive
        (lo, hi) range predicates on numeric attributes, pruned by the
        sidecars' zone maps.
        """
        q = Query(
            keys=KeyInterval.closed(key_lo, key_hi),
            times=TimeInterval(t_lo, t_hi),
            predicate=predicate,
            attr_equals=attr_equals,
            attr_ranges=attr_ranges,
        )
        return self.coordinator.execute(q)

    def explain(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float,
        t_hi: float,
        attr_equals: Optional[dict] = None,
        attr_ranges: Optional[dict] = None,
    ) -> dict:
        """The decomposition plan the coordinator would run (no execution)."""
        q = Query(
            keys=KeyInterval.closed(key_lo, key_hi),
            times=TimeInterval(t_lo, t_hi),
            attr_equals=attr_equals,
            attr_ranges=attr_ranges,
        )
        return self.coordinator.explain(q)

    # --- multi-query scheduling ----------------------------------------------------------

    def _wire_result_cache_invalidation(self) -> None:
        """Point DFS invalidation events at the current coordinator's
        result cache.  The listener resolves ``self.coordinator`` at call
        time so a promoted standby's cache is the one invalidated."""
        self.dfs.add_invalidation_listener(
            lambda chunk_id: self.coordinator.result_cache.invalidate_chunk(
                chunk_id
            )
        )

    def scheduler(self, **overrides) -> QueryScheduler:
        """The deployment's :class:`QueryScheduler`, built on first use.

        Keyword overrides (``max_concurrency``, ``queue_limit``,
        ``overload``) beat the config knobs but only apply on the call
        that builds the scheduler.  On transports that cannot execute
        queries concurrently (inline), the worker pool is clamped to 1:
        admission control still applies, execution is serial.
        """
        if self._scheduler is None:
            max_concurrency = overrides.pop(
                "max_concurrency", self.config.scheduler_max_concurrency
            )
            if not self.plane.concurrent:
                # Per-server LRU caches are unsynchronised; only the
                # threaded transport serialises access per server.
                max_concurrency = 1
            self._scheduler = QueryScheduler(
                self.coordinator,
                max_concurrency=max_concurrency,
                queue_limit=overrides.pop(
                    "queue_limit", self.config.scheduler_queue_limit
                ),
                overload=overrides.pop(
                    "overload", self.config.scheduler_overload
                ),
                **overrides,
            )
        return self._scheduler

    def submit(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float,
        t_hi: float,
        predicate: Optional[Predicate] = None,
        attr_equals: Optional[dict] = None,
        attr_ranges: Optional[dict] = None,
        *,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> ScheduledQuery:
        """Submit a query through the scheduler; returns its ticket.

        Same query surface as :meth:`query` plus ``priority`` (higher runs
        sooner) and ``deadline`` (max seconds in the admission queue).
        Call ``.result()`` on the ticket to wait; a shed query raises
        :class:`~repro.core.scheduler.OverloadShedError` there.
        """
        q = Query(
            keys=KeyInterval.closed(key_lo, key_hi),
            times=TimeInterval(t_lo, t_hi),
            predicate=predicate,
            attr_equals=attr_equals,
            attr_ranges=attr_ranges,
        )
        return self.scheduler().submit(q, priority=priority, deadline=deadline)

    def execute_many(
        self, queries, *, priority: int = 0, timeout: Optional[float] = None
    ) -> List[QueryResult]:
        """Run a batch of :class:`Query` objects through the scheduler and
        wait for all results, in submission order."""
        return self.scheduler().execute_many(
            queries, priority=priority, timeout=timeout
        )

    # --- failure injection & recovery (Section V) --------------------------------------

    def _check_server_id(self, server_id: int, servers, kind: str) -> None:
        """Failure-injection ids must name a real server -- a typo must not
        silently wrap around (negative indexing) to some innocent victim."""
        if not isinstance(server_id, int) or isinstance(server_id, bool):
            raise ValueError(f"{kind} server id must be an int, got {server_id!r}")
        if not 0 <= server_id < len(servers):
            raise ValueError(
                f"unknown {kind} server {server_id} "
                f"(valid: 0..{len(servers) - 1})"
            )

    def _quarantine(self, server_id: int) -> None:
        """Stop delivering to a dead indexing server; its tuples keep
        accumulating (durably) in its log partition until recovery."""
        self._quarantined.add(server_id)

    @property
    def quarantined_servers(self) -> "set[int]":
        """Indexing servers currently buffering to the log only."""
        return set(self._quarantined)

    def kill_indexing_server(self, server_id: int) -> None:
        """Crash an indexing server (volatile state lost).  Idempotent on
        an already-dead server; unknown ids raise :class:`ValueError`."""
        self._check_server_id(server_id, self.indexing_servers, "indexing")
        self.indexing_servers[server_id].fail()
        self._quarantine(server_id)

    def recover_indexing_server(self, server_id: int) -> int:
        """Replays the durable log; returns tuples replayed.

        A no-op (returning 0) on an alive server -- replaying on top of
        live state would duplicate tuples.  Unknown ids raise
        :class:`ValueError`.  Lifts the dispatcher quarantine: the replay
        drains every tuple buffered in the log while the server was down.
        """
        self._check_server_id(server_id, self.indexing_servers, "indexing")
        replayed = self.indexing_servers[server_id].recover(self.log, _TOPIC)
        self._quarantined.discard(server_id)
        return replayed

    def kill_query_server(self, server_id: int) -> None:
        """Crash a query server (cache lost).  Idempotent; unknown ids
        raise :class:`ValueError`."""
        self._check_server_id(server_id, self.query_servers, "query")
        self.query_servers[server_id].fail()

    def recover_query_server(self, server_id: int) -> None:
        """Bring a query server back (cold cache).  No-op on an alive
        server; unknown ids raise :class:`ValueError`."""
        self._check_server_id(server_id, self.query_servers, "query")
        self.query_servers[server_id].recover()

    def kill_coordinator(self) -> None:
        """Crash the coordinator: queries raise until a standby takes over
        (:meth:`promote_coordinator` -- the supervisor drives this
        automatically).  Idempotent."""
        self.coordinator.fail()

    def promote_coordinator(self) -> QueryCoordinator:
        """Promote a standby coordinator: a fresh instance rebuilds its
        R-tree catalog from the metastore's persisted chunk regions
        (Section V's coordinator recovery).  Returns the new coordinator.
        No-op when the current coordinator is alive."""
        if self.coordinator.alive:
            return self.coordinator
        policy = self.coordinator.policy
        self.coordinator = QueryCoordinator(
            self.config,
            self.metastore,
            self.indexing_servers,
            self.query_servers,
            policy,
            plane=self.plane,
        )
        if self.supervisor is not None:
            self.supervisor.rebind_coordinator()
        if self._scheduler is not None:
            self._scheduler.rebind(self.coordinator)
        return self.coordinator

    def crash_coordinator(self) -> None:
        """Drop the coordinator; a standby takes over from the metadata
        store (running queries would be cancelled and re-issued)."""
        self.kill_coordinator()
        self.promote_coordinator()

    def supervise(self, **kwargs) -> "Supervisor":
        """Attach (and return) a :class:`~repro.supervision.Supervisor`
        closing the detect -> recover -> verify loop over this deployment.
        Heartbeats are poll-driven (``supervisor.poll()`` or
        ``supervisor.start(interval)``) -- nothing touches the ingest or
        query hot path.  Idempotent: returns the existing supervisor."""
        if self.supervisor is None:
            from repro.supervision import Supervisor

            self.supervisor = Supervisor(self, **kwargs)
        return self.supervisor

    def close(self) -> None:
        """Release message-plane resources (threaded-transport workers).

        Idempotent; also runs automatically when the system is garbage
        collected.  The inline transport holds nothing, so inline systems
        never need this.
        """
        if self.supervisor is not None:
            self.supervisor.stop()
        if self._scheduler is not None:
            self._scheduler.close()
        if self.flush_executor is not None:
            # Bounded: anything still uncommitted after the grace period
            # stays in the durable log, exactly like a crash.
            self.flush_executor.drain(timeout=5.0)
            self.flush_executor.close()
        self.plane.close()

    # --- observability --------------------------------------------------------------------

    @staticmethod
    def enable_observability(metrics_on: bool = True, tracing_on: bool = True) -> None:
        """Turn on the process-wide metrics registry and/or query tracing.

        Both facilities are module-global (one registry per process); see
        ``docs/OBSERVABILITY.md``.  Use :meth:`disable_observability` to
        return to the zero-overhead default.
        """
        _obs.set_enabled(metrics_on)
        _tracing.set_enabled(tracing_on)

    @staticmethod
    def disable_observability() -> None:
        """Turn both metrics and tracing off (values are retained)."""
        _obs.set_enabled(False)
        _tracing.set_enabled(False)

    def metrics(self, include_zero: bool = False) -> dict:
        """Snapshot of the process-wide metrics registry (JSON-friendly).

        Empty until :meth:`enable_observability` (or ``repro.obs.enable``)
        has been called and traffic has flowed.
        """
        return _obs.registry().snapshot(include_zero=include_zero)

    def last_trace(self):
        """The span tree of the most recent traced query, or None.

        Populated by :meth:`query` while tracing is enabled; render it with
        ``.render()`` or serialize with ``.as_dict()``.
        """
        return self.coordinator.last_trace

    # --- introspection --------------------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        """Registered data chunks (excludes secondary-index sidecars)."""
        return len(self.metastore.list_prefix("/chunks/"))

    @property
    def in_memory_tuples(self) -> int:
        """Unflushed tuples across alive indexing servers."""
        return sum(s.in_memory_tuples for s in self.indexing_servers if s.alive)
