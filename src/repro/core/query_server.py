"""Query servers: chunk subquery execution with an LRU cache.

A query server executes subqueries against flushed chunks (Section IV-B).
Reading from the DFS dominates subquery cost, so frequently used data stays
in a bounded LRU cache whose units are the chunk *prefix* (header +
directory + temporal sketches -- the on-disk analogue of the template) and
individual leaf blocks, mirroring the paper's "template or leaf node as the
basic caching unit".

Execution is real (bytes decoded, tuples filtered); the returned cost is
simulated seconds computed from the cost model: DFS accesses for cache
misses plus CPU proportional to tuples examined.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from typing import Optional

from repro.core.config import WaterwheelConfig
from repro.core.model import DataTuple, SubQuery
from repro.obs import metrics as _obs
from repro.obs import tracing as _trace
from repro.rpc import MessagePlane, RpcError
from repro.storage import ChunkReader, SimulatedDFS, coalesce_entries

#: Wall-clock bound on waiting for a pipelined span fetch when the DFS
#: edge has no explicit timeout: a submit dropped in flight (fault
#: injection) would otherwise never complete.  Generous -- a real span
#: read is milliseconds; expiry falls back to a synchronous ranged read
#: that applies the edge's own retry policy.
_PIPELINE_FALLBACK_TIMEOUT = 5.0


class ServerDownError(RuntimeError):
    """Raised when a failed query server is asked to execute a subquery."""


@dataclass
class SubQueryResult:
    """One subquery's tuples plus its simulated cost and I/O metrics."""
    tuples: List[DataTuple] = field(default_factory=list)
    cost: float = 0.0
    bytes_read: int = 0
    leaves_read: int = 0
    leaves_skipped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


class LRUCache:
    """Byte-bounded LRU over opaque unit keys."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity_bytes
        self._units: "OrderedDict[object, int]" = OrderedDict()
        self._bytes = 0

    def __contains__(self, key: object) -> bool:
        return key in self._units

    def touch(self, key: object) -> bool:
        """Mark a unit used; returns True on hit."""
        if key in self._units:
            self._units.move_to_end(key)
            return True
        return False

    def add(self, key: object, size: int) -> List[object]:
        """Insert a unit, evicting LRU units to fit; returns evicted keys."""
        evicted = []
        if key in self._units:
            self._bytes -= self._units.pop(key)
        if size > self.capacity:
            # An oversized unit can never fit: admitting it would first
            # drain every resident unit for nothing, so refuse it without
            # disturbing the working set.
            return evicted
        while self._units and self._bytes + size > self.capacity:
            old_key, old_size = self._units.popitem(last=False)
            self._bytes -= old_size
            evicted.append(old_key)
        self._units[key] = size
        self._bytes += size
        return evicted

    def discard(self, key: object) -> int:
        """Drop a unit if resident (explicit invalidation, not eviction);
        returns the bytes freed (0 when the key was absent)."""
        size = self._units.pop(key, None)
        if size is None:
            return 0
        self._bytes -= size
        return size

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._units)


class QueryServer:
    """One query server of the deployment."""

    def __init__(
        self,
        server_id: int,
        node_id: int,
        config: WaterwheelConfig,
        dfs: SimulatedDFS,
        plane: Optional[MessagePlane] = None,
    ):
        self.server_id = server_id
        self.node_id = node_id
        self.config = config
        self.dfs = dfs
        # Data-plane reads go through the message plane (so DFS fetches are
        # timed, fault-injectable edges); NameNode metadata lookups
        # (exists / read_cost / live_replicas) stay direct control-plane.
        self.plane = plane or MessagePlane()
        self._ep_dfs = self.plane.endpoint("query_server->dfs", [dfs])
        # Prefetch rides the same edge on its own lane (a second endpoint
        # gets its own worker under threaded transports), so background
        # warm-ups never queue ahead of a subquery's foreground fetches.
        self._ep_dfs_bg = self.plane.endpoint("query_server->dfs", [dfs])
        self.alive = True
        self.cache = LRUCache(config.cache_bytes)
        self._readers: Dict[str, ChunkReader] = {}
        self._sidecars: Dict[str, object] = {}
        #: Hot slot for the most recent reader whose prefix the cache
        #: refused (tiny caches): repeated subqueries against that chunk
        #: reuse the parsed prefix instead of re-fetching it every call.
        self._transient_reader: Optional[Tuple[str, ChunkReader]] = None
        #: chunk id -> in-flight ``get_prefix`` Call started by the
        #: assignment-aware prefetcher.  Written by the coordinator's
        #: dispatch thread, consumed by this server's worker -- hence the
        #: lock.
        self._prefetch_inflight: Dict[str, object] = {}
        self._prefetch_lock = threading.Lock()
        self.prefetch_hits_total = 0
        self._extractors = {
            spec.name: spec.extractor for spec in config.secondary_specs
        }
        self.subqueries_executed = 0
        # Cumulative I/O accounting (stats snapshots read these; per-result
        # numbers in SubQueryResult stay per-subquery).
        self.cache_hits_total = 0
        self.cache_misses_total = 0
        self.bytes_read_total = 0
        reg = _obs.registry()
        self._m_subqueries = reg.counter(
            "query_server.subqueries", server=server_id
        )
        self._m_cache_hits = reg.counter("query_server.cache_hits")
        self._m_cache_misses = reg.counter("query_server.cache_misses")
        self._m_bytes_read = reg.counter("query_server.bytes_read")
        self._m_leaves_read = reg.counter("query_server.leaves_read")
        self._m_leaves_skipped = reg.counter("query_server.leaves_skipped")
        self._m_cost_sim = reg.histogram("subquery.cost_sim")
        self._m_wall = reg.histogram("subquery.wall")
        self._m_prefetch_hits = reg.counter("query_server.prefetch_hits")
        self._m_pipeline_depth = reg.histogram("query_server.pipeline_depth")

    def _fetch(self, name: str) -> bytes:
        """Data-plane DFS read via the ``query_server->dfs`` edge.

        Raises :class:`~repro.storage.ChunkUnavailable` when every replica
        is on a failed node; the dispatch layer turns that into a failed
        subquery (and the coordinator into a partial result) instead of
        letting it abort the whole query.
        """
        return self._ep_dfs.call(0, "get_bytes", name)

    def _fetch_prefix(self, chunk_id: str) -> bytes:
        """Prefix-only data-plane read (ranged mode).

        Consumes an in-flight prefetch when one already landed -- the
        assignment-aware warm-up paid the access while this server was
        scanning the previous subquery; a prefetch still in flight (or
        errored) is ignored rather than waited on, so a message lost
        under fault injection can never wedge the query path.
        """
        call = None
        with self._prefetch_lock:
            pending = self._prefetch_inflight.get(chunk_id)
            if pending is not None and pending.done():
                call = self._prefetch_inflight.pop(chunk_id)
        if call is not None and call.response.ok:
            self.prefetch_hits_total += 1
            if _obs.ENABLED:
                self._m_prefetch_hits.inc()
            return call.response.value
        return self._ep_dfs.call(0, "get_prefix", chunk_id)

    def prefetch_prefixes(self, chunk_ids: Iterable[str]) -> int:
        """Assignment-aware warm-up: start prefix reads for chunks whose
        subqueries are queued behind the one executing (called by the
        concurrent dispatch loop with the policy's lookahead).  Each read
        rides the ``query_server->dfs`` edge asynchronously, overlapping
        the current subquery's decode/filter work; returns the number of
        reads put in flight.  No-op on inline transports (nothing can
        overlap) and in whole-blob mode.
        """
        if not (self.alive and self.config.ranged_reads and self.plane.concurrent):
            return 0
        issued = 0
        with self._prefetch_lock:
            for chunk_id in chunk_ids:
                if chunk_id in self._prefetch_inflight:
                    continue
                if (
                    self._prefix_key(chunk_id) in self.cache
                    and chunk_id in self._readers
                ):
                    continue
                if not self.dfs.exists(chunk_id):
                    continue
                self._prefetch_inflight[chunk_id] = self._ep_dfs_bg.submit(
                    0, "get_prefix", chunk_id
                )
                issued += 1
        return issued

    # --- cache plumbing ---------------------------------------------------------

    def _prefix_key(self, chunk_id: str) -> Tuple[str, str]:
        return ("prefix", chunk_id)

    def _leaf_key(self, chunk_id: str, leaf_index: int) -> Tuple[str, str, int]:
        return ("leaf", chunk_id, leaf_index)

    def _evict(self, keys: List[object]) -> None:
        for key in keys:
            if key[0] == "prefix":
                self._readers.pop(key[1], None)
            elif key[0] == "sidecar":
                self._sidecars.pop(key[1], None)
            elif key[0] == "leaf":
                reader = self._readers.get(key[1])
                if reader is not None:
                    reader.release_block(key[2])

    def _sidecar_for(
        self, chunk_id: str, result: SubQueryResult, piggyback: bool = False
    ):
        """Load (or reuse) the chunk's secondary-index sidecar, if any.

        ``piggyback=True`` means the chunk prefix was fetched by this same
        subquery, so the sidecar rides along in that ranged read (footer
        co-location) and pays only transfer bytes, not another access floor.
        """
        from repro.secondary import ChunkSecondaryIndex, sidecar_id

        name = sidecar_id(chunk_id)
        if not self.dfs.exists(name):
            return None
        cache_key = ("sidecar", chunk_id)
        if self.cache.touch(cache_key) and chunk_id in self._sidecars:
            result.cache_hits += 1
            return self._sidecars[chunk_id]
        result.cache_misses += 1
        data = self._fetch(name)
        if piggyback:
            result.cost += len(data) / self.config.costs.dfs_read_bandwidth
        else:
            result.cost += self.dfs.read_cost(name, len(data), self.node_id)
        result.bytes_read += len(data)
        sidecar = ChunkSecondaryIndex.from_bytes(
            data, self.config.secondary_specs or None
        )
        self._sidecars[chunk_id] = sidecar
        self._evict(self.cache.add(cache_key, len(data)))
        return sidecar

    def _attrs_match(self, payload, attr_equals, attr_ranges) -> bool:
        for name, value in (attr_equals or {}).items():
            extract = self._extractors.get(name)
            if extract is None:
                raise ValueError(f"attribute {name!r} is not configured")
            if extract(payload) != value:
                return False
        for name, (lo, hi) in (attr_ranges or {}).items():
            extract = self._extractors.get(name)
            if extract is None:
                raise ValueError(f"attribute {name!r} is not configured")
            value = extract(payload)
            if value is None or not (lo <= value <= hi):
                return False
        return True

    def _reader_for(self, chunk_id: str, result: SubQueryResult) -> ChunkReader:
        """Parse (or reuse) the chunk prefix, charging a DFS access on miss."""
        prefix_key = self._prefix_key(chunk_id)
        if self.cache.touch(prefix_key) and chunk_id in self._readers:
            result.cache_hits += 1
            return self._readers[chunk_id]
        transient = self._transient_reader
        if transient is not None and transient[0] == chunk_id:
            # The prefix never fit the cache, but this reader was parsed
            # moments ago: reuse it (no bytes move, nothing to charge)
            # instead of re-fetching and re-parsing per subquery.
            result.cache_hits += 1
            return transient[1]
        result.cache_misses += 1
        if self.config.ranged_reads:
            # One ranged access transfers exactly the prefix; dropped leaf
            # blocks re-fetch through charged ranged reads later.
            data = self._fetch_prefix(chunk_id)
            reader = ChunkReader(
                data,
                range_source=lambda off, length: self._ep_dfs.call(
                    0, "get_range", chunk_id, off, length
                ),
            )
        else:
            data = self._fetch(chunk_id)
            reader = ChunkReader(data, source=lambda: self._fetch(chunk_id))
            # The cache charges this unit prefix_bytes, so keep only the
            # prefix: retaining the whole blob would hold chunk-sized
            # allocations the accounting never sees.  Leaf blocks are
            # pinned separately when their cache units are admitted.
            reader.drop_block_bytes()
        result.cost += self.dfs.read_cost(
            chunk_id, reader.prefix_bytes, self.node_id
        )
        result.bytes_read += reader.prefix_bytes
        self._evict(self.cache.add(prefix_key, reader.prefix_bytes))
        if prefix_key in self.cache:
            self._readers[chunk_id] = reader
        else:
            # The prefix itself didn't fit (e.g. tiny cache): serve from
            # a transient reader rather than retaining bytes the cache
            # never charged for, but keep it in the hot slot so the next
            # subquery against the same chunk reuses the parse.
            self._readers.pop(chunk_id, None)
            self._transient_reader = (chunk_id, reader)
        return reader

    def prefetch_prefix(self, chunk_id: str) -> float:
        """Warm the chunk's prefix (header + directory + sketches) into the
        cache -- the on-disk template, which real deployments keep hot.
        Returns the simulated cost of the fetch (0.0 on a cache hit)."""
        result = SubQueryResult()
        self._reader_for(chunk_id, result)
        return result.cost

    # --- ranged leaf fetching -------------------------------------------------

    def _scan_ranged(
        self, chunk_id, reader, hits, to_fetch, result, scan_batch
    ) -> None:
        """Fetch missing leaf blocks as coalesced span batches and scan.

        Blocks already on hand (cache hits whose bytes are still pinned)
        scan first; the rest coalesce into spans -- adjacent directory
        entries within ``leaf_coalesce_gap_bytes`` share one ranged read.
        With ``fetch_pipeline_depth`` > 0 on a concurrent transport the
        spans are double-buffered: the next span is in flight on the DFS
        edge while the current one is decoded and filtered.  Inline
        transports fetch every span in one multi-range access (serial but
        byte-identical).
        """
        for entry in to_fetch:
            self._evict(
                self.cache.add(
                    self._leaf_key(chunk_id, entry.index), entry.block_length
                )
            )
        ready = []
        missing = []
        for entry in hits + to_fetch:
            (ready if reader.has_block(entry) else missing).append(entry)
        spans = coalesce_entries(missing, self.config.leaf_coalesce_gap_bytes)
        depth = self.config.fetch_pipeline_depth
        pipelined = depth > 0 and self.plane.concurrent and len(spans) > 1
        if spans and not pipelined:
            with _trace.span(
                "leaf_fetch",
                leaves=len(missing),
                spans=len(spans),
                bytes=sum(s.length for s in spans),
            ):
                datas = self._ep_dfs.call(
                    0,
                    "get_ranges",
                    chunk_id,
                    [(s.offset, s.length) for s in spans],
                )
                total = sum(s.length for s in spans)
                result.cost += self.dfs.read_cost(chunk_id, total, self.node_id)
                result.bytes_read += total
                for span, data in zip(spans, datas):
                    reader.pin_span(span.offset, data)
        scan_batch(ready)
        if not spans:
            return
        if pipelined:
            self._scan_pipelined(chunk_id, reader, spans, depth, result, scan_batch)
        else:
            for span in spans:
                scan_batch(span.entries)

    def _scan_pipelined(
        self, chunk_id, reader, spans, depth, result, scan_batch
    ) -> None:
        """Double-buffered span execution: up to ``depth`` ranged reads in
        flight on the ``query_server->dfs`` edge while completed spans are
        decoded and filtered on this worker."""
        if _obs.ENABLED:
            self._m_pipeline_depth.observe(min(depth, len(spans)))
        pol = self.plane.policy("query_server->dfs")
        wait = pol.timeout if pol.timeout else _PIPELINE_FALLBACK_TIMEOUT
        inflight = deque()
        next_span = 0

        def pump():
            nonlocal next_span
            while next_span < len(spans) and len(inflight) < depth:
                span = spans[next_span]
                next_span += 1
                inflight.append(
                    (
                        span,
                        self._ep_dfs.submit(
                            0, "get_range", chunk_id, span.offset, span.length
                        ),
                    )
                )

        pump()
        while inflight:
            span, call = inflight.popleft()
            try:
                data = call.result(wait)
            except RpcError:
                # Lost or faulted in flight: fall back to a synchronous
                # ranged read, which applies the edge's own retry policy
                # (and surfaces a persistent failure as RpcError).
                data = self._ep_dfs.call(
                    0, "get_range", chunk_id, span.offset, span.length
                )
            result.cost += self.dfs.read_cost(chunk_id, span.length, self.node_id)
            result.bytes_read += span.length
            reader.pin_span(span.offset, data)
            pump()  # keep the next span in flight while this one decodes
            scan_batch(span.entries)

    # --- execution -----------------------------------------------------------------

    def execute(self, sq: SubQuery) -> SubQueryResult:
        """Run a chunk subquery; returns tuples plus simulated cost."""
        if not self.alive:
            raise ServerDownError(f"query server {self.server_id} is down")
        if sq.chunk_id is None:
            raise ValueError("query servers only handle chunk subqueries")
        result = SubQueryResult()
        with _trace.span(
            "subquery", chunk=sq.chunk_id, server=self.server_id
        ) as sub_sp:
            # Coordinator round trip: subquery dispatch + completion message.
            result.cost += 2 * self.config.costs.network_latency
            misses_before = result.cache_misses
            with _trace.span("chunk_prefix") as pre_sp:
                reader = self._reader_for(sq.chunk_id, result)
                prefix_was_cold = result.cache_misses > misses_before
                key_lo, key_hi = sq.keys.lo, sq.keys.hi - 1

                # Secondary-index pushdown: restrict to leaves whose
                # bitmap/bloom sidecar says may contain the requested
                # attribute values.
                allowed_leaves = None
                if sq.attr_equals or sq.attr_ranges:
                    # Piggybacking (sidecar bytes riding the prefix fetch's
                    # access) only holds on the whole-blob path: a ranged
                    # prefix read transfers exactly the prefix, so the
                    # sidecar pays its own access floor.
                    sidecar = self._sidecar_for(
                        sq.chunk_id,
                        result,
                        piggyback=prefix_was_cold
                        and not self.config.ranged_reads,
                    )
                    if sidecar is not None:
                        allowed_leaves = sidecar.candidate_leaves(
                            sq.attr_equals, sq.attr_ranges
                        )
                if pre_sp is not None:
                    pre_sp.set_attr("cold", prefix_was_cold)

            to_fetch = []
            fetch_bytes = 0
            hits = []
            with _trace.span("bloom_prune") as prune_sp:
                for entry in reader.candidate_leaves(key_lo, key_hi):
                    if (
                        allowed_leaves is not None
                        and entry.index not in allowed_leaves
                    ):
                        result.leaves_skipped += 1
                        continue
                    if self.config.use_temporal_sketch:
                        sketch = reader.sketch_for(entry)
                        if not sketch.might_overlap(sq.times.lo, sq.times.hi):
                            result.leaves_skipped += 1
                            continue
                    leaf_key = self._leaf_key(sq.chunk_id, entry.index)
                    if self.cache.touch(leaf_key):
                        result.cache_hits += 1
                        hits.append(entry)
                    else:
                        result.cache_misses += 1
                        to_fetch.append(entry)
                        fetch_bytes += entry.block_length
                if prune_sp is not None:
                    prune_sp.set_attr("leaves_pruned", result.leaves_skipped)
                    prune_sp.set_attr("leaf_cache_hits", len(hits))
                    prune_sp.set_attr("leaf_cache_misses", len(to_fetch))

            examined = 0

            def scan_batch(entries):
                nonlocal examined
                for entry in entries:
                    result.leaves_read += 1
                    for t in reader.read_leaf(entry):
                        examined += 1
                        if (
                            key_lo <= t.key <= key_hi
                            and sq.times.lo <= t.ts <= sq.times.hi
                            and (sq.predicate is None or sq.predicate(t))
                            and (
                                not (sq.attr_equals or sq.attr_ranges)
                                or self._attrs_match(
                                    t.payload, sq.attr_equals, sq.attr_ranges
                                )
                            )
                        ):
                            result.tuples.append(t)

            scan_entries = hits + to_fetch
            with _trace.span("leaf_scan") as scan_sp:
                if self.config.ranged_reads:
                    self._scan_ranged(
                        sq.chunk_id, reader, hits, to_fetch, result, scan_batch
                    )
                else:
                    if to_fetch:
                        with _trace.span(
                            "leaf_fetch", leaves=len(to_fetch), bytes=fetch_bytes
                        ):
                            # One ranged DFS access covering every missing
                            # block (priced, not transferred: the bytes ride
                            # the whole-blob re-fetch below).
                            result.cost += self.dfs.read_cost(
                                sq.chunk_id, fetch_bytes, self.node_id
                            )
                            result.bytes_read += fetch_bytes
                            for entry in to_fetch:
                                self._evict(
                                    self.cache.add(
                                        self._leaf_key(sq.chunk_id, entry.index),
                                        entry.block_length,
                                    )
                                )
                    # Pin the blocks this scan needs (one shared fetch for
                    # whatever the prefix-only reader no longer holds).
                    if scan_entries:
                        reader.retain_blocks(scan_entries)
                    scan_batch(scan_entries)
                if scan_sp is not None:
                    scan_sp.set_attr("leaves_read", result.leaves_read)
                    scan_sp.set_attr("tuples_examined", examined)
                    scan_sp.set_attr("tuples", len(result.tuples))
            for entry in scan_entries:
                if self._leaf_key(sq.chunk_id, entry.index) not in self.cache:
                    reader.release_block(entry.index)
            result.cost += examined * self.config.costs.scan_cpu
            if sub_sp is not None:
                sub_sp.set_attr("cost_sim", result.cost)
                sub_sp.set_attr("bytes_read", result.bytes_read)
                sub_sp.set_attr("cache_hits", result.cache_hits)
                sub_sp.set_attr("cache_misses", result.cache_misses)
        self.subqueries_executed += 1
        self.cache_hits_total += result.cache_hits
        self.cache_misses_total += result.cache_misses
        self.bytes_read_total += result.bytes_read
        if _obs.ENABLED:
            self._m_subqueries.inc()
            self._m_cache_hits.inc(result.cache_hits)
            self._m_cache_misses.inc(result.cache_misses)
            self._m_bytes_read.inc(result.bytes_read)
            self._m_leaves_read.inc(result.leaves_read)
            self._m_leaves_skipped.inc(result.leaves_skipped)
            self._m_cost_sim.observe(result.cost)
            if sub_sp is not None:
                self._m_wall.observe(sub_sp.duration)
        return result

    def clear_cache(self) -> None:
        """Drop all cached units (benchmarks use this for cold-cache runs)."""
        self.cache = LRUCache(self.config.cache_bytes)
        self._readers.clear()
        self._sidecars.clear()
        self._transient_reader = None
        with self._prefetch_lock:
            self._prefetch_inflight.clear()

    # --- failure ----------------------------------------------------------------------

    def heartbeat(self) -> dict:
        """Liveness probe answered over the message plane (supervision)."""
        if not self.alive:
            raise ServerDownError(f"query server {self.server_id} is down")
        return {
            "component": "query_server",
            "server_id": self.server_id,
            "subqueries_executed": self.subqueries_executed,
        }

    def fail(self) -> None:
        """Crash: the cache (volatile state) is lost.  Idempotent."""
        if not self.alive:
            return
        self.alive = False
        self.cache = LRUCache(self.config.cache_bytes)
        self._readers.clear()
        self._sidecars.clear()
        self._transient_reader = None
        with self._prefetch_lock:
            self._prefetch_inflight.clear()

    def recover(self) -> None:
        """Bring the server back (with a cold cache); no-op when alive."""
        self.alive = True
