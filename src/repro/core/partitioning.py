"""Global key partitioning (paper Sections III-A and III-D).

The key domain is range-partitioned across indexing servers; dispatchers
route each tuple by its key.  The partition is *adaptive*: dispatchers
sample key frequencies, a central balancer aggregates them, and when any
server's expected load deviates from the mean by more than the rebalance
threshold, new boundaries are computed that equalize the observed frequency
mass per server.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence

from repro.core.model import KeyInterval


class KeyPartition:
    """An ordered range partition of ``[key_lo, key_hi)`` into n intervals.

    ``boundaries`` are the n-1 separators; server i owns
    ``[boundaries[i-1], boundaries[i])`` with the domain edges at the ends.
    """

    def __init__(self, key_lo: int, key_hi: int, boundaries: Sequence[int]):
        if key_hi <= key_lo:
            raise ValueError("empty key domain")
        boundaries = list(boundaries)
        if boundaries != sorted(boundaries):
            raise ValueError("boundaries must be sorted")
        if len(set(boundaries)) != len(boundaries):
            raise ValueError("boundaries must be distinct")
        if boundaries and (boundaries[0] <= key_lo or boundaries[-1] >= key_hi):
            raise ValueError("boundaries must lie strictly inside the domain")
        self.key_lo = key_lo
        self.key_hi = key_hi
        self.boundaries = boundaries

    @classmethod
    def uniform(cls, key_lo: int, key_hi: int, n_servers: int) -> "KeyPartition":
        """Evenly spaced boundaries (the bootstrap partition)."""
        if n_servers < 1:
            raise ValueError("need at least one server")
        span = key_hi - key_lo
        boundaries = []
        for i in range(1, n_servers):
            b = key_lo + round(span * i / n_servers)
            if key_lo < b < key_hi and (not boundaries or b > boundaries[-1]):
                boundaries.append(b)
        return cls(key_lo, key_hi, boundaries)

    @classmethod
    def from_frequencies(
        cls,
        key_lo: int,
        key_hi: int,
        n_servers: int,
        bucket_counts: Sequence[float],
    ) -> "KeyPartition":
        """Boundaries equalizing observed frequency mass per server.

        ``bucket_counts[i]`` is the observed frequency of keys falling in the
        i-th of ``len(bucket_counts)`` equal-width buckets over the domain.
        """
        if n_servers < 1:
            raise ValueError("need at least one server")
        total = float(sum(bucket_counts))
        if total <= 0:
            return cls.uniform(key_lo, key_hi, n_servers)
        n_buckets = len(bucket_counts)
        span = key_hi - key_lo
        target = total / n_servers
        boundaries: List[int] = []
        acc = 0.0
        next_cut = target
        pending = 0
        for i, count in enumerate(bucket_counts):
            acc += count
            # A single hot bucket can absorb several cut targets, but bucket
            # edges are the finest cut positions available, so owed cuts
            # carry forward (``pending``) and land on the next distinct
            # bucket edges instead of being silently dropped.
            while acc >= next_cut and len(boundaries) + pending < n_servers - 1:
                pending += 1
                next_cut += target
            if pending:
                b = key_lo + round(span * (i + 1) / n_buckets)
                if key_lo < b < key_hi and (not boundaries or b > boundaries[-1]):
                    boundaries.append(b)
                    pending -= 1
        return cls(key_lo, key_hi, boundaries)

    @classmethod
    def from_sample(
        cls, key_lo: int, key_hi: int, n_servers: int, sample: Sequence[int]
    ) -> "KeyPartition":
        """Boundaries at the quantiles of a key sample.

        Finer-grained than bucket histograms: a hot key range narrower than
        any bucket still gets split at individual-key granularity, bounded
        only by duplicate keys (a single hot *key* cannot be split by any
        range partitioning).
        """
        if n_servers < 1:
            raise ValueError("need at least one server")
        keys = sorted(sample)
        if not keys:
            return cls.uniform(key_lo, key_hi, n_servers)
        boundaries: List[int] = []
        for i in range(1, n_servers):
            b = keys[min(len(keys) - 1, i * len(keys) // n_servers)]
            if key_lo < b < key_hi and (not boundaries or b > boundaries[-1]):
                boundaries.append(b)
        return cls(key_lo, key_hi, boundaries)

    # --- routing ---------------------------------------------------------------

    @property
    def n_intervals(self) -> int:
        """Number of key intervals (boundaries + 1)."""
        return len(self.boundaries) + 1

    def server_for(self, key: int) -> int:
        """The indexing server owning this key."""
        return bisect_right(self.boundaries, key)

    def interval(self, server: int) -> KeyInterval:
        """The key interval assigned to one server."""
        lo = self.key_lo if server == 0 else self.boundaries[server - 1]
        hi = (
            self.key_hi
            if server == len(self.boundaries)
            else self.boundaries[server]
        )
        return KeyInterval(lo, hi)

    def intervals(self) -> List[KeyInterval]:
        """All per-server key intervals, in server order."""
        return [self.interval(i) for i in range(self.n_intervals)]

    def padded_intervals(self, n_servers: int) -> List[KeyInterval]:
        """Per-server intervals padded with empty ones to ``n_servers``.

        A skew-fitted partition can have fewer cuts than there are servers
        (duplicate quantiles collapse); servers past the last interval get
        the empty ``[key_hi, key_hi)`` so every server always holds a
        well-defined assignment.
        """
        if n_servers < self.n_intervals:
            raise ValueError(
                f"partition has {self.n_intervals} intervals but only "
                f"{n_servers} servers"
            )
        out = self.intervals()
        empty = KeyInterval(self.key_hi, self.key_hi)
        out.extend(empty for _ in range(n_servers - len(out)))
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KeyPartition)
            and self.key_lo == other.key_lo
            and self.key_hi == other.key_hi
            and self.boundaries == other.boundaries
        )

    def __repr__(self) -> str:
        return f"KeyPartition({self.key_lo}, {self.key_hi}, {self.boundaries})"


class FrequencySampler:
    """Sliding-window key-frequency histogram kept by each dispatcher.

    Keys are hashed into ``n_buckets`` equal-width buckets over the domain;
    ``rotate()`` starts a new window (called once per aggregation period) so
    stale traffic ages out after two windows.
    """

    def __init__(self, key_lo: int, key_hi: int, n_buckets: int = 1024):
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.key_lo = key_lo
        self.key_hi = key_hi
        self.n_buckets = n_buckets
        self._current = [0.0] * n_buckets
        self._previous = [0.0] * n_buckets

    def bucket_of(self, key: int) -> int:
        """Histogram bucket index for a key (clamped to the domain)."""
        span = self.key_hi - self.key_lo
        clamped = min(max(key, self.key_lo), self.key_hi - 1)
        return min(
            self.n_buckets - 1,
            (clamped - self.key_lo) * self.n_buckets // span,
        )

    def record(self, key: int, weight: float = 1.0) -> None:
        """Count one sampled key."""
        self._current[self.bucket_of(key)] += weight

    def rotate(self) -> None:
        """Start a new sampling window (old one ages out next rotate)."""
        self._previous = self._current
        self._current = [0.0] * self.n_buckets

    def histogram(self) -> List[float]:
        """Combined current + previous window counts."""
        return [c + p for c, p in zip(self._current, self._previous)]


def aggregate_histograms(histograms: Sequence[Sequence[float]]) -> List[float]:
    """Sum per-dispatcher histograms into the global key-frequency view."""
    if not histograms:
        return []
    n = len(histograms[0])
    if any(len(h) != n for h in histograms):
        raise ValueError("histograms must share bucket count")
    return list(map(sum, zip(*histograms)))


def load_deviation(loads: Sequence[float]) -> float:
    """Max relative deviation of any server's load from the mean; the
    rebalance trigger compares this against the threshold (e.g. 0.2)."""
    if not loads:
        return 0.0
    mean = sum(loads) / len(loads)
    if mean <= 0:
        return 0.0
    return max(abs(load - mean) for load in loads) / mean


def partition_loads(partition: KeyPartition, histogram: Sequence[float]) -> List[float]:
    """Expected per-server load under ``partition`` given a bucket histogram."""
    loads = [0.0] * partition.n_intervals
    n_buckets = len(histogram)
    span = partition.key_hi - partition.key_lo
    for i, count in enumerate(histogram):
        if count == 0:
            continue
        # Attribute the bucket to the server owning its midpoint key.
        mid = partition.key_lo + span * (2 * i + 1) // (2 * n_buckets)
        loads[partition.server_for(mid)] += count
    return loads
