"""Indexing server: in-memory template B+ tree, chunk flushes, recovery.

Each indexing server owns one key interval of the global partition
(Section III-A).  It accumulates dispatched tuples in a template B+ tree
and flushes them as an immutable chunk once the configured chunk size is
reached; the template survives the flush.  It answers subqueries over its
fresh (not yet flushed) data, tracks its *actual* key interval (which can
exceed the assigned one right after a repartition, Section III-D), buffers
severely late tuples separately so ordinary chunks keep tight temporal
boundaries (Section IV-D), and recovers its in-memory state after a failure
by replaying the durable log from its last checkpointed offset (Section V).

Flushing runs in one of two modes (``WaterwheelConfig.flush_mode``):

* ``"sync"`` (default): the chunk is serialized, replicated and registered
  inline on the ingest thread -- deterministic, but every flush is a full
  ingest stall.
* ``"async"``: the full tree is *sealed* -- swapped out whole as an
  immutable snapshot while :meth:`TemplateBTree.spawn` puts an empty tree
  on the same template in its place -- and a background
  :class:`~repro.core.flush.FlushExecutor` commits it (write, replicate,
  register, checkpoint) off the ingest thread, exactly the pipelining of
  Sections III-A/III-B.  Sealed data stays query-visible until its chunk
  commits, and its log offsets keep the replay checkpoint pinned, so a
  crash mid-flush loses nothing.

Both modes mint chunk sequence numbers at seal time and run the same
commit bookkeeping (:meth:`IndexingServer._commit_flush` ->
:meth:`_advance_checkpoint`), so they produce identical chunk ids and
metastore state for identical input.
"""

from __future__ import annotations

import operator as _operator
import threading
import time as _time
from itertools import compress as _compress
from typing import List, Optional, Tuple

from repro.btree.template import TemplateBTree
from repro.core.config import WaterwheelConfig
from repro.core.flush import FlushExecutor, FlushTask
from repro.core.model import DataTuple, KeyInterval, Region, SubQuery, TimeInterval
from repro.messaging import DurableLog
from repro.metastore import MetadataStore
from repro.obs import metrics as _obs
from repro.obs import tracing as _trace
from repro.storage import ChunkWriteError, SimulatedDFS, serialize_chunk

#: Tuples more than this many Delta-t behind the newest timestamp go to the
#: separate late buffer instead of the main tree.
_SEVERELY_LATE_FACTOR = 4.0

#: C-speed key extractor for sorting batched runs.
_BY_KEY = _operator.attrgetter("key")


class ServerDownError(RuntimeError):
    """Raised when a failed server is asked to do work."""


def _note_range(ranges: List[List[int]], lo: int, hi: int) -> None:
    """Append ``[lo, hi)`` to an ascending disjoint range list, coalescing
    with the last range when contiguous (offsets arrive monotonically per
    server, so this is O(1) amortised)."""
    if ranges and ranges[-1][1] >= lo:
        if hi > ranges[-1][1]:
            ranges[-1][1] = hi
    else:
        ranges.append([lo, hi])


def _merge_ranges(ranges) -> List[List[int]]:
    """Normalise ``[lo, hi)`` ranges: sorted, disjoint, coalesced."""
    out: List[List[int]] = []
    for lo, hi in sorted(ranges):
        if out and lo <= out[-1][1]:
            if hi > out[-1][1]:
                out[-1][1] = hi
        else:
            out.append([lo, hi])
    return out


class IndexingServer:
    """One indexing server of the deployment."""

    def __init__(
        self,
        server_id: int,
        node_id: int,
        config: WaterwheelConfig,
        dfs: SimulatedDFS,
        metastore: MetadataStore,
        assigned: KeyInterval,
        flush_executor: Optional[FlushExecutor] = None,
    ):
        self.server_id = server_id
        self.node_id = node_id
        self.config = config
        self.dfs = dfs
        self.metastore = metastore
        self.assigned = assigned
        #: The key interval this server's in-memory data may actually span:
        #: the assigned interval plus whatever it still holds from before a
        #: repartition (or received under a since-replaced partition).  Kept
        #: current in the metadata store (``/partition/actual/<id>``) so the
        #: coordinator can prune fresh scans without consulting every server
        #: while still seeing transient overlaps (Section III-D).
        self.actual = assigned
        #: Serializes actual-interval read-modify-writes: ingest widens on
        #: its own thread while a balancer reassign widens on another.
        self._actual_lock = threading.RLock()
        self.alive = True
        self.max_ts_seen: Optional[float] = None
        self._last_offset: Optional[int] = None
        self._bytes_in_memory = 0
        self._late_bytes = 0
        self._tree = self._new_tree(assigned)
        self._late_tree: Optional[TemplateBTree] = None
        #: Disjoint ascending ``[lo, hi)`` log-offset ranges held by each
        #: live tree, consumed at seal time for exact checkpointing: the
        #: replay checkpoint only ever advances through offsets durably
        #: committed to chunks and below everything still in memory.
        self._tree_offsets: List[List[int]] = []
        self._late_offsets: List[List[int]] = []
        #: Sealed-but-uncommitted flush tasks, oldest first (async mode).
        #: Their trees stay query-visible until the background commit.
        self._sealed: List[FlushTask] = []
        #: Serializes seal/commit/crash transitions: the ingest thread
        #: seals and :meth:`fail` cancels while the flush worker commits.
        self._seal_lock = threading.RLock()
        #: Set by a background commit when retiring sealed data may shrink
        #: the actual interval; the ingest thread (which owns shrinks --
        #: see :meth:`_recompute_actual`) applies it at its next call.
        self._actual_refresh_pending = False
        self._flush_executor = flush_executor
        if config.flush_mode == "async" and flush_executor is None:
            # Standalone (facade-less) use: own executor per server.
            self._flush_executor = FlushExecutor(config.flush_inflight_bytes)
        self.flush_count = 0
        self.tuples_ingested = 0
        # Pre-resolved instruments: ingest() pays one flag check + one
        # integer add per tuple when metrics are on, nothing when off.
        reg = _obs.registry()
        self._m_ingested = reg.counter("ingest.tuples", server=server_id)
        self._m_late = reg.counter("ingest.late_tuples")
        self._m_flushes = reg.counter("ingest.flushes")
        self._m_flush_wall = reg.histogram("ingest.flush_wall")
        self._m_flush_bytes = reg.histogram(
            "ingest.flush_bytes", scale=1024.0, unit="bytes"
        )
        self._m_sealed = reg.counter("flush.sealed")
        self._m_fresh_scans = reg.counter("ingest.fresh_scans")
        self._publish_actual()

    # --- construction helpers -------------------------------------------------

    def _new_tree(self, interval: KeyInterval) -> TemplateBTree:
        cfg = self.config
        return TemplateBTree(
            interval.lo,
            max(interval.hi, interval.lo + 1),
            n_leaves=cfg.template_leaves,
            fanout=cfg.fanout,
            sketch_granularity=cfg.sketch_granularity,
            skew_threshold=cfg.skew_threshold,
            check_every=cfg.skew_check_every,
        )

    @property
    def _seq_key(self) -> str:
        return f"/indexing/{self.server_id}/next_chunk_seq"

    @property
    def _offset_key(self) -> str:
        return f"/indexing/{self.server_id}/offset"

    @property
    def _flushed_key(self) -> str:
        """Flushed ``[lo, hi)`` offset ranges above the checkpoint (data
        durable in chunks that replay must skip)."""
        return f"/indexing/{self.server_id}/flushed_offsets"

    # --- actual-region metadata -----------------------------------------------

    @property
    def _actual_key(self) -> str:
        return f"/partition/actual/{self.server_id}"

    def _publish_actual(self) -> None:
        self.metastore.put(
            self._actual_key, [self.actual.lo, self.actual.hi]
        )

    def _set_actual(self, interval: KeyInterval) -> None:
        with self._actual_lock:
            if interval.lo != self.actual.lo or interval.hi != self.actual.hi:
                self.actual = interval
                self._publish_actual()

    def _cover_keys(self, key_lo: int, key_hi: int) -> None:
        """Widen the actual interval to cover the closed [key_lo, key_hi]."""
        with self._actual_lock:
            a = self.actual
            if a.is_empty():
                self._set_actual(KeyInterval(key_lo, key_hi + 1))
            else:
                self._set_actual(
                    KeyInterval(min(a.lo, key_lo), max(a.hi, key_hi + 1))
                )

    def _recompute_actual(self) -> None:
        """Re-derive the actual interval from the assignment plus whatever
        the live trees (active, late, sealed) still hold.  Only called
        from the ingest thread (flush paths, post-drain refresh) or on a
        quiesced server (fail/recover): unlike the widen-only paths this
        may *shrink* the interval, which must never race an in-flight
        insert.  A background flush commit therefore only flags
        ``_actual_refresh_pending`` instead of calling this directly."""
        with self._actual_lock:
            lo, hi = self.assigned.lo, self.assigned.hi
            for tree in self.in_memory_trees():
                kb = tree.key_bounds()
                if hi <= lo:  # empty assignment: the data alone defines it
                    lo, hi = kb[0], kb[1] + 1
                else:
                    lo = min(lo, kb[0])
                    hi = max(hi, kb[1] + 1)
            self._set_actual(KeyInterval(lo, hi))

    def _maybe_refresh_actual(self) -> None:
        """Apply an actual-interval shrink a background commit requested;
        runs on the ingest thread (or a quiesced drain) only."""
        if self._actual_refresh_pending:
            self._actual_refresh_pending = False
            self._recompute_actual()

    # --- ingestion ---------------------------------------------------------------

    def ingest(self, t: DataTuple, offset: Optional[int] = None) -> Optional[str]:
        """Insert one tuple; returns the chunk id if this triggered a flush
        (in async mode: a *seal* -- the chunk commits in the background).

        ``offset`` is the tuple's position in this server's durable log
        partition; checkpointed when its chunk commits, for recovery.
        """
        if not self.alive:
            raise ServerDownError(f"indexing server {self.server_id} is down")
        self._maybe_refresh_actual()
        if self.max_ts_seen is None or t.ts > self.max_ts_seen:
            self.max_ts_seen = t.ts
        self.tuples_ingested += 1
        if _obs.ENABLED:
            self._m_ingested.inc()
        self._last_offset = offset

        late_cutoff = (
            None
            if self.max_ts_seen is None
            else self.max_ts_seen - _SEVERELY_LATE_FACTOR * self.config.late_delta
        )
        # A tuple routed under a since-replaced partition (or one this
        # server kept through a repartition) can land outside the actual
        # interval; widening keeps the published metadata covering every
        # in-memory key, which the coordinator's fresh-scan pruning relies
        # on.  Two comparisons on the hot path, a publish only on growth --
        # and always *before* the insert, so a concurrent decompose never
        # prunes a server already holding a matching tuple.
        a = self.actual
        if t.key < a.lo or t.key >= a.hi:
            self._cover_keys(t.key, t.key)
        if late_cutoff is not None and t.ts < late_cutoff:
            self._ingest_late(t, offset)
        else:
            self._tree.insert(t)
            self._bytes_in_memory += t.size
            if offset is not None:
                _note_range(self._tree_offsets, offset, offset + 1)
        if self._bytes_in_memory >= self.config.chunk_bytes:
            return self._commit_flush(late=False)
        return None

    def ingest_run(
        self, run: List[DataTuple], first_offset: Optional[int] = None
    ) -> List[str]:
        """Batched ingest of one dispatched run (arrival order).

        Behaviourally equivalent to ``for t in run: self.ingest(t, ...)``
        -- same late-buffer routing against the running max timestamp, same
        flush points, same checkpointed offsets -- but classification and
        flush-boundary detection happen in one O(n) arrival-order pass and
        the tuples between two flush points are inserted as a key-sorted
        run via :meth:`TemplateBTree.insert_run` (one leaf-to-leaf cursor
        instead of n root descents).  ``first_offset`` is the durable-log
        offset of ``run[0]``; tuple ``i`` holds ``first_offset + i``.
        Returns every chunk id flushed (main and late).
        """
        if not self.alive:
            raise ServerDownError(f"indexing server {self.server_id} is down")
        if not run:
            return []
        self._maybe_refresh_actual()
        cfg = self.config
        chunk_bytes = cfg.chunk_bytes
        late_window = _SEVERELY_LATE_FACTOR * cfg.late_delta
        by_key = _BY_KEY  # stable sorts: arrival order kept for equal keys

        # Fast path: classify lates against the running max in one
        # vectorized pass, and when no flush can land inside this run,
        # commit main and late in two stable sorts with no per-tuple loop.
        n = len(run)
        ts_list = [t.ts for t in run]
        prev_max = self.max_ts_seen
        run_max = max(ts_list)
        overall_max = run_max if prev_max is None or run_max > prev_max else prev_max
        # Lateness compares each tuple against the running max *before* it
        # (window > 0 makes that equal to :meth:`ingest`'s max-including-t
        # check), and the running max never exceeds ``overall_max`` -- so
        # every late tuple sits below a *scalar* threshold.  The candidate
        # scan therefore runs entirely in C; only the rare candidates get
        # their exact running max, rebuilt from the block maxima between
        # consecutive candidates.
        thr = overall_max - late_window
        late_idx: List[int] = []
        rmax = prev_max if prev_max is not None else float("-inf")
        prev = 0
        for i in _compress(range(n), map(thr.__gt__, ts_list)):
            if i > prev:
                block_max = max(ts_list[prev:i])
                if block_max > rmax:
                    rmax = block_max
            t_ts = ts_list[i]
            if t_ts < rmax - late_window:
                late_idx.append(i)
            if t_ts > rmax:
                rmax = t_ts
            prev = i + 1
        total_bytes = sum([t.size for t in run])
        if late_idx:
            late_run = [run[i] for i in late_idx]
            late_total = sum(t.size for t in late_run)
            main_total = total_bytes - late_total
        else:
            late_run = []
            late_total = 0
            main_total = total_bytes
        if (
            self._bytes_in_memory + main_total < chunk_bytes
            and self._late_bytes + late_total < chunk_bytes
        ):
            if late_idx:
                late_set = set(late_idx)
                main_run = [t for i, t in enumerate(run) if i not in late_set]
            else:
                main_run = run if isinstance(run, list) else list(run)
            if first_offset is not None:
                self._note_run_offsets(first_offset, n, late_idx)
            if main_run:
                srt = sorted(main_run, key=by_key)
                self._cover_keys(srt[0].key, srt[-1].key)
                self._tree.insert_run(srt)
                self._bytes_in_memory += main_total
            if late_run:
                srt = sorted(late_run, key=by_key)
                self._cover_keys(srt[0].key, srt[-1].key)
                self._ensure_late_tree()
                self._late_tree.insert_run(srt)
                self._late_bytes += late_total
            self.max_ts_seen = overall_max
            self._last_offset = (
                first_offset + n - 1 if first_offset is not None else None
            )
            self.tuples_ingested += n
            if _obs.ENABLED:
                self._m_ingested.inc(n)
                if late_idx:
                    self._m_late.inc(len(late_idx))
            return []

        chunk_ids: List[str] = []
        main_pending: List[DataTuple] = []
        late_pending: List[DataTuple] = []
        max_ts = self.max_ts_seen
        main_bytes = self._bytes_in_memory
        late_bytes = self._late_bytes
        n_late = 0
        # The whole run is already durable in the log: a flush failing
        # mid-run must not abort the remaining inserts, or those tuples
        # would be stranded (logged but never in memory, and an *alive*
        # server never replays).  Finish the run, then surface the error.
        flush_error: Optional[ChunkWriteError] = None

        def commit_main() -> None:
            if main_pending:
                srt = sorted(main_pending, key=by_key)
                self._cover_keys(srt[0].key, srt[-1].key)
                self._tree.insert_run(srt)
                self._bytes_in_memory += sum(t.size for t in main_pending)
                main_pending.clear()

        def commit_late() -> None:
            if late_pending:
                srt = sorted(late_pending, key=by_key)
                self._cover_keys(srt[0].key, srt[-1].key)
                self._ensure_late_tree()
                self._late_tree.insert_run(srt)
                self._late_bytes += sum(t.size for t in late_pending)
                late_pending.clear()

        for i, t in enumerate(run):
            offset = first_offset + i if first_offset is not None else None
            if max_ts is None or t.ts > max_ts:
                max_ts = t.ts
            if t.ts < max_ts - late_window:
                late_pending.append(t)
                late_bytes += t.size
                n_late += 1
                if offset is not None:
                    _note_range(self._late_offsets, offset, offset + 1)
                if late_bytes >= chunk_bytes:
                    commit_late()
                    try:
                        chunk_id = self._commit_flush(late=True)
                    except ChunkWriteError as exc:
                        flush_error, chunk_id = exc, None
                    if chunk_id is not None:
                        chunk_ids.append(chunk_id)
                    # 0 after a successful flush, the retained backlog
                    # after a failed one.
                    late_bytes = self._late_bytes
            else:
                main_pending.append(t)
                main_bytes += t.size
                if offset is not None:
                    _note_range(self._tree_offsets, offset, offset + 1)
                if main_bytes >= chunk_bytes:
                    commit_main()
                    self.max_ts_seen = max_ts
                    self._last_offset = offset
                    try:
                        chunk_id = self._commit_flush(late=False)
                    except ChunkWriteError as exc:
                        flush_error, chunk_id = exc, None
                    if chunk_id is not None:
                        chunk_ids.append(chunk_id)
                    main_bytes = self._bytes_in_memory
        commit_main()
        commit_late()
        self.max_ts_seen = max_ts
        self._last_offset = (
            first_offset + len(run) - 1 if first_offset is not None else None
        )
        self.tuples_ingested += len(run)
        if _obs.ENABLED:
            self._m_ingested.inc(len(run))
            if n_late:
                self._m_late.inc(n_late)
        if flush_error is not None:
            raise flush_error
        return chunk_ids

    def _note_run_offsets(
        self, first_offset: int, n: int, late_idx: List[int]
    ) -> None:
        """Record a flush-free run's offsets: the gaps between late
        indices go to the main tree's ranges, the contiguous late runs to
        the late buffer's -- both emitted in ascending order."""
        if not late_idx:
            _note_range(self._tree_offsets, first_offset, first_offset + n)
            return
        pos = 0
        for i in late_idx:
            if i > pos:
                _note_range(
                    self._tree_offsets, first_offset + pos, first_offset + i
                )
            pos = i + 1
        if pos < n:
            _note_range(
                self._tree_offsets, first_offset + pos, first_offset + n
            )
        start = prev_i = late_idx[0]
        for i in late_idx[1:]:
            if i != prev_i + 1:
                _note_range(
                    self._late_offsets,
                    first_offset + start,
                    first_offset + prev_i + 1,
                )
                start = i
            prev_i = i
        _note_range(
            self._late_offsets,
            first_offset + start,
            first_offset + prev_i + 1,
        )

    def _ensure_late_tree(self) -> None:
        if self._late_tree is None:
            self._late_tree = TemplateBTree(
                self.assigned.lo,
                max(self.assigned.hi, self.assigned.lo + 1),
                n_leaves=max(1, self.config.template_leaves // 8),
                fanout=self.config.fanout,
                sketch_granularity=self.config.sketch_granularity,
            )

    def _ingest_late(self, t: DataTuple, offset: Optional[int] = None) -> None:
        if _obs.ENABLED:
            self._m_late.inc()
        self._ensure_late_tree()
        self._late_tree.insert(t)
        self._late_bytes += t.size
        if offset is not None:
            _note_range(self._late_offsets, offset, offset + 1)
        if self._late_bytes >= self.config.chunk_bytes:
            self._commit_flush(late=True)

    # --- flushing ------------------------------------------------------------------

    def flush(self) -> Optional[str]:
        """Flush the main tree -- inline in sync mode, seal-and-submit in
        async mode; no-op when empty."""
        if not self.alive:
            raise ServerDownError(f"indexing server {self.server_id} is down")
        return self._commit_flush(late=False)

    def flush_all(self) -> List[str]:
        """Flush the main tree and any late buffer (shutdown/tests), both
        through the same :meth:`_commit_flush` path."""
        if not self.alive:
            raise ServerDownError(f"indexing server {self.server_id} is down")
        out = []
        for late in (False, True):
            chunk_id = self._commit_flush(late)
            if chunk_id is not None:
                out.append(chunk_id)
        return out

    def _commit_flush(self, late: bool) -> Optional[str]:
        """Seal the main or late tree and push it through the flush path.

        The single commit path for *every* flush -- threshold flushes,
        late-buffer overflow, ``flush_all`` -- so offset-checkpoint and
        actual-region bookkeeping cannot diverge between the main tree
        and the late buffer.  Sync mode serializes, replicates and
        registers inline (the tree resets only after the write succeeds:
        a failed DFS put propagates with the data intact for a retry).
        Async mode swaps the full tree out as a sealed snapshot, spawns
        an empty tree on the same template, and lets the background
        executor commit in arrival order; returns the chunk id the commit
        will use.
        """
        tree = self._late_tree if late else self._tree
        if tree is None or len(tree) == 0:
            return None
        if self._flush_executor is None:
            return self._flush_sync(tree, late)
        with self._seal_lock:
            nbytes = self._late_bytes if late else self._bytes_in_memory
            offset_ranges = self._late_offsets if late else self._tree_offsets
            seq, chunk_id = self._alloc_chunk(late)
            task = FlushTask(
                self, tree, late, seq, chunk_id, nbytes, offset_ranges
            )
            self._sealed.append(task)
            if late:
                self._late_tree = None
                self._late_bytes = 0
                self._late_offsets = []
            else:
                self._tree = tree.spawn()
                self._bytes_in_memory = 0
                self._tree_offsets = []
            if _obs.ENABLED:
                self._m_sealed.inc()
        # Submit outside the seal lock: backpressure may park the ingest
        # thread here while the worker needs the lock to commit (and so
        # free capacity).
        self._flush_executor.submit(task)
        self._maybe_refresh_actual()
        return chunk_id

    def _flush_sync(self, tree: TemplateBTree, late: bool) -> str:
        """Inline flush on the calling (ingest) thread: write first, then
        reset -- a failed write leaves the tree (and its offsets) intact."""
        offset_ranges = self._late_offsets if late else self._tree_offsets
        seq, chunk_id = self._alloc_chunk(late)
        leaves = [(leaf.keys, leaf.tuples) for leaf in tree.leaves()]
        self._write_and_register(
            chunk_id,
            leaves,
            tree.key_bounds(),
            tree.time_bounds(),
            len(tree),
            late,
        )
        with self._seal_lock:
            if late:
                self._late_tree = None
                self._late_bytes = 0
                self._late_offsets = []
            else:
                tree.reset_leaves()
                self._bytes_in_memory = 0
                self._tree_offsets = []
            self._advance_checkpoint(offset_ranges)
        # The flushed data is globally readable now; the actual interval
        # collapses back towards the assignment (any overlap window from a
        # repartition closes here, Section III-D).
        self._recompute_actual()
        return chunk_id

    def _execute_flush(self, task: FlushTask) -> bool:
        """Commit one sealed tree (flush-worker thread, async mode).

        Serialization runs outside the seal lock (the CPU-heavy part; the
        sealed tree is immutable), then write-replicate-register-checkpoint
        runs under it, so a concurrent :meth:`fail` observes either a
        fully committed chunk or none of it.  On error the task parks as
        ``failed`` for a supervisor retry: the sealed tree stays
        query-visible, its offsets keep the checkpoint pinned, and the
        durable log still holds every tuple -- nothing is lost either way.
        """
        with self._seal_lock:
            if task.state == "cancelled":
                return False
            task.state = "inflight"
            task.attempts += 1
        tree = task.tree
        started = _time.perf_counter() if _obs.ENABLED else 0.0
        try:
            with _trace.span(
                "flush",
                server=self.server_id,
                chunk=task.chunk_id,
                tuples=len(tree),
                mode="async",
            ):
                leaves = [(leaf.keys, leaf.tuples) for leaf in tree.leaves()]
                blob, sidecar = self._serialize_leaves(leaves)
                with self._seal_lock:
                    if task.state == "cancelled":
                        return False
                    self._store_chunk(
                        task.chunk_id,
                        blob,
                        sidecar,
                        tree.key_bounds(),
                        tree.time_bounds(),
                        len(tree),
                        task.late,
                    )
                    self._advance_checkpoint(
                        task.offset_ranges, exclude=task
                    )
                    task.state = "committed"
                    self._sealed.remove(task)
                    # Retiring sealed data may shrink the actual interval;
                    # the ingest thread applies the shrink (racing its
                    # widen-before-insert from here would be unsound).
                    self._actual_refresh_pending = True
            if _obs.ENABLED:
                self._m_flush_wall.observe(_time.perf_counter() - started)
            return True
        except Exception as exc:
            with self._seal_lock:
                if task.state != "cancelled":
                    task.state = "failed"
                    task.error = exc
            # Roll back a half-applied write so a retry starts clean (the
            # DFS is immutable: a leftover blob would collide with it).
            if self.metastore.get(f"/chunks/{task.chunk_id}") is None:
                for obj_id in (task.chunk_id, f"{task.chunk_id}.sidx"):
                    if self.dfs.exists(obj_id):
                        try:
                            self.dfs.delete(obj_id)
                        except Exception:  # pragma: no cover - best effort
                            pass
            return False

    def retry_failed_flushes(self) -> int:
        """Resubmit sealed trees whose background write failed; returns
        the number requeued (the supervisor's storage-repair pass calls
        this each cycle, so a transient DFS failure self-heals)."""
        if self._flush_executor is None or not self.alive:
            return 0
        requeued: List[FlushTask] = []
        with self._seal_lock:
            for task in self._sealed:
                if task.state == "failed":
                    task.state = "pending"
                    task.error = None
                    requeued.append(task)
        for task in requeued:
            self._flush_executor.resubmit(task)
        return len(requeued)

    def finish_flushes(self) -> None:
        """Post-drain bookkeeping on the control thread: apply any
        actual-interval shrink the background commits requested."""
        self._maybe_refresh_actual()

    def _alloc_chunk(self, late: bool, suffix_tag: str = "") -> Tuple[int, str]:
        """Allocate the next chunk sequence number at seal time, so sync
        and async pipelines mint identical chunk ids for identical data.
        A crash returns the contiguous unused tail (see :meth:`fail`)."""
        seq = self.metastore.get(self._seq_key, 0)
        self.metastore.put(self._seq_key, seq + 1)
        suffix = ("L" if late else "") + suffix_tag
        return seq, f"chunk-{self.server_id}-{seq}{suffix}"

    def _retained_floor(self, exclude: Optional[FlushTask] = None) -> float:
        """The smallest log offset still held only in memory (live trees
        and uncommitted sealed tasks); the replay checkpoint must never
        advance past it.  Caller holds the seal lock."""
        floor = float("inf")
        for ranges in (self._tree_offsets, self._late_offsets):
            if ranges:
                floor = min(floor, ranges[0][0])
        for task in self._sealed:
            if task is exclude or not task.uncommitted:
                continue
            if task.offset_ranges:
                floor = min(floor, task.offset_ranges[0][0])
        return floor

    def _advance_checkpoint(
        self, flushed_now, exclude: Optional[FlushTask] = None
    ) -> None:
        """Fold freshly flushed offset ranges into the replay checkpoint.

        The checkpoint (``/indexing/<id>/offset``) is where recovery
        starts replaying; it only advances through offsets that are (a)
        durable in committed chunks and (b) below every offset still held
        in memory.  Flushed ranges stuck above the checkpoint -- the main
        tree flushed while the late buffer holds an older offset, or an
        async commit landing while older sealed data is still in flight --
        are persisted at ``/indexing/<id>/flushed_offsets`` so recovery
        skips them during replay instead of double-ingesting.  Caller
        holds the seal lock.
        """
        if not flushed_now:
            return
        ckpt = self.metastore.get(self._offset_key, 0)
        ranges = _merge_ranges(
            [list(r) for r in (self.metastore.get(self._flushed_key) or [])]
            + [list(r) for r in flushed_now]
        )
        floor = self._retained_floor(exclude)
        residual: List[List[int]] = []
        for lo, hi in ranges:
            if lo <= ckpt < hi and hi <= floor:
                ckpt = hi
            elif hi > ckpt:
                residual.append([lo, hi])
        self.metastore.multi_put(
            [(self._offset_key, ckpt), (self._flushed_key, residual)]
        )

    def _serialize_leaves(self, leaves):
        """Encode leaf runs into the chunk blob (plus the optional
        secondary-index sidecar) -- the CPU-heavy half of a flush, safe
        outside any lock for a sealed (immutable) tree."""
        blob = serialize_chunk(
            leaves,
            self.config.sketch_granularity,
            compress=self.config.compress_chunks,
        )
        sidecar = None
        if self.config.secondary_specs:
            from repro.secondary import ChunkSecondaryIndex

            sidecar = ChunkSecondaryIndex.build(
                self.config.secondary_specs, leaves
            ).to_bytes()
        return blob, sidecar

    def _store_chunk(
        self, chunk_id, blob, sidecar, key_bounds, time_bounds, n_tuples, late
    ) -> None:
        """Replicate a serialized chunk and register its region -- the
        commit point: once the metastore record lands, the chunk is
        globally readable and its tuples durable outside the log."""
        self.dfs.put(chunk_id, blob)
        if sidecar is not None:
            from repro.secondary import sidecar_id

            self.dfs.put(sidecar_id(chunk_id), sidecar)
        self.metastore.put(
            f"/chunks/{chunk_id}",
            {
                "chunk_id": chunk_id,
                "server": self.server_id,
                "key_lo": key_bounds[0],
                "key_hi": key_bounds[1] + 1,  # half-open
                "t_lo": time_bounds[0],
                "t_hi": time_bounds[1],
                "n_tuples": n_tuples,
                "bytes": len(blob),
                "late": late,
            },
        )
        self.flush_count += 1
        if _obs.ENABLED:
            self._m_flushes.inc()
            self._m_flush_bytes.observe(len(blob))

    def _write_and_register(
        self, chunk_id, leaves, key_bounds, time_bounds, n_tuples: int, late: bool
    ) -> str:
        """Inline serialize + store (sync flushes and bulk loads), traced
        and timed as one flush."""
        started = _time.perf_counter() if _obs.ENABLED else 0.0
        with _trace.span(
            "flush", server=self.server_id, chunk=chunk_id, tuples=n_tuples
        ):
            blob, sidecar = self._serialize_leaves(leaves)
            self._store_chunk(
                chunk_id, blob, sidecar, key_bounds, time_bounds, n_tuples, late
            )
        if _obs.ENABLED:
            self._m_flush_wall.observe(_time.perf_counter() - started)
        return chunk_id

    def bulk_load_chunk(self, records: List[DataTuple]) -> Optional[str]:
        """Write a time-contiguous batch of historical records straight to
        a chunk, bypassing the in-memory tree (backfill ingestion).

        The batch should cover a bounded time window (it becomes one data
        region); records are re-sorted by key into leaf runs.  Always
        synchronous: bulk-loaded data never rides the durable log, so
        there is nothing for the async pipeline's crash-safety to protect.
        """
        if not self.alive:
            raise ServerDownError(f"indexing server {self.server_id} is down")
        if not records:
            return None
        data = sorted(records, key=lambda t: t.key)
        leaf_size = max(1, self.config.leaf_target_tuples)
        leaves = []
        for start in range(0, len(data), leaf_size):
            run = data[start : start + leaf_size]
            leaves.append(([t.key for t in run], run))
        ts_values = [t.ts for t in records]
        _seq, chunk_id = self._alloc_chunk(late=False, suffix_tag="B")
        return self._write_and_register(
            chunk_id,
            leaves,
            (data[0].key, data[-1].key),
            (min(ts_values), max(ts_values)),
            len(records),
            late=False,
        )

    # --- repartitioning --------------------------------------------------------------

    def reassign(
        self, interval: KeyInterval, migration: Optional[str] = None
    ) -> int:
        """Adopt a new assigned key interval (adaptive key partitioning).

        ``migration`` (default: the config's ``rebalance_migration``)
        decides what happens to in-flight data the new interval no longer
        covers:

        * ``"overlap"`` -- keep it (the paper's design): the *actual*
          interval may overlap neighbours until the next flush, which is
          exactly the transient the metadata server must expose for query
          correctness (Section III-D).
        * ``"flush"`` -- hand it off immediately: the in-memory trees are
          flushed so the moved keys become globally readable chunks and
          the overlap window closes at once (in async flush mode: closes
          when the seal commits).

        Returns the number of in-flight tuples migrated (flushed); 0 in
        overlap mode.  Idempotent, so a balancer may safely retry a
        reassign whose acknowledgement was lost in flight.
        """
        if not self.alive:
            raise ServerDownError(f"indexing server {self.server_id} is down")
        mode = migration or self.config.rebalance_migration
        if mode not in ("overlap", "flush"):
            raise ValueError(f"unknown migration mode {mode!r}")
        self.assigned = interval
        migrated = 0
        if mode == "flush" and self.in_memory_tuples:
            bounds = [tree.key_bounds() for tree in self.in_memory_trees()]
            outside = any(
                kb[0] < interval.lo or kb[1] >= interval.hi for kb in bounds
            )
            if outside:
                migrated = self.in_memory_tuples
                self.flush_all()  # recomputes the actual interval
        if migrated == 0:
            # Widen-only here: an insert may be in flight under the old
            # assignment, so the actual interval never shrinks on this
            # path -- only :meth:`flush` (same thread as ingest) and
            # :meth:`fail`/:meth:`recover` (quiesced) collapse it.
            with self._actual_lock:
                if interval.is_empty():
                    pass
                elif self.actual.is_empty():
                    self._set_actual(interval)
                else:
                    self._set_actual(self.actual.union_hull(interval))
        return migrated

    # --- fresh-data queries -------------------------------------------------------------

    def in_memory_trees(self) -> List[TemplateBTree]:
        """Every non-empty tree still holding in-memory data: the active
        main tree, the late buffer, and any sealed-but-uncommitted
        snapshots (query-visible until their chunks commit)."""
        with self._seal_lock:
            trees = [self._tree, self._late_tree]
            trees.extend(t.tree for t in self._sealed if t.uncommitted)
        return [t for t in trees if t is not None and len(t) > 0]

    def fresh_region(self) -> Optional[Region]:
        """The key x time region queries must consult for in-memory data.

        The left temporal edge is widened by Delta-t so tuples up to
        Delta-t late stay visible without notifying the coordinator on
        every arrival (Section IV-D).  Covers sealed trees too: sealed
        data is not globally readable until its chunk commits.
        """
        if not self.alive:
            return None
        bounds: List[Tuple[int, int]] = []
        t_lo = None
        for tree in self.in_memory_trees():
            kb = tree.key_bounds()
            tb = tree.time_bounds()
            bounds.append(kb)
            t_lo = tb[0] if t_lo is None else min(t_lo, tb[0])
        if not bounds:
            return None
        key_lo = min(b[0] for b in bounds)
        key_hi = max(b[1] for b in bounds)
        return Region(
            KeyInterval.closed(key_lo, key_hi),
            TimeInterval(t_lo - self.config.late_delta, float("inf")),
        )

    def query_fresh(self, sq: SubQuery) -> Tuple[List[DataTuple], int]:
        """Execute a subquery over in-memory data (active, late and
        sealed trees).

        Returns (tuples, tuples_examined); the caller prices the work.
        """
        if not self.alive:
            raise ServerDownError(f"indexing server {self.server_id} is down")
        if _obs.ENABLED:
            self._m_fresh_scans.inc()
        out: List[DataTuple] = []
        examined = 0
        for tree in self.in_memory_trees():
            got, stats = tree.range_query(
                sq.keys.lo,
                sq.keys.hi - 1,
                sq.times.lo,
                sq.times.hi,
                predicate=sq.predicate,
                use_sketch=self.config.use_temporal_sketch,
            )
            out.extend(got)
            examined += stats.tuples_examined
        if sq.attr_equals or sq.attr_ranges:
            out = [
                t
                for t in out
                if self._attrs_match(t, sq.attr_equals, sq.attr_ranges)
            ]
        return out, examined

    def _attrs_match(self, t: DataTuple, attr_equals, attr_ranges) -> bool:
        extractors = {
            spec.name: spec.extractor for spec in self.config.secondary_specs
        }
        for name, value in (attr_equals or {}).items():
            extract = extractors.get(name)
            if extract is None:
                raise ValueError(f"attribute {name!r} is not configured")
            if extract(t.payload) != value:
                return False
        for name, (lo, hi) in (attr_ranges or {}).items():
            extract = extractors.get(name)
            if extract is None:
                raise ValueError(f"attribute {name!r} is not configured")
            value = extract(t.payload)
            if value is None or not (lo <= value <= hi):
                return False
        return True

    # --- failure & recovery -------------------------------------------------------------

    def heartbeat(self) -> dict:
        """Liveness probe answered over the message plane (supervision).

        Raises :class:`ServerDownError` when crashed, so a missed beat and
        a dead server look identical to the failure detector.
        """
        if not self.alive:
            raise ServerDownError(f"indexing server {self.server_id} is down")
        return {
            "component": "indexing",
            "server_id": self.server_id,
            "tuples_ingested": self.tuples_ingested,
            "in_memory_tuples": self.in_memory_tuples,
        }

    def fail(self) -> None:
        """Crash: all volatile state -- the in-memory trees *and* every
        sealed-but-uncommitted snapshot -- is lost.

        Sealed tasks are cancelled under the seal lock, so an in-flight
        background commit either completed entirely (chunk registered,
        checkpoint advanced) or aborts without writing; the checkpoint
        never advanced past a cancelled task's offsets, so recovery's
        replay re-ingests exactly what was lost.  Unused chunk sequence
        numbers from the cancelled contiguous tail are returned, keeping
        post-recovery chunk ids identical to a sync-mode run.

        Idempotent -- killing an already-dead server changes nothing.
        """
        if not self.alive:
            return
        self.alive = False
        with self._seal_lock:
            cancelled = set()
            for task in self._sealed:
                if task.uncommitted:
                    task.state = "cancelled"
                    cancelled.add(task.seq)
            self._sealed = []
            if cancelled:
                # Only the contiguous tail: a cancelled seq below an
                # already-committed one must stay burned (the DFS is an
                # immutable store; reusing it would collide).
                next_seq = self.metastore.get(self._seq_key, 0)
                while next_seq - 1 in cancelled:
                    next_seq -= 1
                    cancelled.discard(next_seq)
                self.metastore.put(self._seq_key, next_seq)
            self._tree = self._new_tree(self.assigned)
            self._late_tree = None
            self._bytes_in_memory = 0
            self._late_bytes = 0
            self._tree_offsets = []
            self._late_offsets = []
            self._actual_refresh_pending = False
            self.max_ts_seen = None
        # The volatile data that widened the actual interval is gone; the
        # published region collapses to the bare assignment so queries do
        # not keep consulting a region this server no longer holds.
        self._set_actual(self.assigned)

    def recover(self, log: DurableLog, topic: str) -> int:
        """Relaunch and rebuild the in-memory tree by replaying the durable
        log from the last checkpointed offset; returns tuples replayed.

        A no-op on an alive server (returns 0): replaying the log on top
        of live in-memory state would duplicate every unflushed tuple.
        Offsets inside the persisted flushed ranges
        (``/indexing/<id>/flushed_offsets``) are skipped -- that data is
        already durable in committed chunks; replaying it would duplicate
        it.

        Before replaying, the assignment is re-synced from the metadata
        store's committed partition: if this server died mid-rebalance
        (after adopting a new interval the balancer then rolled back, or
        before a rollback reached it), its last in-memory assignment may
        disagree with what was actually installed.
        """
        if self.alive:
            return 0
        self.alive = True
        boundaries = self.metastore.get("/partition/boundaries")
        if boundaries is not None:
            from repro.core.partitioning import KeyPartition

            committed = KeyPartition(
                self.config.key_lo, self.config.key_hi, boundaries
            )
            if self.server_id < committed.n_intervals:
                self.assigned = committed.interval(self.server_id)
            else:
                self.assigned = KeyInterval(
                    self.config.key_hi, self.config.key_hi
                )
            self._set_actual(self.assigned)
        start = self.metastore.get(self._offset_key, 0)
        skip = self.metastore.get(self._flushed_key) or []
        si = 0
        replayed = 0
        for offset, t in log.replay(topic, self.server_id, start):
            while si < len(skip) and offset >= skip[si][1]:
                si += 1
            if si < len(skip) and skip[si][0] <= offset:
                continue  # durable in a committed chunk already
            try:
                self.ingest(t, offset)
            except ChunkWriteError:
                # The insert itself landed (the flush fires *after* it);
                # only the chunk write failed, and a failed sync flush
                # leaves the tree -- and its offsets -- intact for a later
                # retry.  Aborting the replay here would strand the rest
                # of the log suffix behind a transient storage fault.
                pass
            replayed += 1
        return replayed

    # --- introspection -----------------------------------------------------------------------

    @property
    def in_memory_tuples(self) -> int:
        """Tuples currently buffered (main + late + sealed trees)."""
        return sum(len(tree) for tree in self.in_memory_trees())

    @property
    def bytes_in_memory(self) -> int:
        """Logical bytes currently buffered (including sealed trees)."""
        with self._seal_lock:
            sealed = sum(t.nbytes for t in self._sealed if t.uncommitted)
        return self._bytes_in_memory + self._late_bytes + sealed

    @property
    def sealed_tasks(self) -> List[FlushTask]:
        """Snapshot of sealed-but-uncommitted flush tasks (oldest first)."""
        with self._seal_lock:
            return list(self._sealed)
