"""Simulated distributed file system (the paper's HDFS substrate).

Holds immutable chunk blobs with HDFS-style 3-way replication across the
simulated cluster, and prices every access with the cost model: a per-file
access-latency floor (the paper observes 2-50 ms per HDFS access regardless
of bytes) plus bandwidth-proportional transfer, cheaper when the reader is
co-located with a replica (chunk locality, Section IV-C).

Data-plane reads return real bytes (query correctness is exercised on real
chunk decoding); the *cost* of an access is returned separately so callers
charge their virtual clock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from time import sleep as _sleep
from typing import Dict, List, Optional

from repro.hashing import stable_hash64
from repro.obs import metrics as _obs
from repro.obs import tracing as _trace
from repro.simulation.cluster import Cluster
from repro.simulation.costs import CostModel


class ChunkNotFound(KeyError):
    """The requested chunk id is unknown to the NameNode."""


class ChunkUnavailable(RuntimeError):
    """All replicas of the chunk live on failed nodes."""


#: HDFS-flavoured alias: the error a reader sees when no replica answers.
ReplicaUnavailableError = ChunkUnavailable


@dataclass
class ChunkLocation:
    """NameNode record: object size and replica node ids."""
    chunk_id: str
    size: int
    replicas: List[int]


class SimulatedDFS:
    """NameNode metadata plus in-memory DataNode block storage."""

    def __init__(
        self,
        cluster: Cluster,
        costs: Optional[CostModel] = None,
        replication: int = 3,
        spill_dir: Optional[str] = None,
        read_sleep: float = 0.0,
    ):
        """``spill_dir`` (optional) keeps chunk bytes on the local disk
        instead of in memory -- useful for experiments whose total chunk
        volume would not fit in RAM.  The NameNode metadata stays in
        memory either way.

        ``read_sleep`` (seconds, default 0) makes every data-plane read
        *realise* an access-latency floor by sleeping, instead of only
        pricing it in simulated seconds.  The in-memory store otherwise
        hides the I/O shape HDFS has (the paper observes 2-50 ms per
        access); transport benchmarks switch this on so concurrent
        subquery fan-out has real waiting to overlap."""
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self._cluster = cluster
        self._costs = costs or CostModel()
        self._replication = replication
        self._read_sleep = read_sleep
        self._blocks: Dict[str, bytes] = {}
        self._locations: Dict[str, ChunkLocation] = {}
        self._access_counter = itertools.count()
        self._spill_dir = None
        if spill_dir is not None:
            import os

            os.makedirs(spill_dir, exist_ok=True)
            self._spill_dir = spill_dir
        self.total_bytes_written = 0
        self.total_bytes_read = 0
        reg = _obs.registry()
        self._m_writes = reg.counter("dfs.writes")
        self._m_bytes_written = reg.counter("dfs.bytes_written")
        self._m_reads = reg.counter("dfs.reads")
        self._m_bytes_read = reg.counter("dfs.bytes_read")
        self._m_local_reads = reg.counter("dfs.local_reads")
        self._m_remote_reads = reg.counter("dfs.remote_reads")
        self._m_write_cost = reg.histogram("dfs.write_cost_sim")
        self._m_read_cost = reg.histogram("dfs.read_cost_sim")

    def _spill_path(self, chunk_id: str) -> str:
        import os

        from repro.hashing import stable_hash32

        safe = f"{stable_hash32(chunk_id):08x}-{chunk_id.replace('/', '_')}"
        return os.path.join(self._spill_dir, safe)

    # --- write path ----------------------------------------------------------

    def put(self, chunk_id: str, data: bytes) -> "tuple[ChunkLocation, float]":
        """Store a chunk; returns its location and the write cost in seconds."""
        if chunk_id in self._locations:
            raise ValueError(f"chunk {chunk_id!r} already exists (immutable store)")
        replicas = self._cluster.pick_replica_nodes(
            self._replication, seed=stable_hash64(chunk_id)
        )
        location = ChunkLocation(chunk_id, len(data), replicas)
        if self._spill_dir is not None:
            with open(self._spill_path(chunk_id), "wb") as fh:
                fh.write(data)
        else:
            self._blocks[chunk_id] = bytes(data)
        self._locations[chunk_id] = location
        self.total_bytes_written += len(data)
        cost = self._costs.dfs_write(len(data))
        if _obs.ENABLED:
            self._m_writes.inc()
            self._m_bytes_written.inc(len(data))
            self._m_write_cost.observe(cost)
        return location, cost

    def delete(self, chunk_id: str) -> None:
        """Remove a chunk (metadata, bytes and spill file)."""
        if self._spill_dir is not None and chunk_id in self._locations:
            import os

            try:
                os.unlink(self._spill_path(chunk_id))
            except FileNotFoundError:
                pass
        self._blocks.pop(chunk_id, None)
        self._locations.pop(chunk_id, None)

    # --- read path -------------------------------------------------------------

    def exists(self, chunk_id: str) -> bool:
        """True when the chunk is registered."""
        return chunk_id in self._locations

    def location(self, chunk_id: str) -> ChunkLocation:
        """NameNode record: size and replica placement."""
        try:
            return self._locations[chunk_id]
        except KeyError:
            raise ChunkNotFound(chunk_id) from None

    def live_replicas(self, chunk_id: str) -> List[int]:
        """Replica nodes that are currently alive."""
        return [
            node
            for node in self.location(chunk_id).replicas
            if self._cluster.is_alive(node)
        ]

    def has_local_replica(self, chunk_id: str, node: int) -> bool:
        """True when ``node`` holds a live replica."""
        return node in self.live_replicas(chunk_id)

    def get_bytes(self, chunk_id: str) -> bytes:
        """Data plane: the chunk's raw bytes (no cost accounting)."""
        with _trace.span("dfs_read", chunk=chunk_id) as sp:
            replicas = self.live_replicas(chunk_id)
            if not replicas:
                raise ChunkUnavailable(
                    f"all replicas of {chunk_id!r} are on failed nodes"
                )
            if self._read_sleep:
                _sleep(self._read_sleep)
            if self._spill_dir is not None:
                with open(self._spill_path(chunk_id), "rb") as fh:
                    data = fh.read()
            else:
                data = self._blocks[chunk_id]
            if sp is not None:
                sp.set_attr("bytes", len(data))
                sp.set_attr("spilled", self._spill_dir is not None)
            return data

    def read_cost(self, chunk_id: str, nbytes: int, reader_node: int) -> float:
        """Seconds to read ``nbytes`` of the chunk from ``reader_node``.

        Each call models one file access: latency floor (deterministic but
        varying per access) plus transfer, with the network hop waived when
        a live replica is local.
        """
        local = self.has_local_replica(chunk_id, reader_node)
        seed = stable_hash64(chunk_id) ^ next(self._access_counter)
        self.total_bytes_read += nbytes
        cost = self._costs.dfs_read(nbytes, seed=seed, local=local)
        if _obs.ENABLED:
            self._m_reads.inc()
            self._m_bytes_read.inc(nbytes)
            (self._m_local_reads if local else self._m_remote_reads).inc()
            self._m_read_cost.observe(cost)
        return cost

    # --- introspection -----------------------------------------------------------

    def chunk_ids(self) -> List[str]:
        """Every registered object name (chunks and sidecars)."""
        return list(self._locations)

    def __len__(self) -> int:
        return len(self._locations)
