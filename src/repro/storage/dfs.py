"""Simulated distributed file system (the paper's HDFS substrate).

Holds immutable chunk blobs with HDFS-style 3-way replication across the
simulated cluster, and prices every access with the cost model: a per-file
access-latency floor (the paper observes 2-50 ms per HDFS access regardless
of bytes) plus bandwidth-proportional transfer, cheaper when the reader is
co-located with a replica (chunk locality, Section IV-C).

Data-plane reads return real bytes (query correctness is exercised on real
chunk decoding); the *cost* of an access is returned separately so callers
charge their virtual clock.

Every chunk carries a CRC32 recorded at :meth:`SimulatedDFS.put` time.
Reads verify it per replica: a corrupted copy is skipped (and repaired in
place from a healthy replica -- read repair), so a query only ever sees
bytes that pass the checksum.  :meth:`SimulatedDFS.re_replicate` restores
under-replicated chunks to the replication factor after node failures --
the half of HDFS's self-healing the paper's Section V leans on.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass
from time import sleep as _sleep
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hashing import stable_hash64
from repro.obs import metrics as _obs
from repro.obs import tracing as _trace
from repro.simulation.cluster import Cluster
from repro.simulation.costs import CostModel


class ChunkNotFound(KeyError):
    """The requested chunk id is unknown to the NameNode."""


class ChunkUnavailable(RuntimeError):
    """All replicas of the chunk live on failed nodes."""


class ChunkCorrupt(ChunkUnavailable):
    """Every live replica of the chunk fails its checksum.

    Subclasses :class:`ChunkUnavailable` so callers that already degrade
    to partial results on unreadable chunks handle corruption the same
    way -- corrupt bytes are never returned to a reader.
    """


class ChunkWriteError(RuntimeError):
    """A chunk write failed before the blob was durably stored.

    Only raised by injected write faults (:meth:`SimulatedDFS.inject_put_faults`,
    the chaos harness's ``flush_break`` event): the store is left exactly
    as if the put never happened, so the writer may retry under a fresh or
    identical chunk id.
    """


#: HDFS-flavoured alias: the error a reader sees when no replica answers.
ReplicaUnavailableError = ChunkUnavailable


@dataclass
class ChunkLocation:
    """NameNode record: object size, checksum and replica node ids."""
    chunk_id: str
    size: int
    replicas: List[int]
    checksum: int = 0


class SimulatedDFS:
    """NameNode metadata plus in-memory DataNode block storage."""

    def __init__(
        self,
        cluster: Cluster,
        costs: Optional[CostModel] = None,
        replication: int = 3,
        spill_dir: Optional[str] = None,
        read_sleep: float = 0.0,
        write_sleep: float = 0.0,
    ):
        """``spill_dir`` (optional) keeps chunk bytes on the local disk
        instead of in memory -- useful for experiments whose total chunk
        volume would not fit in RAM.  The NameNode metadata stays in
        memory either way.

        ``read_sleep`` (seconds, default 0) makes every data-plane read
        *realise* an access-latency floor by sleeping, instead of only
        pricing it in simulated seconds.  The in-memory store otherwise
        hides the I/O shape HDFS has (the paper observes 2-50 ms per
        access); transport benchmarks switch this on so concurrent
        subquery fan-out has real waiting to overlap.

        ``write_sleep`` is the write-side twin: every :meth:`put` sleeps
        that long, so flush-heavy benchmarks see a genuine ingest stall
        in sync flush mode and genuine overlap in async mode."""
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self._cluster = cluster
        self._costs = costs or CostModel()
        self._replication = replication
        self._read_sleep = read_sleep
        self._write_sleep = write_sleep
        #: Injected write faults: the next ``_put_fault_budget`` puts
        #: raise :class:`ChunkWriteError` (after hanging ``_put_fault_hang``
        #: seconds, modelling a write that stalls before erroring).
        self._put_fault_budget = 0
        self._put_fault_hang = 0.0
        self._blocks: Dict[str, bytes] = {}
        self._locations: Dict[str, ChunkLocation] = {}
        #: (chunk_id, node) -> that replica's divergent bytes.  Healthy
        #: replicas share the canonical copy; only corrupted ones own a
        #: private (bit-flipped) buffer, dropped again on read repair.
        self._replica_overrides: Dict[Tuple[str, int], bytes] = {}
        self._access_counter = itertools.count()
        self._spill_dir = None
        if spill_dir is not None:
            import os

            os.makedirs(spill_dir, exist_ok=True)
            self._spill_dir = spill_dir
        self.total_bytes_written = 0
        self.total_bytes_read = 0
        #: Bytes actually returned by data-plane reads (the wire truth);
        #: ``total_bytes_read`` is what callers *charged* via
        #: :meth:`read_cost` -- the two agree when every read is ranged.
        self.total_bytes_served = 0
        reg = _obs.registry()
        self._m_writes = reg.counter("dfs.writes")
        self._m_bytes_written = reg.counter("dfs.bytes_written")
        self._m_reads = reg.counter("dfs.reads")
        self._m_bytes_read = reg.counter("dfs.bytes_read")
        self._m_local_reads = reg.counter("dfs.local_reads")
        self._m_remote_reads = reg.counter("dfs.remote_reads")
        self._m_write_cost = reg.histogram("dfs.write_cost_sim")
        self._m_read_cost = reg.histogram("dfs.read_cost_sim")
        self._m_ranged_reads = reg.counter("dfs.ranged_reads")
        self._m_coalesced_spans = reg.counter("dfs.coalesced_spans")
        self._m_range_bytes = reg.counter("dfs.range_bytes")
        self._m_checksum_failures = reg.counter("dfs.checksum_failures")
        self._m_read_repairs = reg.counter("dfs.read_repairs")
        self._m_re_replications = reg.counter("dfs.re_replications")
        #: Callbacks fired with a chunk id when its stored state changes
        #: (deletion, replica movement); the coordinator's result cache
        #: subscribes so cached answers never outlive their chunk.
        self._invalidation_listeners: List = []

    def add_invalidation_listener(self, fn) -> None:
        """Register ``fn(chunk_id)`` to run when a chunk is deleted or its
        replica placement changes (re-replication)."""
        self._invalidation_listeners.append(fn)

    def _notify_invalidation(self, chunk_id: str) -> None:
        for fn in self._invalidation_listeners:
            fn(chunk_id)

    def _spill_path(self, chunk_id: str) -> str:
        import os

        from repro.hashing import stable_hash32

        safe = f"{stable_hash32(chunk_id):08x}-{chunk_id.replace('/', '_')}"
        return os.path.join(self._spill_dir, safe)

    # --- write path ----------------------------------------------------------

    def put(self, chunk_id: str, data: bytes) -> "tuple[ChunkLocation, float]":
        """Store a chunk; returns its location and the write cost in seconds."""
        if chunk_id in self._locations:
            raise ValueError(f"chunk {chunk_id!r} already exists (immutable store)")
        if self._put_fault_budget > 0:
            self._put_fault_budget -= 1
            if self._put_fault_hang:
                _sleep(self._put_fault_hang)
            raise ChunkWriteError(
                f"injected DFS write failure for {chunk_id!r}"
            )
        if self._write_sleep:
            _sleep(self._write_sleep)
        replicas = self._cluster.pick_replica_nodes(
            self._replication, seed=stable_hash64(chunk_id)
        )
        location = ChunkLocation(
            chunk_id, len(data), replicas, checksum=zlib.crc32(data)
        )
        if self._spill_dir is not None:
            with open(self._spill_path(chunk_id), "wb") as fh:
                fh.write(data)
        else:
            self._blocks[chunk_id] = bytes(data)
        self._locations[chunk_id] = location
        self.total_bytes_written += len(data)
        cost = self._costs.dfs_write(len(data))
        if _obs.ENABLED:
            self._m_writes.inc()
            self._m_bytes_written.inc(len(data))
            self._m_write_cost.observe(cost)
        return location, cost

    def delete(self, chunk_id: str) -> None:
        """Remove a chunk (metadata, bytes and spill file)."""
        if self._spill_dir is not None and chunk_id in self._locations:
            import os

            try:
                os.unlink(self._spill_path(chunk_id))
            except FileNotFoundError:
                pass
        self._blocks.pop(chunk_id, None)
        location = self._locations.pop(chunk_id, None)
        if location is not None:
            for node in location.replicas:
                self._replica_overrides.pop((chunk_id, node), None)
            self._notify_invalidation(chunk_id)

    # --- read path -------------------------------------------------------------

    def exists(self, chunk_id: str) -> bool:
        """True when the chunk is registered."""
        return chunk_id in self._locations

    def location(self, chunk_id: str) -> ChunkLocation:
        """NameNode record: size and replica placement."""
        try:
            return self._locations[chunk_id]
        except KeyError:
            raise ChunkNotFound(chunk_id) from None

    def live_replicas(self, chunk_id: str) -> List[int]:
        """Replica nodes that are currently alive."""
        return [
            node
            for node in self.location(chunk_id).replicas
            if self._cluster.is_alive(node)
        ]

    def has_local_replica(self, chunk_id: str, node: int) -> bool:
        """True when ``node`` holds a live replica."""
        return node in self.live_replicas(chunk_id)

    def _canonical_bytes(self, chunk_id: str) -> bytes:
        if self._spill_dir is not None:
            with open(self._spill_path(chunk_id), "rb") as fh:
                return fh.read()
        return self._blocks[chunk_id]

    def _replica_bytes(self, chunk_id: str, node: int) -> bytes:
        override = self._replica_overrides.get((chunk_id, node))
        if override is not None:
            return override
        return self._canonical_bytes(chunk_id)

    def _healthy_bytes(self, chunk_id: str) -> Tuple[bytes, List[int]]:
        """Resolve the chunk to one checksum-verified replica copy.

        Each live replica's copy is verified against the checksum recorded
        at write time; a corrupted copy is skipped and the read falls back
        to the next replica.  Once a healthy copy is found, every corrupted
        copy encountered on the way is overwritten from it (read repair).
        Returns ``(data, repaired_nodes)``; raises :class:`ChunkCorrupt`
        when *every* live replica fails its checksum -- corrupt bytes never
        reach a caller -- and :class:`ChunkUnavailable` when no replica is
        on an alive node.  One call models one file access: every
        data-plane read (whole-blob or ranged) funnels through it.
        """
        location = self.location(chunk_id)
        replicas = self.live_replicas(chunk_id)
        if not replicas:
            raise ChunkUnavailable(
                f"all replicas of {chunk_id!r} are on failed nodes"
            )
        if self._read_sleep:
            _sleep(self._read_sleep)
        data = None
        bad_nodes: List[int] = []
        for node in replicas:
            candidate = self._replica_bytes(chunk_id, node)
            if zlib.crc32(candidate) == location.checksum:
                data = candidate
                break
            bad_nodes.append(node)
            if _obs.ENABLED:
                self._m_checksum_failures.inc()
        if data is None:
            raise ChunkCorrupt(
                f"every live replica of {chunk_id!r} fails its checksum "
                f"(nodes {bad_nodes})"
            )
        for node in bad_nodes:
            # Read repair: the healthy copy replaces the corrupt one.
            self._replica_overrides.pop((chunk_id, node), None)
            if _obs.ENABLED:
                self._m_read_repairs.inc()
        return data, bad_nodes

    def get_bytes(self, chunk_id: str) -> bytes:
        """Data plane: the chunk's raw bytes (no cost accounting).

        Replica resolution, checksum verification and read repair per
        :meth:`_healthy_bytes`.
        """
        with _trace.span("dfs_read", chunk=chunk_id) as sp:
            data, bad_nodes = self._healthy_bytes(chunk_id)
            self.total_bytes_served += len(data)
            if sp is not None:
                sp.set_attr("bytes", len(data))
                sp.set_attr("spilled", self._spill_dir is not None)
                if bad_nodes:
                    sp.set_attr("read_repaired", len(bad_nodes))
            return data

    def get_prefix(self, chunk_id: str) -> bytes:
        """Data plane: just the chunk's self-describing prefix (header +
        directory + sketches) in one access.

        The ranged analogue of opening the file and reading sequentially
        until the directory says the leaf blocks begin: the prefix length
        lives in the first directory entry, so the server can stop there
        without the caller knowing the length up front.  Same replica /
        checksum / read-repair semantics as :meth:`get_bytes`.
        """
        from repro.storage.chunk import prefix_length

        with _trace.span("dfs_read_prefix", chunk=chunk_id) as sp:
            data, bad_nodes = self._healthy_bytes(chunk_id)
            out = data[: prefix_length(data)]
            self.total_bytes_served += len(out)
            if _obs.ENABLED:
                self._m_ranged_reads.inc()
                self._m_range_bytes.inc(len(out))
            if sp is not None:
                sp.set_attr("bytes", len(out))
                if bad_nodes:
                    sp.set_attr("read_repaired", len(bad_nodes))
            return out

    def get_range(self, chunk_id: str, offset: int, length: int) -> bytes:
        """Data plane: ``length`` bytes of the chunk starting at
        ``offset`` -- one file access (one latency floor), transferring
        only the requested range.  Same replica / checksum / read-repair
        semantics as :meth:`get_bytes`; the whole replica copy is still
        verified, mirroring HDFS reading full checksum windows.
        """
        with _trace.span(
            "dfs_read_range", chunk=chunk_id, offset=offset, length=length
        ):
            data, _bad = self._healthy_bytes(chunk_id)
            if offset < 0 or length < 0 or offset + length > len(data):
                raise ValueError(
                    f"range [{offset}, {offset + length}) outside "
                    f"{chunk_id!r} (size {len(data)})"
                )
            out = data[offset : offset + length]
            self.total_bytes_served += len(out)
            if _obs.ENABLED:
                self._m_ranged_reads.inc()
                self._m_coalesced_spans.inc()
                self._m_range_bytes.inc(len(out))
            return out

    def get_ranges(
        self, chunk_id: str, spans: Sequence[Tuple[int, int]]
    ) -> List[bytes]:
        """Data plane: several ``(offset, length)`` ranges of one chunk in
        a single file access (one latency floor shared by every span --
        the payoff of coalescing).  Returns the spans' bytes in order.
        """
        with _trace.span(
            "dfs_read_ranges", chunk=chunk_id, spans=len(spans)
        ) as sp:
            data, _bad = self._healthy_bytes(chunk_id)
            out: List[bytes] = []
            for offset, length in spans:
                if offset < 0 or length < 0 or offset + length > len(data):
                    raise ValueError(
                        f"range [{offset}, {offset + length}) outside "
                        f"{chunk_id!r} (size {len(data)})"
                    )
                out.append(data[offset : offset + length])
            served = sum(len(b) for b in out)
            self.total_bytes_served += served
            if _obs.ENABLED:
                self._m_ranged_reads.inc()
                self._m_coalesced_spans.inc(len(spans))
                self._m_range_bytes.inc(served)
            if sp is not None:
                sp.set_attr("bytes", served)
            return out

    def read_cost(self, chunk_id: str, nbytes: int, reader_node: int) -> float:
        """Seconds to read ``nbytes`` of the chunk from ``reader_node``.

        Each call models one file access: latency floor (deterministic but
        varying per access) plus transfer, with the network hop waived when
        a live replica is local.
        """
        local = self.has_local_replica(chunk_id, reader_node)
        seed = stable_hash64(chunk_id) ^ next(self._access_counter)
        self.total_bytes_read += nbytes
        cost = self._costs.dfs_read(nbytes, seed=seed, local=local)
        if _obs.ENABLED:
            self._m_reads.inc()
            self._m_bytes_read.inc(nbytes)
            (self._m_local_reads if local else self._m_remote_reads).inc()
            self._m_read_cost.observe(cost)
        return cost

    # --- write-fault injection -----------------------------------------------

    def inject_put_faults(self, times: int = 1, hang: float = 0.0) -> None:
        """Make the next ``times`` puts raise :class:`ChunkWriteError`
        (the chaos harness's ``flush_break``).  ``hang`` makes each
        failing put sleep that long first -- a write that stalls before
        the error surfaces, the slow-DFS half of the palette entry."""
        if times < 0:
            raise ValueError("times must be >= 0")
        self._put_fault_budget = times
        self._put_fault_hang = hang

    def clear_put_faults(self) -> None:
        """Disarm any remaining injected write faults (chaos heal)."""
        self._put_fault_budget = 0
        self._put_fault_hang = 0.0

    # --- corruption & repair -------------------------------------------------

    def corrupt_replica(self, chunk_id: str, node: Optional[int] = None) -> int:
        """Flip a byte in one replica's copy (fault injection for tests and
        the chaos harness).  ``node`` defaults to the first replica; returns
        the node whose copy was corrupted.  Raises :class:`ValueError` when
        the node holds no replica of the chunk."""
        location = self.location(chunk_id)
        if node is None:
            node = location.replicas[0]
        if node not in location.replicas:
            raise ValueError(
                f"node {node} holds no replica of {chunk_id!r} "
                f"(replicas: {location.replicas})"
            )
        data = bytearray(self._canonical_bytes(chunk_id))
        if not data:
            raise ValueError(f"chunk {chunk_id!r} is empty")
        flip_at = stable_hash64(chunk_id) % len(data)
        data[flip_at] ^= 0xFF
        self._replica_overrides[(chunk_id, node)] = bytes(data)
        return node

    def corrupted_replicas(self, chunk_id: str) -> List[int]:
        """Nodes whose copy of the chunk currently fails its checksum."""
        location = self.location(chunk_id)
        return [
            node
            for node in location.replicas
            if zlib.crc32(self._replica_bytes(chunk_id, node))
            != location.checksum
        ]

    def scrub(self) -> int:
        """Verify every replica copy and repair the corrupt ones from the
        canonical bytes; returns the number of copies repaired.  The
        background half of read repair -- :meth:`get_bytes` only fixes the
        copies a read happens to touch."""
        repaired = 0
        for (chunk_id, node) in list(self._replica_overrides):
            location = self._locations.get(chunk_id)
            if location is None:
                self._replica_overrides.pop((chunk_id, node), None)
                continue
            data = self._replica_overrides[(chunk_id, node)]
            if zlib.crc32(data) != location.checksum:
                self._replica_overrides.pop((chunk_id, node))
                repaired += 1
                if _obs.ENABLED:
                    self._m_checksum_failures.inc()
                    self._m_read_repairs.inc()
        return repaired

    def under_replicated(self) -> List[str]:
        """Chunk ids with fewer live replicas than the replication factor
        currently allows (capped by the number of alive nodes)."""
        n_alive = sum(1 for n in self._cluster.nodes if n.alive)
        target = min(self._replication, n_alive)
        return [
            chunk_id
            for chunk_id in self._locations
            if len(self.live_replicas(chunk_id)) < target
        ]

    def re_replicate(self) -> int:
        """Restore under-replicated chunks to the replication factor.

        For each chunk with fewer live replicas than
        ``min(replication, alive nodes)``, copies are placed on alive nodes
        not already holding one (replicas on failed nodes stay registered:
        they come back if the node revives, exactly like HDFS block
        reports).  Returns the number of new replica copies created.
        Chunks with *no* live replica cannot be repaired and are skipped.
        """
        n_alive = sum(1 for n in self._cluster.nodes if n.alive)
        target = min(self._replication, n_alive)
        created = 0
        for chunk_id, location in self._locations.items():
            live = [
                n for n in location.replicas if self._cluster.is_alive(n)
            ]
            if not live or len(live) >= target:
                continue
            candidates = [
                n.node_id
                for n in self._cluster.nodes
                if n.alive and n.node_id not in location.replicas
            ]
            rng_seed = stable_hash64(chunk_id) ^ len(location.replicas)
            candidates.sort(key=lambda n: stable_hash64(f"{rng_seed}-{n}"))
            moved = False
            for node in candidates[: target - len(live)]:
                location.replicas.append(node)
                created += 1
                moved = True
                self.total_bytes_written += location.size
                if _obs.ENABLED:
                    self._m_re_replications.inc()
                    self._m_bytes_written.inc(location.size)
            if moved:
                # Replica placement changed: cached locality-sensitive
                # state for this chunk must not be trusted.
                self._notify_invalidation(chunk_id)
        return created

    # --- introspection -----------------------------------------------------------

    def chunk_ids(self) -> List[str]:
        """Every registered object name (chunks and sidecars)."""
        return list(self._locations)

    def __len__(self) -> int:
        return len(self._locations)
