"""Immutable data-chunk format.

When an indexing server's in-memory template B+ tree reaches the chunk-size
threshold it is serialized into one immutable blob and written to the
distributed file system (paper Section III-A).  The layout keeps a leaf
directory up front so a subquery can read *only* the leaf blocks whose key
range and temporal sketch match -- the property behind Figure 11b, where
bytes read (and hence latency) scale with chunk size for a fixed key
selectivity.

Layout (little-endian)::

    [header]     magic, version, n_leaves, n_tuples,
                 key_lo, key_hi, t_lo, t_hi, sketch granularity/hashes
    [directory]  per leaf: first_key, last_key, n_tuples, block_offset,
                 block_length, sketch_offset, sketch_length, block_crc32
    [sketches]   per leaf: temporal bloom filter bit arrays
    [blocks]     per leaf: packed (key, ts) pairs + pickled payload list

Offsets are absolute so readers can fetch (header + directory + sketches)
first and then exactly the blocks they need.
"""

from __future__ import annotations

import pickle
import struct
import time as _time
import zlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bloom.temporal import TemporalSketch
from repro.core.model import DataTuple, KeyInterval, Predicate, Region, TimeInterval
from repro.obs import metrics as _obs

# Module-level instrument handles: resolved at import, poked only when the
# registry is enabled (serialize/decode are per-flush / per-leaf paths).
_M_SERIALIZE_WALL = _obs.registry().histogram("chunk.serialize_wall")
_M_SERIALIZED_BYTES = _obs.registry().counter("chunk.serialized_bytes")
_M_LEAVES_DECODED = _obs.registry().counter("chunk.leaves_decoded")
_M_BYTES_DECODED = _obs.registry().counter("chunk.bytes_decoded")
_M_PREFIX_PARSES = _obs.registry().counter("chunk.prefix_parses")

_MAGIC = b"WWCK"
_VERSION = 2
_HEADER = struct.Struct("<4sHHqqqqddfHI")
# header fields: magic, version, reserved, n_leaves, n_tuples, key_lo,
#                key_hi, t_lo, t_hi, sketch_granularity, sketch_hashes,
#                prefix_crc32 (over header-with-zeroed-crc + directory +
#                sketches, so bounds/sketch corruption is detected loudly)
_DIR_ENTRY = struct.Struct("<qqqqqqqQ")
# first_key, last_key, n_tuples, block_off, block_len, sketch_off,
# sketch_len, block_crc32
_PAIR = struct.Struct("<qd")


def prefix_length(data: bytes) -> int:
    """Byte length of the chunk's prefix (header + directory + sketches).

    The first leaf block starts exactly where the prefix ends, so only the
    header and the first directory entry are needed -- a ranged reader (or
    the DFS serving one) can discover how many bytes to transfer without
    touching the rest of the blob.  ``data`` must start at chunk offset 0
    and cover at least the header plus one directory entry.
    """
    magic, version, _flags, n_leaves = _HEADER.unpack_from(data, 0)[:4]
    if magic != _MAGIC:
        raise ValueError("not a chunk: bad magic")
    if version != _VERSION:
        raise ValueError(f"unsupported chunk version {version}")
    if n_leaves == 0:
        return _HEADER.size
    first = _DIR_ENTRY.unpack_from(data, _HEADER.size)
    return first[3]  # block_offset of leaf 0: where the prefix ends


@dataclass
class LeafSpan:
    """One coalesced byte range covering consecutive leaf blocks."""

    offset: int
    length: int
    entries: "List[LeafEntry]"

    @property
    def end(self) -> int:
        return self.offset + self.length


def coalesce_entries(
    entries: "Sequence[LeafEntry]", gap_bytes: int = 0
) -> "List[LeafSpan]":
    """Merge directory entries into ranged-read spans.

    Entries are sorted by block offset; an entry whose block starts within
    ``gap_bytes`` of the previous span's end joins that span (the gap bytes
    ride along in one access instead of paying another access floor).
    """
    spans: "List[LeafSpan]" = []
    for entry in sorted(entries, key=lambda e: e.block_offset):
        if spans and entry.block_offset - spans[-1].end <= gap_bytes:
            last = spans[-1]
            last.length = (
                max(last.end, entry.block_offset + entry.block_length)
                - last.offset
            )
            last.entries.append(entry)
        else:
            spans.append(
                LeafSpan(entry.block_offset, entry.block_length, [entry])
            )
    return spans


@dataclass(frozen=True)
class ChunkMeta:
    """Decoded header: the chunk's data region and size facts."""

    n_leaves: int
    n_tuples: int
    keys: KeyInterval
    times: TimeInterval
    sketch_granularity: float
    sketch_hashes: int

    @property
    def region(self) -> Region:
        """The chunk's data region (key x time rectangle)."""
        return Region(self.keys, self.times)


def serialize_chunk(
    leaves: Sequence[Tuple[List[int], List[DataTuple]]],
    sketch_granularity: float = 1.0,
    compress: bool = False,
) -> bytes:
    """Serialize leaf runs (parallel ``keys``/``tuples`` arrays, key-ordered
    across leaves) into a chunk blob.  Empty leaves are dropped.

    ``compress=True`` deflates each leaf block independently (leaves stay
    individually addressable, the property selective reads depend on);
    block CRCs cover the stored -- compressed -- bytes.
    """
    started = _time.perf_counter() if _obs.ENABLED else 0.0
    runs = [(keys, tuples) for keys, tuples in leaves if keys]
    n_tuples = sum(len(keys) for keys, _ in runs)
    key_lo = runs[0][0][0] if runs else 0
    key_hi = runs[-1][0][-1] if runs else 0
    t_lo = float("inf")
    t_hi = float("-inf")

    sketches: List[bytes] = []
    blocks: List[bytes] = []
    sketch_hashes = 1
    for keys, tuples in runs:
        sketch = TemporalSketch(
            granularity=sketch_granularity, expected_items=max(64, len(tuples))
        )
        timestamps = [t.ts for t in tuples]
        payloads = [t.payload for t in tuples]
        if timestamps:
            leaf_lo = min(timestamps)
            leaf_hi = max(timestamps)
            if leaf_lo < t_lo:
                t_lo = leaf_lo
            if leaf_hi > t_hi:
                t_hi = leaf_hi
        sketch.add_timestamps(timestamps)
        sketch_hashes = sketch.n_hashes
        sketches.append(sketch.to_bytes())
        # map() drives _PAIR.pack from C over the two columns -- no
        # per-tuple generator frame.
        pairs = b"".join(map(_PAIR.pack, keys, timestamps))
        block = pairs + pickle.dumps(payloads, protocol=4)
        if compress:
            block = zlib.compress(block, level=1)
        blocks.append(block)
    if not runs:
        t_lo = t_hi = 0.0

    flags = 1 if compress else 0

    def pack_header(prefix_crc: int) -> bytes:
        return _HEADER.pack(
            _MAGIC,
            _VERSION,
            flags,
            len(runs),
            n_tuples,
            key_lo,
            key_hi,
            t_lo,
            t_hi,
            sketch_granularity,
            sketch_hashes,
            prefix_crc,
        )

    header = pack_header(0)
    dir_size = _DIR_ENTRY.size * len(runs)
    sketch_base = len(header) + dir_size
    block_base = sketch_base + sum(len(s) for s in sketches)

    directory = bytearray()
    sketch_off = sketch_base
    block_off = block_base
    for (keys, tuples), sketch_bytes, block in zip(runs, sketches, blocks):
        directory += _DIR_ENTRY.pack(
            keys[0],
            keys[-1],
            len(keys),
            block_off,
            len(block),
            sketch_off,
            len(sketch_bytes),
            zlib.crc32(block),
        )
        sketch_off += len(sketch_bytes)
        block_off += len(block)

    prefix_crc = zlib.crc32(b"".join([header, bytes(directory), *sketches]))
    blob = b"".join([pack_header(prefix_crc), bytes(directory), *sketches, *blocks])
    if _obs.ENABLED:
        _M_SERIALIZE_WALL.observe(_time.perf_counter() - started)
        _M_SERIALIZED_BYTES.inc(len(blob))
    return blob


class ChunkCorruption(ValueError):
    """A leaf block failed its CRC check (bit rot / truncated replica)."""


@dataclass
class LeafEntry:
    """One decoded directory row (offsets, key fence, CRC)."""
    index: int
    first_key: int
    last_key: int
    n_tuples: int
    block_offset: int
    block_length: int
    sketch_offset: int
    sketch_length: int
    block_crc32: int


class ChunkReader:
    """Random-access reader over a serialized chunk.

    Tracks ``bytes_read`` as it goes: the header+directory+sketch prefix is
    charged once, then each leaf block charged when actually decoded --
    exactly the I/O a real reader doing ranged DFS reads would issue.

    A long-lived reader (query-server prefix cache) can call
    :meth:`drop_block_bytes` to keep only the prefix in memory and
    :meth:`retain_block` to pin individual leaf blocks, so the bytes it
    actually retains match what the cache charges for.  ``source`` is an
    optional zero-argument callable returning the full chunk bytes, used
    to lazily re-fetch blocks that were dropped; ``range_source`` is its
    ranged sibling -- ``range_source(offset, length)`` returns exactly
    those bytes, so a re-fetch transfers one block instead of the blob.
    """

    def __init__(self, data: bytes, source=None, range_source=None):
        self._data = data
        self._source = source
        self._range_source = range_source
        self._blocks: "dict[int, bytes]" = {}
        (
            magic,
            version,
            flags,
            n_leaves,
            n_tuples,
            key_lo,
            key_hi,
            t_lo,
            t_hi,
            granularity,
            sketch_hashes,
            prefix_crc,
        ) = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise ValueError("not a chunk: bad magic")
        if version != _VERSION:
            raise ValueError(f"unsupported chunk version {version}")
        self.compressed = bool(flags & 1)
        self.meta = ChunkMeta(
            n_leaves=n_leaves,
            n_tuples=n_tuples,
            keys=KeyInterval(key_lo, key_hi + 1) if n_tuples else KeyInterval(0, 0),
            times=TimeInterval(t_lo, t_hi),
            sketch_granularity=granularity,
            sketch_hashes=sketch_hashes,
        )
        self._entries: List[LeafEntry] = []
        offset = _HEADER.size
        for i in range(n_leaves):
            fields = _DIR_ENTRY.unpack_from(data, offset)
            self._entries.append(LeafEntry(i, *fields))
            offset += _DIR_ENTRY.size
        sketch_bytes = sum(e.sketch_length for e in self._entries)
        self.prefix_bytes = _HEADER.size + n_leaves * _DIR_ENTRY.size + sketch_bytes
        # Verify the prefix (header + directory + sketches) against the
        # stored CRC: corrupted key bounds or sketch bits would otherwise
        # silently drop results.
        zeroed = bytearray(data[: self.prefix_bytes])
        zeroed[_HEADER.size - 4 : _HEADER.size] = b"\x00\x00\x00\x00"
        if zlib.crc32(bytes(zeroed)) != prefix_crc:
            raise ChunkCorruption("chunk prefix failed its CRC check")
        self.bytes_read = self.prefix_bytes
        self.leaves_read = 0
        self.leaves_skipped = 0
        if _obs.ENABLED:
            _M_PREFIX_PARSES.inc()

    # --- directory-level pruning --------------------------------------------

    def candidate_leaves(self, key_lo: int, key_hi: int) -> List[LeafEntry]:
        """Directory entries whose key span intersects [key_lo, key_hi]."""
        firsts = [e.first_key for e in self._entries]
        start = bisect_left(firsts, key_lo)
        # The previous leaf may still span key_lo.
        if start > 0 and self._entries[start - 1].last_key >= key_lo:
            start -= 1
        out = []
        for entry in self._entries[start:]:
            if entry.first_key > key_hi:
                break
            if entry.last_key >= key_lo:
                out.append(entry)
        return out

    def sketch_for(self, entry: LeafEntry) -> TemporalSketch:
        """Deserialize the leaf's temporal sketch from the prefix."""
        raw = self._data[entry.sketch_offset : entry.sketch_offset + entry.sketch_length]
        return TemporalSketch.from_bytes(
            raw,
            self.meta.sketch_hashes,
            self.meta.sketch_granularity,
            n_added=entry.n_tuples,
        )

    def read_leaf(self, entry: LeafEntry) -> List[DataTuple]:
        """Decode one leaf block (charges its bytes; verifies its CRC)."""
        self.bytes_read += entry.block_length
        self.leaves_read += 1
        if _obs.ENABLED:
            _M_LEAVES_DECODED.inc()
            _M_BYTES_DECODED.inc(entry.block_length)
        block = self._block_bytes(entry)
        if zlib.crc32(block) != entry.block_crc32:
            raise ChunkCorruption(
                f"leaf {entry.index}: CRC mismatch (corrupted block)"
            )
        if self.compressed:
            try:
                block = zlib.decompress(block)
            except zlib.error as exc:
                raise ChunkCorruption(
                    f"leaf {entry.index}: failed to decompress ({exc})"
                ) from exc
        pair_bytes = _PAIR.size * entry.n_tuples
        tuples: List[DataTuple] = []
        payloads = pickle.loads(block[pair_bytes:])
        for i in range(entry.n_tuples):
            key, ts = _PAIR.unpack_from(block, i * _PAIR.size)
            tuples.append(DataTuple(key, ts, payloads[i]))
        return tuples

    # --- block-byte retention -------------------------------------------------

    def _block_bytes(self, entry: LeafEntry) -> bytes:
        """The stored bytes of one leaf block, wherever they live now."""
        pinned = self._blocks.get(entry.index)
        if pinned is not None:
            return pinned
        start = entry.block_offset
        end = start + entry.block_length
        if len(self._data) >= end:
            return self._data[start:end]
        if self._range_source is not None:
            return self._range_source(start, entry.block_length)
        if self._source is None:
            raise ValueError(
                "leaf block bytes were dropped and no re-fetch source is set"
            )
        data = self._source()
        return data[start:end]

    def has_block(self, entry: LeafEntry) -> bool:
        """True when the leaf's stored bytes are on hand (pinned or still
        inside the retained data) -- reading it transfers nothing."""
        return (
            entry.index in self._blocks
            or len(self._data) >= entry.block_offset + entry.block_length
        )

    @property
    def retained_bytes(self) -> int:
        """Bytes this reader actually holds (prefix or data + pinned blocks)."""
        return len(self._data) + sum(len(b) for b in self._blocks.values())

    def drop_block_bytes(self) -> None:
        """Keep only the prefix in memory; blocks re-fetch via ``source``.

        Long-lived cached readers call this so the cache's per-unit charge
        (``prefix_bytes``) matches what is actually retained.
        """
        if len(self._data) > self.prefix_bytes:
            self._data = self._data[: self.prefix_bytes]

    def retain_blocks(
        self, entries: Sequence[LeafEntry], data: Optional[bytes] = None
    ) -> None:
        """Pin the stored bytes of the given leaf blocks.

        ``data``, when given, is the full chunk bytes to slice from (one
        fetch shared across entries); otherwise blocks come from the
        retained data or one ``source`` call.
        """
        missing = [e for e in entries if e.index not in self._blocks]
        if not missing:
            return
        if data is None:
            end_needed = max(e.block_offset + e.block_length for e in missing)
            if len(self._data) >= end_needed:
                data = self._data
            elif self._source is not None:
                data = self._source()
            elif self._range_source is not None:
                for e in missing:
                    self._blocks[e.index] = self._range_source(
                        e.block_offset, e.block_length
                    )
                return
            else:
                raise ValueError(
                    "leaf block bytes were dropped and no re-fetch source is set"
                )
        for e in missing:
            self._blocks[e.index] = data[
                e.block_offset : e.block_offset + e.block_length
            ]

    def pin_span(self, offset: int, data: bytes) -> List[int]:
        """Pin every leaf block fully contained in ``data`` (the chunk
        bytes starting at absolute ``offset`` -- one coalesced ranged
        read); returns the newly pinned leaf indices."""
        end = offset + len(data)
        pinned: List[int] = []
        for entry in self._entries:
            if entry.index in self._blocks:
                continue
            lo = entry.block_offset
            hi = lo + entry.block_length
            if lo >= offset and hi <= end:
                self._blocks[entry.index] = data[lo - offset : hi - offset]
                pinned.append(entry.index)
        return pinned

    def release_block(self, index: int) -> None:
        """Unpin one leaf block's bytes (cache eviction)."""
        self._blocks.pop(index, None)

    # --- subquery execution ---------------------------------------------------

    def query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float = float("-inf"),
        t_hi: float = float("inf"),
        predicate: Optional[Predicate] = None,
        use_sketch: bool = True,
    ) -> List[DataTuple]:
        """All matching tuples; temporal sketches prune leaf reads."""
        out: List[DataTuple] = []
        for entry in self.candidate_leaves(key_lo, key_hi):
            if use_sketch and not self.sketch_for(entry).might_overlap(t_lo, t_hi):
                self.leaves_skipped += 1
                continue
            for t in self.read_leaf(entry):
                if (
                    key_lo <= t.key <= key_hi
                    and t_lo <= t.ts <= t_hi
                    and (predicate is None or predicate(t))
                ):
                    out.append(t)
        return out

    def all_tuples(self) -> List[DataTuple]:
        """Decode every leaf (integrity-checked)."""
        out: List[DataTuple] = []
        for entry in self._entries:
            out.extend(self.read_leaf(entry))
        return out
