"""Chunk serialization format and the simulated distributed file system."""

from repro.storage.chunk import (
    ChunkCorruption,
    ChunkMeta,
    ChunkReader,
    LeafEntry,
    LeafSpan,
    coalesce_entries,
    prefix_length,
    serialize_chunk,
)
from repro.storage.dfs import (
    ChunkCorrupt,
    ChunkLocation,
    ChunkNotFound,
    ChunkUnavailable,
    ChunkWriteError,
    ReplicaUnavailableError,
    SimulatedDFS,
)

__all__ = [
    "ChunkCorruption",
    "ChunkMeta",
    "ChunkReader",
    "LeafEntry",
    "LeafSpan",
    "coalesce_entries",
    "prefix_length",
    "serialize_chunk",
    "ChunkCorrupt",
    "ChunkLocation",
    "ChunkNotFound",
    "ChunkUnavailable",
    "ChunkWriteError",
    "ReplicaUnavailableError",
    "SimulatedDFS",
]
