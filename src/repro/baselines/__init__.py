"""Comparison baselines: LSM storage engine, HBase-like and Druid-like."""

from repro.baselines.druid_like import DruidLike
from repro.baselines.hbase_like import HBaseLike
from repro.baselines.lsm import LSMStats, LSMStore, SSTable

__all__ = ["DruidLike", "HBaseLike", "LSMStore", "LSMStats", "SSTable"]
