"""Log-structured merge tree: the storage engine under the HBase baseline.

A faithful (if compact) leveled LSM: writes land in a sorted in-memory
memtable; full memtables flush to immutable SSTables in level 0; when a
level exceeds its budget, its tables are merge-compacted into the next
level (whose tables are key-disjoint).  Because this is an append-only
comparison (Waterwheel never overwrites), compaction preserves duplicates.

The point of building this for real -- rather than assuming a write-amp
constant -- is that the *measured* write amplification
(``stats.write_amplification``) feeds the insertion-throughput comparison
of Figure 15: every ingested byte is re-merged once per level it descends
through, which is precisely the "significant data merging overhead"
Waterwheel's fresh/historical isolation avoids.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.model import DataTuple, Predicate


@dataclass
class SSTable:
    """Immutable sorted run with key fencing."""

    tuples: List[DataTuple]
    level: int

    def __post_init__(self):
        self.min_key = self.tuples[0].key if self.tuples else 0
        self.max_key = self.tuples[-1].key if self.tuples else -1
        self.size_bytes = sum(t.size for t in self.tuples)

    def overlaps(self, key_lo: int, key_hi: int) -> bool:
        """True when the table's key fence intersects the range."""
        return self.min_key <= key_hi and self.max_key >= key_lo

    def scan(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float,
        t_hi: float,
        predicate: Optional[Predicate],
        out: list,
    ) -> int:
        """Seek to key_lo, scan to key_hi; returns tuples examined."""
        keys = [t.key for t in self.tuples]
        start = bisect_left(keys, key_lo)
        stop = bisect_right(keys, key_hi)
        examined = 0
        for i in range(start, stop):
            t = self.tuples[i]
            examined += 1
            if t_lo <= t.ts <= t_hi and (predicate is None or predicate(t)):
                out.append(t)
        return examined


@dataclass
class LSMStats:
    """Write-path accounting; exposes the measured write amplification."""
    tuples_inserted: int = 0
    bytes_ingested: int = 0
    bytes_flushed: int = 0
    bytes_compacted: int = 0
    memtable_flushes: int = 0
    compactions: int = 0

    @property
    def write_amplification(self) -> float:
        """Total bytes physically written per byte ingested."""
        if self.bytes_ingested == 0:
            return 1.0
        return (self.bytes_flushed + self.bytes_compacted) / self.bytes_ingested


@dataclass
class ScanStats:
    """Read-path accounting for one range query."""
    sstables_touched: int = 0
    tuples_examined: int = 0
    memtable_examined: int = 0


class LSMStore:
    """Leveled LSM store over :class:`DataTuple` records."""

    def __init__(
        self,
        memtable_bytes: int = 1 << 20,
        level0_tables: int = 4,
        level_ratio: int = 10,
    ):
        if memtable_bytes < 1:
            raise ValueError("memtable_bytes must be positive")
        if level0_tables < 1 or level_ratio < 2:
            raise ValueError("bad level sizing")
        self.memtable_bytes = memtable_bytes
        self.level0_tables = level0_tables
        self.level_ratio = level_ratio
        self._memtable: List[DataTuple] = []  # kept key-sorted
        self._memtable_keys: List[int] = []
        self._memtable_size = 0
        self._levels: List[List[SSTable]] = [[]]
        self.stats = LSMStats()

    # --- writes ----------------------------------------------------------------

    def insert(self, t: DataTuple) -> None:
        """Insert into the memtable; flushes when full."""
        pos = bisect_right(self._memtable_keys, t.key)
        self._memtable_keys.insert(pos, t.key)
        self._memtable.insert(pos, t)
        self._memtable_size += t.size
        self.stats.tuples_inserted += 1
        self.stats.bytes_ingested += t.size
        if self._memtable_size >= self.memtable_bytes:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Write the memtable as a level-0 SSTable and maybe compact."""
        if not self._memtable:
            return
        table = SSTable(self._memtable, level=0)
        self._memtable = []
        self._memtable_keys = []
        self._memtable_size = 0
        self._levels[0].append(table)
        self.stats.memtable_flushes += 1
        self.stats.bytes_flushed += table.size_bytes
        self._maybe_compact(0)

    def _level_budget_bytes(self, level: int) -> int:
        if level == 0:
            return self.level0_tables * self.memtable_bytes
        return self.memtable_bytes * (self.level_ratio ** level) * self.level0_tables

    def _maybe_compact(self, level: int) -> None:
        while True:
            tables = self._levels[level]
            used = sum(t.size_bytes for t in tables)
            if used <= self._level_budget_bytes(level) or not tables:
                return
            if level + 1 >= len(self._levels):
                self._levels.append([])
            self._compact_into(level)
            level += 1

    def _compact_into(self, level: int) -> None:
        """Merge every table in ``level`` plus the overlapping tables of
        ``level + 1`` into fresh key-disjoint tables at ``level + 1``."""
        upper = self._levels[level]
        key_lo = min(t.min_key for t in upper)
        key_hi = max(t.max_key for t in upper)
        lower = self._levels[level + 1]
        merging = [t for t in lower if t.overlaps(key_lo, key_hi)]
        keeping = [t for t in lower if not t.overlaps(key_lo, key_hi)]

        merged = self._merge_runs([t.tuples for t in upper + merging])
        moved_bytes = sum(t.size for t in merged)
        self.stats.bytes_compacted += moved_bytes
        self.stats.compactions += 1

        # Split the merged run into tables of roughly memtable size.
        new_tables: List[SSTable] = []
        target = self.memtable_bytes * self.level_ratio
        run: List[DataTuple] = []
        run_bytes = 0
        for t in merged:
            run.append(t)
            run_bytes += t.size
            if run_bytes >= target:
                new_tables.append(SSTable(run, level=level + 1))
                run = []
                run_bytes = 0
        if run:
            new_tables.append(SSTable(run, level=level + 1))

        self._levels[level] = []
        self._levels[level + 1] = sorted(
            keeping + new_tables, key=lambda t: t.min_key
        )

    @staticmethod
    def _merge_runs(runs: List[List[DataTuple]]) -> List[DataTuple]:
        return list(heapq.merge(*runs, key=lambda t: t.key))

    # --- reads --------------------------------------------------------------------

    def range_query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float = float("-inf"),
        t_hi: float = float("inf"),
        predicate: Optional[Predicate] = None,
    ) -> Tuple[List[DataTuple], ScanStats]:
        """All tuples in the inclusive key range passing the time filter.

        Key seeks are index-assisted (this is what HBase is good at); the
        temporal condition is checked tuple-by-tuple after the fact -- the
        structural reason baseline latency grows with key-range selectivity
        in Figures 14/16.
        """
        out: List[DataTuple] = []
        stats = ScanStats()
        start = bisect_left(self._memtable_keys, key_lo)
        stop = bisect_right(self._memtable_keys, key_hi)
        for i in range(start, stop):
            t = self._memtable[i]
            stats.memtable_examined += 1
            if t_lo <= t.ts <= t_hi and (predicate is None or predicate(t)):
                out.append(t)
        for level in self._levels:
            for table in level:
                if not table.overlaps(key_lo, key_hi):
                    continue
                stats.sstables_touched += 1
                stats.tuples_examined += table.scan(
                    key_lo, key_hi, t_lo, t_hi, predicate, out
                )
        return out, stats

    # --- introspection ----------------------------------------------------------------

    def __len__(self) -> int:
        return self.stats.tuples_inserted

    @property
    def n_sstables(self) -> int:
        """Total SSTable count across all levels."""
        return sum(len(level) for level in self._levels)

    @property
    def n_levels(self) -> int:
        """Number of levels currently materialized."""
        return len(self._levels)

    def all_tuples(self) -> List[DataTuple]:
        """Every stored tuple (memtable + all SSTables)."""
        out = list(self._memtable)
        for level in self._levels:
            for table in level:
                out.extend(table.tuples)
        return out
