"""HBase-like baseline: a distributed sorted KV store over LSM regions.

Models what the paper compares against in Figures 14-16: data tuples keyed
by index key in a range-partitioned table of LSM region stores.  Key-range
scans are efficient (seek + scan); the temporal criterion is *not* indexed,
so every tuple in the key range is read and tested -- which is why its query
latency grows with key selectivity while Waterwheel's stays flat-ish.

Ingestion suffers the LSM's write amplification: the real compactions of
:class:`repro.baselines.lsm.LSMStore` are measured, and the resulting
amplification feeds the shared pipeline model for Figure 15's
insertion-throughput comparison.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.baselines.lsm import LSMStore
from repro.core.model import DataTuple, Predicate, QueryResult
from repro.core.partitioning import KeyPartition
from repro.simulation.costs import DEFAULT_COSTS, CostModel
from repro.simulation.pipeline import PipelineTopology, system_insertion_rate


class HBaseLike:
    """Range-partitioned table of LSM region stores."""

    def __init__(
        self,
        key_lo: int = 0,
        key_hi: int = 1 << 32,
        n_regions: int = 12,
        memtable_bytes: int = 1 << 20,
        costs: CostModel = DEFAULT_COSTS,
    ):
        if n_regions < 1:
            raise ValueError("need at least one region")
        self.partition = KeyPartition.uniform(key_lo, key_hi, n_regions)
        self.regions: List[LSMStore] = [
            LSMStore(memtable_bytes=memtable_bytes)
            for _ in range(self.partition.n_intervals)
        ]
        self.costs = costs
        self._access_seed = itertools.count()
        self.tuples_inserted = 0

    # --- writes ------------------------------------------------------------------

    def insert(self, t: DataTuple) -> None:
        """Route the tuple to its region's LSM store."""
        self.regions[self.partition.server_for(t.key)].insert(t)
        self.tuples_inserted += 1

    def insert_many(self, tuples) -> None:
        """Ingest a batch."""
        for t in tuples:
            self.insert(t)

    def flush_all(self) -> None:
        """Flush every region's memtable (shutdown/tests)."""
        for region in self.regions:
            region.flush_memtable()

    # --- reads ---------------------------------------------------------------------

    def query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float = float("-inf"),
        t_hi: float = float("inf"),
        predicate: Optional[Predicate] = None,
    ) -> QueryResult:
        """Real scan plus simulated latency.

        Region servers execute in parallel; each pays one storefile access
        per SSTable touched plus CPU per tuple examined.  Latency is the
        slowest region plus result transfer.
        """
        result = QueryResult(query_id=0)
        slowest = 0.0
        for server, region in enumerate(self.regions):
            interval = self.partition.interval(server)
            if key_hi < interval.lo or key_lo >= interval.hi:
                continue
            tuples, stats = region.range_query(key_lo, key_hi, t_lo, t_hi, predicate)
            result.tuples.extend(tuples)
            examined = stats.tuples_examined + stats.memtable_examined
            region_cost = examined * self.costs.scan_cpu
            for _ in range(stats.sstables_touched):
                region_cost += self.costs.dfs_access_latency(next(self._access_seed))
            slowest = max(slowest, region_cost)
            result.subquery_count += 1
        tuple_bytes = sum(t.size for t in result.tuples)
        result.latency = (
            2 * self.costs.network_latency
            + slowest
            + self.costs.network_transfer(tuple_bytes)
        )
        return result

    # --- derived performance quantities ------------------------------------------------

    @property
    def write_amplification(self) -> float:
        """Measured bytes-written per byte-ingested across all regions."""
        ingested = sum(r.stats.bytes_ingested for r in self.regions)
        written = sum(
            r.stats.bytes_flushed + r.stats.bytes_compacted for r in self.regions
        )
        if ingested == 0:
            return 1.0
        return written / ingested

    #: Per-mutation write-path overhead outside the memtable itself: the
    #: client RPC, WAL append and MVCC bookkeeping HBase pays per put (it
    #: cannot batch an arbitrary external stream the way an ingest-owned
    #: pipeline can).  ~20 us/op matches the ~100 K put/s ceiling the paper
    #: measured on its 12-node HBase deployment.
    WAL_RPC_CPU = 20e-6

    def insertion_rate(
        self,
        topology: PipelineTopology,
        tuple_size: int = 50,
        memtable_flush_bytes: int = 1 << 20,
    ) -> float:
        """Sustainable ingestion rate under the shared pipeline model.

        Each ingested tuple costs RPC + WAL + memtable insert CPU up front
        and is then re-merged ``write_amp - 1`` more times by compaction,
        paying both merge CPU and storage write bandwidth each time.  The
        write amplification is *measured* from this store's real LSM runs.
        """
        amp = self.write_amplification
        extra_cpu = (
            self.WAL_RPC_CPU
            + self.costs.merge_cpu * max(0.0, amp - 1.0)
            + self.costs.serialize_cpu  # WAL serialization
        )
        return system_insertion_rate(
            self.costs,
            topology,
            tuple_size,
            chunk_bytes=memtable_flush_bytes,
            base_insert_cpu=self.costs.index_insert_cpu_concurrent,
            extra_cpu_per_tuple=extra_cpu,
            flush_bytes_per_tuple=tuple_size * amp,
        )

    def all_tuples(self) -> List[DataTuple]:
        """Every stored tuple across all regions."""
        out: List[DataTuple] = []
        for region in self.regions:
            out.extend(region.all_tuples())
        return out
