"""Druid-like baseline: time-partitioned segments without a key-range index.

Models the timeseries-store side of the paper's comparison (Figures 14-16):
ingestion appends tuples to the segment covering their timestamp window;
queries prune by segment time window, but inside a segment every row must
be scanned and tested against the key-range criterion because only
time (and exact-value bitmap indexes, useless for ranges) is indexed.
Hence its latency is governed by the *temporal* selectivity and stays flat
as key selectivity varies -- high for wide time ranges, insensitive to keys.

Ingestion pays realtime-node segment building (columnarization + bitmap
index construction), giving it the modest insertion ceiling seen in
Figure 15.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional

from repro.core.model import DataTuple, Predicate, QueryResult
from repro.simulation.costs import DEFAULT_COSTS, CostModel
from repro.simulation.pipeline import PipelineTopology, system_insertion_rate

#: Extra per-tuple CPU at the realtime node: row parsing, dictionary
#: encoding, column building and bitmap-index maintenance.  Druid's own
#: published ingestion numbers (~10-25 K rows/s per realtime task) put the
#: effective per-row cost in the tens of microseconds.
_SEGMENT_BUILD_CPU = 18.0e-6


class DruidLike:
    """Segments keyed by time window; rows unindexed on key."""

    def __init__(
        self,
        segment_duration: float = 60.0,
        n_historicals: int = 12,
        costs: CostModel = DEFAULT_COSTS,
    ):
        if segment_duration <= 0:
            raise ValueError("segment_duration must be positive")
        if n_historicals < 1:
            raise ValueError("need at least one historical node")
        self.segment_duration = segment_duration
        self.n_historicals = n_historicals
        self.costs = costs
        self._segments: Dict[int, List[DataTuple]] = {}
        self._access_seed = itertools.count()
        self.tuples_inserted = 0

    def _window(self, ts: float) -> int:
        return int(math.floor(ts / self.segment_duration))

    # --- writes ---------------------------------------------------------------

    def insert(self, t: DataTuple) -> None:
        """Append the tuple to its time-window segment."""
        self._segments.setdefault(self._window(t.ts), []).append(t)
        self.tuples_inserted += 1

    def insert_many(self, tuples) -> None:
        """Ingest a batch."""
        for t in tuples:
            self.insert(t)

    # --- reads -------------------------------------------------------------------

    def query(
        self,
        key_lo: int,
        key_hi: int,
        t_lo: float,
        t_hi: float,
        predicate: Optional[Predicate] = None,
    ) -> QueryResult:
        """Real scan plus simulated latency.

        Segments overlapping the time range are fanned out across the
        historical nodes; each segment is fully scanned (no key index) and
        the broker's latency is the slowest node plus result transfer.
        """
        result = QueryResult(query_id=0)
        first = self._window(t_lo)
        last = self._window(t_hi)
        node_cost = [0.0] * self.n_historicals
        for slot, window in enumerate(range(first, last + 1)):
            rows = self._segments.get(window)
            if not rows:
                continue
            result.subquery_count += 1
            matched_bytes = 0
            for t in rows:
                if (
                    key_lo <= t.key <= key_hi
                    and t_lo <= t.ts <= t_hi
                    and (predicate is None or predicate(t))
                ):
                    result.tuples.append(t)
                    matched_bytes += t.size
            cost = (
                self.costs.dfs_access_latency(next(self._access_seed))
                + len(rows) * self.costs.scan_cpu
            )
            node_cost[slot % self.n_historicals] += cost
        tuple_bytes = sum(t.size for t in result.tuples)
        result.latency = (
            2 * self.costs.network_latency
            + max(node_cost)
            + self.costs.network_transfer(tuple_bytes)
        )
        return result

    # --- derived performance quantities ---------------------------------------------

    def insertion_rate(
        self,
        topology: PipelineTopology,
        tuple_size: int = 50,
        segment_bytes: int = 64 << 20,
    ) -> float:
        """Sustainable ingestion under the shared pipeline model, charging
        realtime-node segment building per tuple."""
        return system_insertion_rate(
            self.costs,
            topology,
            tuple_size,
            chunk_bytes=segment_bytes,
            base_insert_cpu=self.costs.index_insert_cpu,
            extra_cpu_per_tuple=_SEGMENT_BUILD_CPU,
            flush_bytes_per_tuple=float(tuple_size),
        )

    # --- introspection ---------------------------------------------------------------

    @property
    def n_segments(self) -> int:
        """Number of materialized time segments."""
        return len(self._segments)

    def all_tuples(self) -> List[DataTuple]:
        """Every stored tuple, segment by segment."""
        out: List[DataTuple] = []
        for rows in self._segments.values():
            out.extend(rows)
        return out
