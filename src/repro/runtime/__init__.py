"""Miniature Storm-like dataflow runtime (the paper's execution substrate)."""

from repro.runtime.topology import (
    AllGrouping,
    DirectGrouping,
    FieldsGrouping,
    LocalRuntime,
    Operator,
    OperatorContext,
    ShuffleGrouping,
    Spout,
    Topology,
    TopologyError,
)
from repro.runtime.waterwheel_topology import (
    DispatcherBolt,
    IndexingBolt,
    StreamSpout,
    build_insertion_topology,
    run_insertion_topology,
)

__all__ = [
    "Operator",
    "Spout",
    "OperatorContext",
    "Topology",
    "TopologyError",
    "LocalRuntime",
    "ShuffleGrouping",
    "FieldsGrouping",
    "AllGrouping",
    "DirectGrouping",
    "StreamSpout",
    "DispatcherBolt",
    "IndexingBolt",
    "build_insertion_topology",
    "run_insertion_topology",
]
