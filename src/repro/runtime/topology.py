"""A miniature Storm-like dataflow runtime.

The paper implements Waterwheel "on top of Apache Storm as an
application-level topology" (Section VI): servers are operators, data
routing rules connect them, and Storm supplies scheduling and transport.
This module provides that substrate in-process: spouts produce messages,
bolts consume and emit them, stream *groupings* decide which downstream
instance gets each message, and a deterministic local runtime drives the
whole graph to completion.

Groupings mirror Storm's:

* :class:`ShuffleGrouping` -- round-robin across downstream instances;
* :class:`FieldsGrouping`  -- instance chosen by a key function (same key,
  same instance -- Waterwheel's dispatcher->indexing-server routing);
* :class:`AllGrouping`     -- broadcast to every instance;
* :class:`DirectGrouping`  -- the *emitter* names the target instance
  (``ctx.emit_direct``), used when routing is computed upstream.

Delivery rides the message plane (:mod:`repro.rpc`): every bolt component
is an endpoint ``topology.<name>`` and each emitted message is one
``submit`` on that endpoint, so fault injection and ``rpc.*`` metrics
apply to dataflow edges exactly as to server-to-server calls.  Under the
inline transport a message is processed synchronously at emit time
(deterministic depth-first delivery); under the threaded transport each
bolt instance processes on its own worker thread, per-instance FIFO, and
:meth:`LocalRuntime.run` waits for quiescence between spout batches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.rpc import Endpoint, MessagePlane


class Operator:
    """Base bolt: override :meth:`process`; optionally open/close."""

    def open(self, ctx: "OperatorContext") -> None:  # noqa: ARG002
        """Called once before any message is processed."""

    def process(self, message: Any, ctx: "OperatorContext") -> None:
        raise NotImplementedError

    def close(self, ctx: "OperatorContext") -> None:  # noqa: ARG002
        """Called once after the topology drains."""


class Spout:
    """Base source: override :meth:`next_batch` to emit via the context;
    return False when exhausted."""

    def open(self, ctx: "OperatorContext") -> None:  # noqa: ARG002
        pass

    def next_batch(self, ctx: "OperatorContext") -> bool:
        raise NotImplementedError

    def close(self, ctx: "OperatorContext") -> None:  # noqa: ARG002
        pass


class Grouping:
    """Decides the downstream instance for a message."""

    def choose(self, message: Any, n_instances: int, emitter_instance: int) -> int:
        raise NotImplementedError

    broadcast = False
    direct = False


class ShuffleGrouping(Grouping):
    """Round-robin across downstream instances.

    Under the threaded transport concurrent emitters may interleave the
    counter, so the distribution is only approximately even -- the same
    slack a real Storm shuffle grouping has.
    """
    def __init__(self):
        self._next = 0

    def choose(self, message, n_instances, emitter_instance):  # noqa: ARG002
        chosen = self._next % n_instances
        self._next += 1
        return chosen


class FieldsGrouping(Grouping):
    """Instance chosen by a key function (same key, same instance)."""
    def __init__(self, key_fn: Callable[[Any], int]):
        self.key_fn = key_fn

    def choose(self, message, n_instances, emitter_instance):  # noqa: ARG002
        return self.key_fn(message) % n_instances


class AllGrouping(Grouping):
    """Broadcast to every downstream instance."""
    broadcast = True

    def choose(self, message, n_instances, emitter_instance):  # noqa: ARG002
        raise RuntimeError("broadcast groupings fan out; choose() is unused")


class DirectGrouping(Grouping):
    """The emitter names the target instance via ``emit_direct``."""
    direct = True

    def choose(self, message, n_instances, emitter_instance):  # noqa: ARG002
        raise RuntimeError("direct groupings route via emit_direct()")


@dataclass
class _Component:
    name: str
    instances: List[Any]  # Operator or Spout instances
    is_spout: bool
    #: (upstream name, grouping) pairs feeding this component.
    inputs: List[Tuple[str, Grouping]] = field(default_factory=list)


class TopologyError(ValueError):
    """Malformed topology (unknown component, cycle of spouts, ...)."""


class OperatorContext:
    """Handed to operators: emit messages, inspect identity, count."""

    def __init__(self, runtime: "LocalRuntime", component: str, instance: int):
        self._runtime = runtime
        self.component = component
        self.instance = instance
        self.emitted = 0
        self.processed = 0

    def emit(self, message: Any) -> None:
        """Send downstream through each consumer's configured grouping."""
        self.emitted += 1
        self._runtime._route(self.component, self.instance, message)

    def emit_direct(self, target_instance: int, message: Any) -> None:
        """Send to a specific instance of every direct-grouped consumer."""
        self.emitted += 1
        self._runtime._route_direct(
            self.component, target_instance, message
        )


class Topology:
    """Builder for a dataflow graph."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self._components: Dict[str, _Component] = {}

    def add_spout(self, name: str, instances: List[Spout]) -> "Topology":
        """Register a source component."""
        self._add(name, list(instances), is_spout=True)
        return self

    def add_bolt(
        self,
        name: str,
        instances: List[Operator],
        inputs: List[Tuple[str, Grouping]],
    ) -> "Topology":
        """Register a processing component and its input groupings."""
        component = self._add(name, list(instances), is_spout=False)
        for upstream, grouping in inputs:
            if upstream not in self._components:
                raise TopologyError(f"unknown upstream component {upstream!r}")
            if self._components[upstream] is component:
                raise TopologyError("a bolt cannot consume itself")
            component.inputs.append((upstream, grouping))
        return self

    def _add(self, name: str, instances: list, is_spout: bool) -> _Component:
        if name in self._components:
            raise TopologyError(f"duplicate component name {name!r}")
        if not instances:
            raise TopologyError(f"component {name!r} needs >= 1 instance")
        component = _Component(name, instances, is_spout)
        self._components[name] = component
        return component

    @property
    def components(self) -> Dict[str, _Component]:
        """Name -> component mapping (read-only view)."""
        return dict(self._components)


class _BoltRunner:
    """Message-plane handler for one bolt instance: counts and processes."""

    __slots__ = ("op", "ctx")

    def __init__(self, op: Operator, ctx: "OperatorContext"):
        self.op = op
        self.ctx = ctx

    def deliver(self, message: Any) -> None:
        self.ctx.processed += 1
        self.op.process(message, self.ctx)


class LocalRuntime:
    """Single-process executor for a :class:`Topology`.

    Every delivery is a message-plane ``submit`` on the consumer bolt's
    ``topology.<name>`` endpoint.  With the default inline plane the
    message is processed synchronously at emit time, so execution is fully
    deterministic -- the "local mode" a Storm developer tests with.  Pass a
    plane with a :class:`~repro.rpc.ThreadedTransport` (e.g. a
    ``Waterwheel`` system's ``plane``) and each bolt instance runs on its
    own worker thread with per-instance FIFO delivery; the scheduler then
    waits for quiescence between spout batches and re-raises the first
    bolt error on the caller.
    """

    def __init__(self, topology: Topology, plane: Optional[MessagePlane] = None):
        self.topology = topology
        self.plane = plane or MessagePlane()
        self._contexts: Dict[Tuple[str, int], OperatorContext] = {}
        self._consumers: Dict[str, List[Tuple[str, Grouping]]] = {}
        self._endpoints: Dict[str, Endpoint] = {}
        for name, component in topology.components.items():
            for upstream, grouping in component.inputs:
                self._consumers.setdefault(upstream, []).append((name, grouping))
            for instance in range(len(component.instances)):
                self._contexts[(name, instance)] = OperatorContext(
                    self, name, instance
                )
            if not component.is_spout:
                runners = [
                    _BoltRunner(op, self._contexts[(name, instance)])
                    for instance, op in enumerate(component.instances)
                ]
                self._endpoints[name] = self.plane.endpoint(
                    f"topology.{name}", runners
                )
        self._inflight = 0
        self._quiet = threading.Condition()
        self._error: Optional[BaseException] = None
        self._opened = False

    # --- routing (called by OperatorContext) --------------------------------------

    def _deliver(self, consumer: str, instance: int, message: Any) -> None:
        """One message-plane hop to a bolt instance."""
        endpoint = self._endpoints[consumer]
        if not self.plane.concurrent:
            call = endpoint.submit(instance, "deliver", message)
            exc = call.exception()
            if exc is not None:
                raise exc
            return
        # Concurrent transport: track the in-flight count so the scheduler
        # can wait for quiescence.  A cascaded emit increments before its
        # parent delivery completes, so the count never falsely hits zero.
        with self._quiet:
            self._inflight += 1
        call = endpoint.submit(instance, "deliver", message)
        call.add_done_callback(self._delivery_done)

    def _delivery_done(self, call) -> None:
        exc = call.exception()
        with self._quiet:
            if exc is not None and self._error is None:
                self._error = exc
            self._inflight -= 1
            if self._inflight == 0:
                self._quiet.notify_all()

    def _route(self, emitter: str, emitter_instance: int, message: Any) -> None:
        for consumer, grouping in self._consumers.get(emitter, []):
            n = len(self.topology.components[consumer].instances)
            if grouping.broadcast:
                for instance in range(n):
                    self._deliver(consumer, instance, message)
            elif grouping.direct:
                raise TopologyError(
                    f"{emitter!r}->{consumer!r} is direct-grouped; "
                    "use emit_direct()"
                )
            else:
                instance = grouping.choose(message, n, emitter_instance)
                self._deliver(consumer, instance, message)

    def _route_direct(self, emitter: str, target_instance: int, message: Any) -> None:
        routed = False
        for consumer, grouping in self._consumers.get(emitter, []):
            if not grouping.direct:
                continue
            n = len(self.topology.components[consumer].instances)
            if not 0 <= target_instance < n:
                raise TopologyError(
                    f"direct target {target_instance} out of range for "
                    f"{consumer!r} ({n} instances)"
                )
            self._deliver(consumer, target_instance, message)
            routed = True
        if not routed:
            raise TopologyError(
                f"{emitter!r} has no direct-grouped consumer"
            )

    # --- execution --------------------------------------------------------------------

    def _open_all(self) -> None:
        for name, component in self.topology.components.items():
            for instance, op in enumerate(component.instances):
                op.open(self._contexts[(name, instance)])
        self._opened = True

    def _drain_bolts(self) -> None:
        """Wait until every in-flight delivery (and its cascade) lands.

        Inline transport processes messages at emit time, so there is
        nothing to wait for; under a concurrent transport this blocks
        until the in-flight count reaches zero, then re-raises the first
        bolt error captured by the workers.
        """
        if not self.plane.concurrent:
            return
        with self._quiet:
            while self._inflight:
                self._quiet.wait()
            exc, self._error = self._error, None
        if exc is not None:
            raise exc

    def run(self, max_batches: Optional[int] = None) -> Dict[str, Dict[str, int]]:
        """Run spouts to exhaustion (or ``max_batches``), draining bolts
        between batches; returns per-component processed/emitted counts."""
        if not self._opened:
            self._open_all()
        active = {
            name: list(range(len(c.instances)))
            for name, c in self.topology.components.items()
            if c.is_spout
        }
        batches = 0
        while any(active.values()):
            if max_batches is not None and batches >= max_batches:
                break
            for name, instances in active.items():
                component = self.topology.components[name]
                still = []
                for instance in instances:
                    ctx = self._contexts[(name, instance)]
                    if component.instances[instance].next_batch(ctx):
                        still.append(instance)
                active[name] = still
            self._drain_bolts()
            batches += 1
        self._drain_bolts()
        for name, component in self.topology.components.items():
            for instance, op in enumerate(component.instances):
                op.close(self._contexts[(name, instance)])
        return self.metrics()

    def metrics(self) -> Dict[str, Dict[str, int]]:
        """Per-component processed/emitted counters."""
        out: Dict[str, Dict[str, int]] = {}
        for (name, _instance), ctx in self._contexts.items():
            entry = out.setdefault(name, {"processed": 0, "emitted": 0})
            entry["processed"] += ctx.processed
            entry["emitted"] += ctx.emitted
        return out
