"""Waterwheel's insertion workflow expressed as a dataflow topology.

This mirrors the paper's deployment shape (Section VI): the stream enters
through spouts, is shuffle-grouped to dispatcher bolts, and each dispatcher
routes tuples *directly* to the indexing-server bolt instance owning the
key's partition interval -- the solid-line insertion flow of the paper's
Figure 3, running on the miniature Storm-like runtime.

The bolts wrap the same server objects a plain :class:`Waterwheel` facade
drives, so a system ingested through the topology answers queries through
the ordinary coordinator, byte-for-byte identically.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.core.model import DataTuple
from repro.core.system import Waterwheel
from repro.runtime.topology import (
    DirectGrouping,
    LocalRuntime,
    Operator,
    OperatorContext,
    ShuffleGrouping,
    Spout,
    Topology,
)


class StreamSpout(Spout):
    """Emits tuples from an iterator in fixed-size batches."""

    def __init__(self, records: Iterable[DataTuple], batch_size: int = 256):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._iterator: Iterator[DataTuple] = iter(records)
        self.batch_size = batch_size

    def next_batch(self, ctx: OperatorContext) -> bool:
        """Emit up to ``batch_size`` tuples; False when exhausted."""
        emitted = 0
        for t in self._iterator:
            ctx.emit(t)
            emitted += 1
            if emitted >= self.batch_size:
                return True
        return False  # exhausted


class DispatcherBolt(Operator):
    """Wraps a :class:`repro.core.dispatcher.Dispatcher`: samples, logs and
    direct-routes each tuple to its indexing-server instance."""

    def __init__(self, dispatcher):
        self.dispatcher = dispatcher

    def process(self, message: DataTuple, ctx: OperatorContext) -> None:
        server, offset = self.dispatcher.dispatch(message)
        ctx.emit_direct(server, (message, offset))


class IndexingBolt(Operator):
    """Wraps an :class:`repro.core.indexing_server.IndexingServer`."""

    def __init__(self, server):
        self.server = server
        self.flushes: List[str] = []

    def process(self, message, ctx: OperatorContext) -> None:  # noqa: ARG002
        t, offset = message
        chunk_id = self.server.ingest(t, offset)
        if chunk_id is not None:
            self.flushes.append(chunk_id)

    def close(self, ctx: OperatorContext) -> None:  # noqa: ARG002
        # Mirror a graceful topology shutdown: flush in-flight data so the
        # stream's tail is durable.
        if self.server.alive:
            self.flushes.extend(self.server.flush_all())


def build_insertion_topology(
    system: Waterwheel,
    records: Iterable[DataTuple],
    batch_size: int = 256,
    flush_on_close: bool = True,
) -> Topology:
    """Wire ``system``'s dispatchers and indexing servers into a topology
    fed by ``records``."""
    topology = Topology("waterwheel-insertion")
    topology.add_spout("stream", [StreamSpout(records, batch_size)])
    topology.add_bolt(
        "dispatchers",
        [DispatcherBolt(d) for d in system.dispatchers],
        inputs=[("stream", ShuffleGrouping())],
    )
    bolts = [IndexingBolt(s) for s in system.indexing_servers]
    if not flush_on_close:
        for bolt in bolts:
            bolt.close = lambda ctx: None  # type: ignore[assignment]
    topology.add_bolt(
        "indexing",
        bolts,
        inputs=[("dispatchers", DirectGrouping())],
    )
    return topology


def run_insertion_topology(
    system: Waterwheel,
    records: Iterable[DataTuple],
    batch_size: int = 256,
    flush_on_close: bool = False,
) -> dict:
    """Ingest ``records`` into ``system`` through the dataflow runtime;
    returns the runtime's per-component metrics."""
    topology = build_insertion_topology(
        system, records, batch_size, flush_on_close
    )
    # Ride the system's message plane so the topology inherits its
    # transport (and any injected faults).
    runtime = LocalRuntime(topology, plane=system.plane)
    metrics = runtime.run()
    system.tuples_inserted += metrics["indexing"]["processed"]
    return metrics
