"""Process-stable hashing.

Python's built-in ``hash`` over strings is salted per process
(PYTHONHASHSEED), so anything that derives placement or dispatch decisions
from ``hash(chunk_id)`` would differ from run to run.  Everything in this
package that needs a deterministic hash of a string uses these helpers.
"""

from __future__ import annotations

import hashlib


def stable_hash64(value: str) -> int:
    """A 64-bit hash of ``value`` that is identical in every process."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def stable_hash32(value: str) -> int:
    """A 32-bit variant for modulo-style bucketing."""
    return stable_hash64(value) & 0xFFFFFFFF
