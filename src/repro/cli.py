"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``     -- end-to-end walkthrough on a small deployment.
* ``ingest``   -- generate a workload, stream it through the system, print
                  ingestion statistics.
* ``query``    -- ingest a workload, then run a query batch and print
                  latency percentiles.
* ``verify``   -- ingest a workload, optionally inject failures, then run
                  the consistency checker (fsck) and print its report.
* ``failures`` -- ingest a workload, apply a scripted kill/recover/corrupt
                  sequence (optionally under a supervisor), then verify.
* ``chaos``    -- seeded chaos runs: random faults under live traffic with
                  supervised recovery, audited end to end (exit 1 on any
                  violated invariant).
* ``metrics``  -- run an ingest + query workload with the metrics registry
                  enabled, print (or dump as JSON) every counter/histogram.
* ``trace``    -- run a workload, trace one range query, print its span
                  tree with per-stage durations.
* ``info``     -- print the library version and default configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import Waterwheel, __version__, obs, small_config
from repro.core.config import WaterwheelConfig
from repro.workloads import (
    NetworkGenerator,
    QueryGenerator,
    TDriveGenerator,
    uniform_records,
)


def _make_workload(name: str, n: int, seed: int):
    """Returns (records, key_lo, key_hi, tuple_size)."""
    if n <= 0:
        raise SystemExit("--records must be a positive integer")
    if name == "tdrive":
        gen = TDriveGenerator(n_taxis=max(10, n // 200), seed=seed)
        lo, hi = gen.key_domain
        return gen.records(n), lo, hi, 36
    if name == "network":
        gen = NetworkGenerator(seed=seed)
        lo, hi = gen.key_domain
        return gen.records(n), lo, hi, 50
    if name == "uniform":
        return uniform_records(n, key_hi=1 << 20, seed=seed), 0, 1 << 20, 30
    raise SystemExit(f"unknown workload {name!r} (tdrive | network | uniform)")


def _build_system(args, key_lo: int, key_hi: int, tuple_size: int) -> Waterwheel:
    overrides = dict(
        key_lo=key_lo,
        key_hi=key_hi,
        n_nodes=args.nodes,
        chunk_bytes=args.chunk_kb * 1024,
        tuple_size=tuple_size,
        result_cache_bytes=getattr(args, "result_cache_kb", 0) * 1024,
        compress_chunks=getattr(args, "compress", False),
        flush_mode=getattr(args, "flush_mode", None) or "sync",
        ranged_reads=not getattr(args, "whole_blob_reads", False),
    )
    if getattr(args, "pipeline_depth", None) is not None:
        overrides["fetch_pipeline_depth"] = args.pipeline_depth
    if getattr(args, "prefetch_lookahead", None) is not None:
        overrides["prefetch_lookahead"] = args.prefetch_lookahead
    return Waterwheel(
        small_config(**overrides),
        transport=getattr(args, "transport", None),
    )


def cmd_demo(args) -> int:
    """``demo``: ingest a workload and run a sample query."""
    records, key_lo, key_hi, tuple_size = _make_workload(
        args.workload, args.records, args.seed
    )
    ww = _build_system(args, key_lo, key_hi, tuple_size)
    print(f"ingesting {len(records)} {args.workload} tuples ...")
    ww.insert_many(records)
    now = max(t.ts for t in records)
    print(
        f"  chunks: {ww.chunk_count}   in-memory tuples: {ww.in_memory_tuples}"
        f"   rebalances: {ww.balancer.rebalance_count}"
    )
    span = key_hi - key_lo
    res = ww.query(key_lo + span // 4, key_lo + span // 2, max(0.0, now - 60), now)
    print(
        f"sample query (25-50% of keys, last 60 s): {len(res)} tuples in "
        f"{res.latency * 1000:.2f} simulated ms over {res.subquery_count} subqueries"
    )
    return 0


def cmd_ingest(args) -> int:
    """``ingest``: stream a workload and print ingestion stats."""
    records, key_lo, key_hi, tuple_size = _make_workload(
        args.workload, args.records, args.seed
    )
    ww = _build_system(args, key_lo, key_hi, tuple_size)
    flushes = ww.insert_many(records)
    print(f"tuples ingested : {ww.tuples_inserted}")
    print(f"chunks flushed  : {flushes}")
    print(f"bytes on DFS    : {ww.dfs.total_bytes_written}")
    print(f"fresh tuples    : {ww.in_memory_tuples}")
    print(f"rebalances      : {ww.balancer.rebalance_count}")
    for server in ww.indexing_servers:
        print(
            f"  indexing server {server.server_id}: "
            f"{server.tuples_ingested} ingested, {server.flush_count} flushes"
        )
    return 0


def cmd_query(args) -> int:
    """``query``: run a query batch and print latency percentiles."""
    records, key_lo, key_hi, tuple_size = _make_workload(
        args.workload, args.records, args.seed
    )
    ww = _build_system(args, key_lo, key_hi, tuple_size)
    ww.insert_many(records)
    now = max(t.ts for t in records)
    qgen = QueryGenerator(key_lo, key_hi, seed=args.seed + 1)
    specs = qgen.batch(args.queries, args.selectivity, args.mode, now=now)
    latencies = []
    total = 0
    if args.concurrency > 1:
        # Route the batch through the multi-query scheduler: admission
        # control plus (on the threaded transport) overlapped execution.
        sched = ww.scheduler(
            max_concurrency=args.concurrency,
            queue_limit=max(len(specs), 1),
        )
        tickets = [
            ww.submit(spec.key_lo, spec.key_hi, spec.t_lo, spec.t_hi)
            for spec in specs
        ]
        for ticket in tickets:
            res = ticket.result()
            latencies.append(res.latency * 1000)
            total += len(res)
        print(
            f"scheduler        : {sched.max_concurrency} worker(s), "
            f"{sched.completed} completed, {sched.shed} shed"
        )
    else:
        for spec in specs:
            res = ww.query(spec.key_lo, spec.key_hi, spec.t_lo, spec.t_hi)
            latencies.append(res.latency * 1000)
            total += len(res)
    if getattr(args, "result_cache_kb", 0) > 0:
        stats = ww.coordinator.result_cache.stats()
        print(
            f"result cache     : {stats['hits']} hits / "
            f"{stats['misses']} misses, {stats['bytes']} bytes resident"
        )
    ww.close()
    latencies.sort()

    def pct(p: float) -> float:
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

    print(f"queries          : {len(specs)} ({args.mode}, selectivity {args.selectivity})")
    print(f"tuples returned  : {total}")
    print(f"latency p50      : {pct(0.50):.2f} ms")
    print(f"latency p95      : {pct(0.95):.2f} ms")
    print(f"latency p99      : {pct(0.99):.2f} ms")
    return 0


def cmd_verify(args) -> int:
    """``verify``: run the consistency checker (exit 1 on problems)."""
    from repro.core.verify import verify_system

    records, key_lo, key_hi, tuple_size = _make_workload(
        args.workload, args.records, args.seed
    )
    ww = _build_system(args, key_lo, key_hi, tuple_size)
    ww.insert_many(records)
    if args.inject_failure:
        victim = 0
        ww.kill_indexing_server(victim)
        ww.recover_indexing_server(victim)
        print(f"injected: killed + recovered indexing server {victim}")
    report = verify_system(ww)
    print(report.summary())
    for problem in report.problems:
        print(f"  PROBLEM: {problem}")
    return 0 if report.ok else 1


def _apply_failure_action(ww: Waterwheel, action: str) -> str:
    """Apply one ``--do`` action; returns a human-readable description.

    Raises :class:`ValueError` for unknown verbs or server/node ids (the
    facade's failure APIs validate ids instead of wrapping around).
    """
    verb, _, arg = action.partition(":")
    needs_id = {
        "kill-indexing", "recover-indexing", "kill-query", "recover-query",
        "kill-node", "revive-node", "corrupt-chunk",
    }
    if verb in needs_id and not arg:
        raise ValueError(f"action {verb!r} needs an id: {verb}:<id>")
    if verb == "kill-indexing":
        ww.kill_indexing_server(int(arg))
        return f"killed indexing server {arg}"
    if verb == "recover-indexing":
        replayed = ww.recover_indexing_server(int(arg))
        return f"recovered indexing server {arg} ({replayed} tuples replayed)"
    if verb == "kill-query":
        ww.kill_query_server(int(arg))
        return f"killed query server {arg}"
    if verb == "recover-query":
        ww.recover_query_server(int(arg))
        return f"recovered query server {arg} (cold cache)"
    if verb == "kill-coordinator":
        ww.kill_coordinator()
        return "killed coordinator"
    if verb == "promote-coordinator":
        ww.promote_coordinator()
        return "promoted standby coordinator"
    if verb == "kill-node":
        node = int(arg)
        if not 0 <= node < len(ww.cluster.nodes):
            raise ValueError(
                f"unknown node {node} (valid: 0..{len(ww.cluster.nodes) - 1})"
            )
        ww.cluster.kill(node)
        return f"killed node {arg}"
    if verb == "revive-node":
        node = int(arg)
        if not 0 <= node < len(ww.cluster.nodes):
            raise ValueError(
                f"unknown node {node} (valid: 0..{len(ww.cluster.nodes) - 1})"
            )
        ww.cluster.revive(node)
        return f"revived node {arg}"
    if verb == "corrupt-chunk":
        chunk_ids = sorted(ww.dfs.chunk_ids())
        idx = int(arg)
        if not 0 <= idx < len(chunk_ids):
            raise ValueError(
                f"no chunk #{idx} (have {len(chunk_ids)} objects)"
            )
        node = ww.dfs.corrupt_replica(chunk_ids[idx])
        return f"corrupted replica of {chunk_ids[idx]} on node {node}"
    raise ValueError(
        f"unknown action {verb!r} (kill-indexing:<id> | recover-indexing:<id> "
        f"| kill-query:<id> | recover-query:<id> | kill-coordinator "
        f"| promote-coordinator | kill-node:<id> | revive-node:<id> "
        f"| corrupt-chunk:<n>)"
    )


def cmd_failures(args) -> int:
    """``failures``: scripted fault sequence + (optional) supervision + fsck."""
    from repro.core.verify import verify_system

    records, key_lo, key_hi, tuple_size = _make_workload(
        args.workload, args.records, args.seed
    )
    ww = _build_system(args, key_lo, key_hi, tuple_size)
    half = len(records) // 2
    ww.insert_many(records[:half])
    supervisor = ww.supervise() if args.supervise else None
    for action in args.do or []:
        try:
            print(_apply_failure_action(ww, action))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    ww.insert_many(records[half:])  # traffic keeps flowing over the faults
    if supervisor is not None:
        for poll in supervisor.poll_until_quiet():
            for repair in poll.repairs:
                print(
                    f"supervisor: {repair.action} {repair.component} "
                    f"{repair.index}"
                    + (
                        f" ({repair.tuples_replayed} tuples replayed)"
                        if repair.tuples_replayed
                        else ""
                    )
                )
        if ww.dfs.under_replicated():
            print("supervisor: re-replication still pending (failed nodes?)")
    report = verify_system(ww)
    print(report.summary())
    for problem in report.problems:
        print(f"  PROBLEM: {problem}")
    if ww.quarantined_servers:
        print(f"  quarantined: {sorted(ww.quarantined_servers)}")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    """``chaos``: seeded chaos runs; exit 1 if any run violates an invariant."""
    from repro.supervision import run_chaos

    # Mirrors run_chaos's default config, plus the requested flush mode.
    config = None
    if getattr(args, "flush_mode", None) == "async":
        config = small_config(
            n_nodes=5, rebalance_check_every=500, flush_mode="async"
        )
    reports = []
    failures = 0
    for run in range(args.runs):
        seed = args.seed + run
        report = run_chaos(
            seed=seed,
            records=args.records,
            steps=args.steps,
            events=args.events,
            transport=args.transport,
            config=config,
        )
        reports.append(report)
        print(report.summary())
        if args.verbose:
            for event in report.events:
                print(f"  {event}")
        for problem in report.problems:
            print(f"  PROBLEM: {problem}")
        if not report.ok:
            failures += 1
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([r.as_dict() for r in reports], fh, indent=2)
        print(f"wrote {len(reports)} report(s) to {args.json}")
    if failures:
        print(f"{failures}/{args.runs} chaos run(s) FAILED", file=sys.stderr)
    return 1 if failures else 0


def cmd_metrics(args) -> int:
    """``metrics``: ingest + query with the registry on, print every metric."""
    records, key_lo, key_hi, tuple_size = _make_workload(
        args.workload, args.records, args.seed
    )
    ww = _build_system(args, key_lo, key_hi, tuple_size)
    obs.enable(metrics_on=True, tracing_on=True)
    try:
        ww.insert_many(records)
        now = max(t.ts for t in records)
        qgen = QueryGenerator(key_lo, key_hi, seed=args.seed + 1)
        for spec in qgen.batch(args.queries, args.selectivity, "recent_60s", now=now):
            ww.query(spec.key_lo, spec.key_hi, spec.t_lo, spec.t_hi)
        snap = ww.metrics()
    finally:
        obs.disable()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
        print(f"wrote {len(snap)} metrics to {args.json}")
    else:
        print(obs.render_table(snap))
    return 0


def cmd_trace(args) -> int:
    """``trace``: ingest a workload, trace one query, print its span tree."""
    records, key_lo, key_hi, tuple_size = _make_workload(
        args.workload, args.records, args.seed
    )
    ww = _build_system(args, key_lo, key_hi, tuple_size)
    ww.insert_many(records)
    now = max(t.ts for t in records)
    span_keys = key_hi - key_lo
    obs.enable(metrics_on=False, tracing_on=True)
    try:
        res = ww.query(
            key_lo + span_keys // 4,
            key_lo + span_keys // 2,
            max(0.0, now - 60.0),
            now,
        )
        root = ww.last_trace()
    finally:
        obs.disable()
    if root is None:
        print("no trace recorded", file=sys.stderr)
        return 1
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(root.as_dict(), fh, indent=2)
        print(f"wrote span tree to {args.json}")
        return 0
    print(root.render())
    coverage = obs.stage_coverage(root)
    print(
        f"\n{len(res)} tuples, {res.subquery_count} subqueries, "
        f"{res.latency * 1000:.2f} simulated ms"
    )
    print(
        f"stage coverage: {coverage * 100:.1f}% of the "
        f"{root.duration * 1000:.3f} ms wall time is inside a stage span"
    )
    return 0


def cmd_info(args) -> int:  # noqa: ARG001 - uniform command signature
    print(f"repro (Waterwheel reproduction) version {__version__}")
    cfg = WaterwheelConfig()
    print("default configuration:")
    for name in (
        "n_nodes",
        "dispatchers_per_node",
        "indexing_per_node",
        "query_servers_per_node",
        "chunk_bytes",
        "skew_threshold",
        "rebalance_threshold",
        "late_delta",
        "cache_bytes",
        "replication",
    ):
        print(f"  {name:24s} = {getattr(cfg, name)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Waterwheel reproduction: streaming index + temporal range queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--workload", default="network",
                       choices=("tdrive", "network", "uniform"))
        p.add_argument("--records", type=int, default=20_000)
        p.add_argument("--nodes", type=int, default=4)
        p.add_argument("--chunk-kb", type=int, default=64)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--transport",
            default=None,
            choices=("inline", "threaded"),
            help="message-plane transport (default: inline, or "
                 "$REPRO_TRANSPORT when set)",
        )
        p.add_argument(
            "--compress", action="store_true",
            help="deflate chunk payloads on flush (compress_chunks)",
        )
        p.add_argument(
            "--flush-mode",
            default=None,
            choices=("sync", "async"),
            help="chunk flush pipeline: sync = inline on the ingest "
                 "thread (default), async = seal-and-swap with a "
                 "background flush executor",
        )
        p.add_argument(
            "--whole-blob-reads", action="store_true",
            help="disable ranged DFS reads on the query path (legacy "
                 "whole-chunk fetches; the equivalence baseline)",
        )
        p.add_argument(
            "--pipeline-depth", type=int, default=None,
            help="ranged leaf spans kept in flight per subquery "
                 "(fetch_pipeline_depth; 0 = one multi-range access)",
        )
        p.add_argument(
            "--prefetch-lookahead", type=int, default=None,
            help="queued subqueries whose chunk prefixes are prefetched "
                 "per assignment (prefetch_lookahead; 0 disables)",
        )

    demo = sub.add_parser("demo", help="end-to-end walkthrough")
    add_common(demo)
    demo.set_defaults(func=cmd_demo)

    ingest = sub.add_parser("ingest", help="stream a workload, print stats")
    add_common(ingest)
    ingest.set_defaults(func=cmd_ingest)

    query = sub.add_parser("query", help="run a query batch, print latency percentiles")
    add_common(query)
    query.add_argument("--queries", type=int, default=100)
    query.add_argument("--selectivity", type=float, default=0.1)
    query.add_argument(
        "--concurrency", type=int, default=1,
        help="route the batch through the multi-query scheduler with this "
             "many workers (1 = direct serial execution)",
    )
    query.add_argument(
        "--result-cache-kb", type=int, default=0,
        help="coordinator subquery result cache size in KB (0 = disabled)",
    )
    query.add_argument(
        "--mode",
        default="recent_60s",
        choices=("recent_5s", "recent_60s", "recent_5m", "historic_5m"),
    )
    query.set_defaults(func=cmd_query)

    verify = sub.add_parser("verify", help="run the consistency checker")
    add_common(verify)
    verify.add_argument("--inject-failure", action="store_true")
    verify.set_defaults(func=cmd_verify)

    failures = sub.add_parser(
        "failures",
        help="apply a scripted kill/recover sequence, then verify",
    )
    add_common(failures)
    failures.add_argument(
        "--do",
        action="append",
        metavar="ACTION",
        help="fault action, repeatable, applied in order after half the "
             "workload: kill-indexing:<id> recover-indexing:<id> "
             "kill-query:<id> recover-query:<id> kill-coordinator "
             "promote-coordinator kill-node:<id> revive-node:<id> "
             "corrupt-chunk:<n>",
    )
    failures.add_argument(
        "--supervise",
        action="store_true",
        help="attach a supervisor and let it repair before verifying",
    )
    failures.set_defaults(func=cmd_failures)

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos runs with supervised recovery + full audit",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--runs", type=int, default=1,
                       help="consecutive seeds starting at --seed")
    chaos.add_argument("--records", type=int, default=3000)
    chaos.add_argument("--steps", type=int, default=15)
    chaos.add_argument("--events", type=int, default=6)
    chaos.add_argument(
        "--transport",
        default=None,
        choices=("inline", "threaded"),
        help="message-plane transport (default: inline, or "
             "$REPRO_TRANSPORT when set)",
    )
    chaos.add_argument(
        "--flush-mode",
        default=None,
        choices=("sync", "async"),
        help="run the schedule against the sync (default) or async "
             "seal-and-swap flush pipeline",
    )
    chaos.add_argument("--verbose", action="store_true",
                       help="print every fault event")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="dump the run reports as JSON")
    chaos.set_defaults(func=cmd_chaos)

    metrics = sub.add_parser(
        "metrics", help="run a workload with the metrics registry, print it"
    )
    add_common(metrics)
    metrics.add_argument("--queries", type=int, default=20)
    metrics.add_argument("--selectivity", type=float, default=0.1)
    metrics.add_argument("--json", metavar="PATH", default=None,
                         help="dump the registry snapshot as JSON")
    metrics.set_defaults(func=cmd_metrics)

    trace = sub.add_parser(
        "trace", help="trace one range query, print its span tree"
    )
    add_common(trace)
    trace.add_argument("--json", metavar="PATH", default=None,
                       help="dump the span tree as JSON")
    trace.set_defaults(func=cmd_trace)

    info = sub.add_parser("info", help="version and default configuration")
    info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
