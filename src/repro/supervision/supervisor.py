"""The supervisor: closes the detect -> recover -> verify loop.

The paper gets auto-recovery from its substrate (Storm restarts workers,
HDFS re-replicates blocks, ZooKeeper elects a new leader); our
reproduction's :class:`~repro.core.system.Waterwheel` only had the manual
halves -- ``kill_* / recover_*`` APIs, durable-log replay and a fault
injector.  The :class:`Supervisor` wires them into a loop:

* a :class:`~repro.supervision.detector.FailureDetector` heartbeats every
  indexing server, query server and the coordinator over the message
  plane;
* a target declared DEAD triggers the matching repair: durable-log replay
  for an indexing server (whose key interval the dispatcher has
  quarantined -- tuples kept accumulating durably in its log partition,
  so the replay drains the buffered suffix and no acknowledged tuple is
  lost), a cold-cache restart for a query server (its in-flight
  subqueries were already re-dispatched to survivors by the dispatch
  loop), and standby promotion from the metastore for the coordinator;
* every cycle also runs the storage repair pass: scrub corrupt replica
  copies and re-replicate under-replicated chunks back to the replication
  factor.

Supervision is poll-driven: call :meth:`Supervisor.poll` from your control
loop, or :meth:`Supervisor.start` a background thread.  Nothing runs on
the ingest/query hot path either way.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs import metrics as _obs
from repro.supervision.detector import FailureDetector, Health, Transition


@dataclass
class RepairAction:
    """One recovery the supervisor performed."""

    component: str  # "indexing" | "query_server" | "coordinator"
    index: int
    action: str  # "replayed" | "restarted" | "promoted"
    tuples_replayed: int = 0


@dataclass
class PollReport:
    """Everything one supervision cycle observed and did."""

    transitions: List[Transition] = field(default_factory=list)
    repairs: List[RepairAction] = field(default_factory=list)
    tuples_replayed: int = 0
    replicas_restored: int = 0
    replicas_scrubbed: int = 0
    flushes_retried: int = 0

    @property
    def quiet(self) -> bool:
        """True when the cycle found a fully healthy system."""
        return not (
            self.transitions
            or self.repairs
            or self.replicas_restored
            or self.replicas_scrubbed
            or self.flushes_retried
        )


class Supervisor:
    """Automatic failure recovery for one Waterwheel deployment."""

    def __init__(
        self,
        system,
        *,
        suspect_after: int = 1,
        dead_after: int = 2,
        repair_storage: bool = True,
    ):
        self.system = system
        self.repair_storage = repair_storage
        self.detector = FailureDetector(
            system.plane,
            suspect_after=suspect_after,
            dead_after=dead_after,
        )
        self.detector.watch("indexing", system.indexing_servers)
        self.detector.watch("query_server", system.query_servers)
        self.detector.watch("coordinator", [system.coordinator])
        self.polls = 0
        self.repairs: List[RepairAction] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        reg = _obs.registry()
        self._m_polls = reg.counter("supervisor.polls")
        self._m_recoveries = {
            kind: reg.counter("supervisor.recoveries", component=kind)
            for kind in ("indexing", "query_server", "coordinator")
        }
        self._m_replayed = reg.counter("supervisor.tuples_replayed")

    def rebind_coordinator(self) -> None:
        """Follow a coordinator failover: heartbeat the new instance."""
        self.detector.rebind("coordinator", [self.system.coordinator])

    # --- the supervision cycle -------------------------------------------------

    def poll(self) -> PollReport:
        """One detect -> recover -> repair cycle; returns what happened."""
        report = PollReport()
        report.transitions = self.detector.poll()
        self.polls += 1
        if _obs.ENABLED:
            self._m_polls.inc()
        dead = [tr for tr in report.transitions if tr.health is Health.DEAD]
        if dead:
            # Freeze rebalancing for the duration of the repairs: moving a
            # recovering server's key interval mid-replay could strand
            # logged tuples outside the interval its log partition maps to.
            # resume() runs only after every repair verified (the repaired
            # component answers its liveness probe again).
            balancer = getattr(self.system, "balancer", None)
            if balancer is not None:
                balancer.pause()
            try:
                for tr in dead:
                    repair = self._repair(tr)
                    if repair is None:
                        continue
                    report.repairs.append(repair)
                    self.repairs.append(repair)
                    report.tuples_replayed += repair.tuples_replayed
                    # Repaired = healthy: clear the detector verdict so a
                    # fresh death produces a fresh DEAD transition (and a
                    # fresh repair) even before the next successful beat.
                    self.detector.reset(tr.kind, tr.index)
            finally:
                if balancer is not None:
                    balancer.resume()
        if self.repair_storage:
            report.replicas_scrubbed = self.system.dfs.scrub()
            report.replicas_restored = self.system.dfs.re_replicate()
            # Sealed trees whose background write failed are repairable
            # storage state too: requeue them now that the DFS fault may
            # have lifted.  (No-op in sync flush mode.)
            report.flushes_retried = self.system.retry_failed_flushes()
        return report

    def poll_until_quiet(self, max_polls: int = 10) -> List[PollReport]:
        """Poll until a cycle finds nothing to do (or ``max_polls``).

        Convergence helper for tests and the chaos harness: with
        ``dead_after`` consecutive misses required, a single poll may only
        move a failed component to SUSPECT -- this keeps polling until the
        system is stable.
        """
        reports = []
        for _ in range(max_polls):
            report = self.poll()
            reports.append(report)
            if report.quiet:
                break
        return reports

    def _repair(self, tr: Transition) -> Optional[RepairAction]:
        system = self.system
        if tr.kind == "indexing":
            # The ingest path quarantined (or will quarantine) this
            # server's interval; recovery replays the durable log from the
            # flush checkpoint, draining the buffered suffix.
            replayed = system.recover_indexing_server(tr.index)
            # Verify before the balancer resumes: the server must be
            # answering probes again with its quarantine lifted, otherwise
            # leave it DEAD so the next poll re-detects and re-repairs.
            server = system.indexing_servers[tr.index]
            if not server.alive or tr.index in system.quarantined_servers:
                return None
            if _obs.ENABLED:
                self._m_recoveries["indexing"].inc()
                self._m_replayed.inc(replayed)
            return RepairAction("indexing", tr.index, "replayed", replayed)
        if tr.kind == "query_server":
            system.recover_query_server(tr.index)
            if _obs.ENABLED:
                self._m_recoveries["query_server"].inc()
            return RepairAction("query_server", tr.index, "restarted")
        if tr.kind == "coordinator":
            system.promote_coordinator()  # calls rebind_coordinator()
            if _obs.ENABLED:
                self._m_recoveries["coordinator"].inc()
            return RepairAction("coordinator", tr.index, "promoted")
        return None

    # --- optional background loop ----------------------------------------------

    def start(self, interval: float = 0.05) -> None:
        """Run :meth:`poll` every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.poll()

        self._thread = threading.Thread(
            target=loop, name="waterwheel-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop (no-op when not started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
