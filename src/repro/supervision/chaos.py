"""Seeded chaos harness: random faults + supervised recovery + full audit.

One :func:`run_chaos` call drives a complete Waterwheel deployment through
a randomized fault schedule while ingest and queries keep flowing, with a
:class:`~repro.supervision.supervisor.Supervisor` polling between steps,
then heals everything and audits the end state:

* ``verify_system`` passes (conservation: durable log == chunks + memory);
* zero acknowledged-tuple loss -- every tuple whose insert returned
  normally appears in a final full-range query, and the final result holds
  exactly the durable log's tuples (nothing lost, nothing invented);
* every chunk is back at the replication factor and no replica copy fails
  its checksum;
* no corrupt or fabricated bytes ever surfaced in a query result.

Fault kinds: indexing-server / query-server / coordinator crashes, DFS
node failures and revivals, replica bit-flips, chunk-write failures
(``flush_break``: the next few DFS puts fail, sometimes after a hang --
a flush dying mid-write), and RPC delay/drop/fail rules on message-plane
edges.  Drop/fail rules are only armed on query and
supervisor edges: the ingest path hands durability to the log *before*
delivery, and this reproduction pushes tuples to indexing servers instead
of having them pull from the log (the paper's design), so an injected
transport loss between the log append and an *alive* server's delivery
would strand a durable tuple with no recovery to drain it.  Delay rules
may hit any edge.

Everything is derived from ``seed`` -- same seed, same schedule, same
workload -- so a failing run is replayable with ``repro chaos --seed N``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import WaterwheelConfig, small_config
from repro.core.indexing_server import ServerDownError as _IndexingDown
from repro.core.model import DataTuple
from repro.core.query_server import ServerDownError as _QueryDown
from repro.core.system import Waterwheel
from repro.core.verify import verify_system
from repro.rpc import RpcError
from repro.storage import ChunkWriteError
from repro.workloads import uniform_records

#: Edges that may receive delay rules (any edge is safe to slow down).
DELAY_EDGES = (
    "waterwheel->dispatcher",
    "dispatcher->indexing",
    "coordinator->indexing",
    "coordinator->query_server",
    "query_server->dfs",
    "supervisor->indexing",
    "supervisor->query_server",
    "supervisor->coordinator",
    "balancer->dispatcher",
    "balancer->indexing",
)

#: Edges that may receive drop/fail rules (see module docstring for why
#: the ingest edges are excluded).  The balancer edges are safe to break:
#: a lost histogram defers the trigger and a failed reassign aborts the
#: install with a rollback -- no half-installed partition either way.
BREAK_EDGES = (
    "coordinator->indexing",
    "coordinator->query_server",
    "query_server->dfs",
    "supervisor->indexing",
    "supervisor->query_server",
    "supervisor->coordinator",
    "balancer->dispatcher",
    "balancer->indexing",
)

#: Weighted event palette: crashes dominate, network weather rides along.
#: ``rebalance`` forces a balancer trigger check; ``rebalance_break`` arms
#: enough reassign failures to survive the edge's retries, then triggers --
#: an indexing server effectively dying mid-install.
_EVENT_KINDS = (
    ["kill_indexing"] * 3
    + ["kill_query"] * 2
    + ["kill_coordinator"]
    + ["kill_node"] * 2
    + ["revive_node"]
    + ["corrupt_replica"] * 2
    + ["rpc_delay"]
    + ["rpc_drop"]
    + ["rpc_fail"]
    + ["rebalance"] * 2
    + ["rebalance_break"]
    + ["flush_break"] * 2
)

_QUERY_ERRORS = (RpcError, _IndexingDown, _QueryDown)

#: Ingest additionally sees DFS write failures: sync mode surfaces an
#: injected put fault to the caller (the tuple is already durable in the
#: log); async mode parks the sealed tree for a supervisor retry instead.
_INGEST_ERRORS = _QUERY_ERRORS + (ChunkWriteError,)


@dataclass
class ChaosEvent:
    """One fault the schedule fired (or skipped, with the reason)."""

    step: int
    kind: str
    detail: str = ""
    fired: bool = True

    def __str__(self) -> str:
        status = "" if self.fired else " [skipped]"
        return f"step {self.step}: {self.kind} {self.detail}{status}"


@dataclass
class ChaosReport:
    """Outcome of one chaos run; ``ok`` means every invariant held."""

    seed: int
    steps: int
    transport: str
    tuples_offered: int = 0
    tuples_acked: int = 0
    tuples_unacked: int = 0
    tuples_in_log: int = 0
    tuples_in_final_result: int = 0
    queries_run: int = 0
    queries_failed: int = 0
    queries_partial: int = 0
    recoveries: int = 0
    tuples_replayed: int = 0
    replicas_restored: int = 0
    replicas_scrubbed: int = 0
    rebalances: int = 0
    rebalances_deferred: int = 0
    rebalances_aborted: int = 0
    flushes_retried: int = 0
    events: List[ChaosEvent] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run ended fully consistent."""
        return not self.problems

    def summary(self) -> str:
        """One-line report for logs/CLIs."""
        status = "OK" if self.ok else f"{len(self.problems)} PROBLEM(S)"
        fired = sum(1 for e in self.events if e.fired)
        return (
            f"[{status}] seed={self.seed} transport={self.transport} "
            f"acked={self.tuples_acked}/{self.tuples_offered} "
            f"events={fired} queries={self.queries_run} "
            f"(failed={self.queries_failed} partial={self.queries_partial}) "
            f"recoveries={self.recoveries} replayed={self.tuples_replayed}"
        )

    def as_dict(self) -> dict:
        """JSON-friendly view (the CLI's ``--json`` output)."""
        out = {
            k: v
            for k, v in vars(self).items()
            if k not in ("events", "problems")
        }
        out["ok"] = self.ok
        out["events"] = [str(e) for e in self.events]
        out["problems"] = list(self.problems)
        return out


def _fire(
    ww: Waterwheel, rng: random.Random, kind: str, step: int
) -> ChaosEvent:
    """Apply one fault, honouring safety guards (never unrecoverable)."""
    event = ChaosEvent(step, kind)
    if kind == "kill_indexing":
        alive = [s.server_id for s in ww.indexing_servers if s.alive]
        if not alive:
            event.fired, event.detail = False, "all already dead"
        else:
            sid = rng.choice(alive)
            ww.kill_indexing_server(sid)
            event.detail = f"server {sid}"
    elif kind == "kill_query":
        alive = [s.server_id for s in ww.query_servers if s.alive]
        if len(alive) <= 1:
            event.fired, event.detail = False, "would kill last query server"
        else:
            sid = rng.choice(alive)
            ww.kill_query_server(sid)
            event.detail = f"server {sid}"
    elif kind == "kill_coordinator":
        if not ww.coordinator.alive:
            event.fired, event.detail = False, "already dead"
        else:
            ww.kill_coordinator()
    elif kind == "kill_node":
        alive = [n.node_id for n in ww.cluster.nodes if n.alive]
        if len(alive) <= 2:
            event.fired, event.detail = False, "too few alive nodes"
        else:
            node = rng.choice(alive)
            ww.cluster.kill(node)
            event.detail = f"node {node}"
    elif kind == "revive_node":
        failed = sorted(ww.cluster.failed_nodes)
        if not failed:
            event.fired, event.detail = False, "no failed node"
        else:
            node = rng.choice(failed)
            ww.cluster.revive(node)
            event.detail = f"node {node}"
    elif kind == "corrupt_replica":
        chunk_ids = ww.dfs.chunk_ids()
        if not chunk_ids:
            event.fired, event.detail = False, "no chunks yet"
        else:
            chunk_id = rng.choice(sorted(chunk_ids))
            node = rng.choice(ww.dfs.location(chunk_id).replicas)
            ww.dfs.corrupt_replica(chunk_id, node)
            event.detail = f"{chunk_id} on node {node}"
    elif kind == "rpc_delay":
        edge = rng.choice(DELAY_EDGES)
        times = rng.randint(2, 6)
        ww.faults.inject(edge=edge, delay=0.001, times=times)
        event.detail = f"{edge} x{times}"
    elif kind in ("rpc_drop", "rpc_fail"):
        edge = rng.choice(BREAK_EDGES)
        times = rng.randint(1, 4)
        ww.faults.inject(
            edge=edge,
            drop=(kind == "rpc_drop"),
            fail=(kind == "rpc_fail"),
            times=times,
        )
        event.detail = f"{edge} x{times}"
    elif kind == "rebalance":
        installed = ww.balancer.maybe_rebalance()
        if installed is not None:
            event.detail = f"installed epoch {ww.shared_partition.epoch}"
        else:
            event.detail = ww.balancer.last_deferral or "no skew"
    elif kind == "flush_break":
        # The next 1-3 chunk writes fail (sometimes after a hang): a flush
        # dying mid-write.  Sync mode surfaces the failure to ingest with
        # the tree intact; async mode parks the sealed tree as failed
        # until the supervisor's retry pass -- either way the durable log
        # still holds every tuple, so the end-state audit must balance.
        times = rng.randint(1, 3)
        hang = 0.002 if rng.random() < 0.5 else 0.0
        ww.dfs.inject_put_faults(times=times, hang=hang)
        event.detail = f"next {times} DFS writes fail" + (
            " after a hang" if hang else ""
        )
    elif kind == "rebalance_break":
        # 3 consecutive fail faults defeat the edge's default 2 retries,
        # so if an install is attempted its reassign fails mid-flight and
        # the balancer must roll back (a server dying mid-rebalance).
        ww.faults.inject(edge="balancer->indexing", fail=True, times=3)
        installed = ww.balancer.maybe_rebalance()
        if installed is not None:
            event.detail = "install survived injected faults"
        elif ww.balancer.last_deferral:
            event.detail = f"deferred: {ww.balancer.last_deferral}"
        else:
            event.detail = "install aborted or no skew"
    else:  # pragma: no cover - schedule only emits known kinds
        event.fired, event.detail = False, "unknown kind"
    return event


def _skew(data, cfg: WaterwheelConfig, rng: random.Random):
    """Remap ~30% of a uniform stream onto a drifting hot key cluster."""
    span = cfg.key_hi - cfg.key_lo
    n = len(data)
    out = []
    for i, t in enumerate(data):
        if rng.random() < 0.3:
            centre = cfg.key_lo + span * (0.2 + 0.6 * i / max(1, n - 1))
            key = int(centre + rng.gauss(0.0, span * 0.01))
            key = min(cfg.key_hi - 1, max(cfg.key_lo, key))
            out.append(DataTuple(key, t.ts, t.payload, t.size))
        else:
            out.append(t)
    return out


def run_chaos(
    seed: int = 7,
    *,
    records: int = 3000,
    steps: int = 15,
    events: int = 6,
    transport: Optional[str] = "inline",
    config: Optional[WaterwheelConfig] = None,
    supervisor_kwargs: Optional[dict] = None,
) -> ChaosReport:
    """Run one seeded chaos scenario end to end; returns the audit report.

    ``records`` tuples are ingested over ``steps`` steps (alternating the
    per-tuple and batched paths), each step runs a couple of range queries
    and one supervisor poll, and ``events`` faults fire at seeded steps.
    After the schedule, every fault is healed (rules cleared, nodes
    revived), the supervisor polls until quiet, and the final audit fills
    ``ChaosReport.problems`` with every violated invariant (empty = pass).
    """
    rng = random.Random(seed)
    cfg = config or small_config(n_nodes=5, rebalance_check_every=500)
    report = ChaosReport(seed=seed, steps=steps, transport=transport or "inline")

    data = uniform_records(
        records, key_lo=cfg.key_lo, key_hi=cfg.key_hi, seed=seed ^ 0x5EED
    )
    # Skew the stream: ~30% of keys are remapped onto a narrow hot cluster
    # whose centre drifts across the domain, so the balancer's trigger
    # genuinely fires (and re-fires) during the fault schedule instead of
    # rebalancing being dead code under a uniform workload.
    data = _skew(data, cfg, random.Random(seed ^ 0xD81F7))
    offered = {(t.key, t.ts) for t in data}
    acked: set = set()

    schedule: dict = {}
    for _ in range(events):
        step = rng.randrange(steps)
        schedule.setdefault(step, []).append(rng.choice(_EVENT_KINDS))

    ww = Waterwheel(cfg, transport=transport)
    # On a concurrent transport a dropped message is lost in flight; the
    # caller's deadline is the only thing that turns the loss into a
    # redispatch.  The query fan-out edges default to timeout=None (wait
    # forever), so arm finite deadlines on the edges this schedule breaks
    # -- otherwise one injected drop hangs a query instead of degrading it.
    ww.plane.set_policy("coordinator->query_server", timeout=0.25)
    ww.plane.set_policy("coordinator->indexing", timeout=0.25)
    supervisor = ww.supervise(**(supervisor_kwargs or {}))
    try:
        per_step = max(1, records // steps)
        for step in range(steps):
            for kind in schedule.get(step, ()):
                report.events.append(_fire(ww, rng, kind, step))

            batch = data[step * per_step : (step + 1) * per_step]
            if step == steps - 1:
                batch = data[step * per_step :]
            report.tuples_offered += len(batch)
            if rng.random() < 0.5:
                try:
                    ww.insert_batch(batch)
                except _INGEST_ERRORS:
                    report.tuples_unacked += len(batch)
                else:
                    report.tuples_acked += len(batch)
                    acked.update((t.key, t.ts) for t in batch)
            else:
                for t in batch:
                    try:
                        ww.insert(t)
                    except _INGEST_ERRORS:
                        report.tuples_unacked += 1
                    else:
                        report.tuples_acked += 1
                        acked.add((t.key, t.ts))

            for _ in range(2):
                lo = rng.randrange(cfg.key_lo, cfg.key_hi)
                hi = min(cfg.key_hi - 1, lo + rng.randrange(200, 2000))
                t_hi = (step + 1) * per_step / 1000.0
                report.queries_run += 1
                try:
                    result = ww.query(lo, hi, 0.0, t_hi)
                except _QUERY_ERRORS:
                    report.queries_failed += 1
                    continue
                if result.partial:
                    report.queries_partial += 1
                for t in result.tuples:
                    if (t.key, t.ts) not in offered:
                        report.problems.append(
                            f"query surfaced fabricated tuple "
                            f"({t.key}, {t.ts}) at step {step}"
                        )

            poll = supervisor.poll()
            report.recoveries += len(poll.repairs)
            report.tuples_replayed += poll.tuples_replayed
            report.replicas_restored += poll.replicas_restored
            report.replicas_scrubbed += poll.replicas_scrubbed
            report.flushes_retried += poll.flushes_retried

        # --- heal everything, then audit the end state ---------------------
        ww.faults.clear()
        ww.dfs.clear_put_faults()
        for node in sorted(ww.cluster.failed_nodes):
            ww.cluster.revive(node)
        for poll in supervisor.poll_until_quiet():
            report.recoveries += len(poll.repairs)
            report.tuples_replayed += poll.tuples_replayed
            report.replicas_restored += poll.replicas_restored
            report.replicas_scrubbed += poll.replicas_scrubbed
            report.flushes_retried += poll.flushes_retried
        # Let the async flush pipeline settle before auditing: the
        # conservation check reads chunks and in-memory trees as two
        # snapshots, so a commit landing between them would false-positive.
        ww.drain_flushes()

        for server in ww.indexing_servers:
            if not server.alive:
                report.problems.append(
                    f"indexing server {server.server_id} still dead after heal"
                )
        for server in ww.query_servers:
            if not server.alive:
                report.problems.append(
                    f"query server {server.server_id} still dead after heal"
                )
        if not ww.coordinator.alive:
            report.problems.append("coordinator still dead after heal")
        if ww.quarantined_servers:
            report.problems.append(
                f"quarantine not drained: {sorted(ww.quarantined_servers)}"
            )

        # Partition install protocol audit: the committed metastore state,
        # the dispatchers' shared partition and every server's assignment
        # must agree -- an aborted or half-installed rebalance would tear
        # exactly these apart.
        report.rebalances = ww.balancer.rebalance_count
        report.rebalances_deferred = ww.balancer.deferred_count
        report.rebalances_aborted = ww.balancer.aborted_count
        committed = ww.metastore.get("/partition/boundaries")
        if committed != list(ww.shared_partition.current.boundaries):
            report.problems.append(
                f"committed boundaries {committed} != shared partition "
                f"{ww.shared_partition.current.boundaries}"
            )
        committed_epoch = ww.metastore.get("/partition/epoch")
        if committed_epoch != ww.shared_partition.epoch:
            report.problems.append(
                f"committed epoch {committed_epoch} != shared epoch "
                f"{ww.shared_partition.epoch}"
            )
        expected = ww.shared_partition.current.padded_intervals(
            len(ww.indexing_servers)
        )
        for server in ww.indexing_servers:
            want = expected[server.server_id]
            if server.assigned != want:
                report.problems.append(
                    f"indexing server {server.server_id} assigned "
                    f"{server.assigned}, partition says {want}"
                )

        audit = verify_system(ww)
        report.tuples_in_log = audit.tuples_in_log
        report.problems.extend(audit.problems)

        under = ww.dfs.under_replicated()
        if under:
            report.problems.append(
                f"{len(under)} chunk(s) under-replicated after heal: "
                f"{under[:3]}..."
            )
        still_corrupt = [
            chunk_id
            for chunk_id in ww.dfs.chunk_ids()
            if ww.dfs.corrupted_replicas(chunk_id)
        ]
        if still_corrupt:
            report.problems.append(
                f"replica copies still corrupt after heal: {still_corrupt}"
            )

        final = ww.query(
            cfg.key_lo,
            cfg.key_hi - 1,
            0.0,
            data[-1].ts + cfg.late_delta + 1.0,
        )
        report.tuples_in_final_result = len(final.tuples)
        if final.partial:
            report.problems.append(
                f"final query is partial (unreadable: {final.unreadable_chunks})"
            )
        got = {(t.key, t.ts) for t in final.tuples}
        lost = acked - got
        if lost:
            report.problems.append(
                f"{len(lost)} acknowledged tuple(s) lost: "
                f"{sorted(lost)[:3]}..."
            )
        if len(final.tuples) != audit.tuples_in_log:
            report.problems.append(
                f"final query returned {len(final.tuples)} tuples, "
                f"durable log holds {audit.tuples_in_log}"
            )
        fabricated = got - offered
        if fabricated:
            report.problems.append(
                f"final query surfaced fabricated tuples: "
                f"{sorted(fabricated)[:3]}..."
            )
    finally:
        ww.close()
    return report
