"""Supervision: failure detection, automatic recovery, chaos testing.

The paper's deployment inherits self-healing from its substrate (Storm
restarts workers, HDFS re-replicates blocks, ZooKeeper elects leaders);
this package is our single-process equivalent, closing the
detect -> recover -> verify loop over a running
:class:`~repro.core.system.Waterwheel`:

* :class:`FailureDetector` -- heartbeat probes over the message plane with
  deadline/phi-style suspicion levels;
* :class:`Supervisor` -- turns DEAD verdicts into the matching repair
  (durable-log replay, cold-cache restart, standby-coordinator promotion)
  plus a storage scrub/re-replication pass each cycle;
* :func:`run_chaos` -- a seeded chaos harness that randomizes faults under
  live traffic and audits the healed system end to end.

Attach a supervisor with ``ww.supervise()`` (see
``docs/ARCHITECTURE.md``'s fault-tolerance section).
"""

from repro.supervision.chaos import (
    ChaosEvent,
    ChaosReport,
    run_chaos,
)
from repro.supervision.detector import (
    FailureDetector,
    Health,
    TargetState,
    Transition,
)
from repro.supervision.supervisor import (
    PollReport,
    RepairAction,
    Supervisor,
)

__all__ = [
    "ChaosEvent",
    "ChaosReport",
    "FailureDetector",
    "Health",
    "PollReport",
    "RepairAction",
    "Supervisor",
    "TargetState",
    "Transition",
    "run_chaos",
]
