"""Heartbeat failure detection over the message plane.

The paper (Section V) inherits failure detection from its substrate --
Storm supervisors and ZooKeeper ephemeral nodes notice dead workers.  This
module is our equivalent: every supervised component (indexing servers,
query servers, the coordinator) answers a ``heartbeat()`` probe over a
dedicated message-plane edge (``supervisor->indexing``,
``supervisor->query_server``, ``supervisor->coordinator``), so the
detector sees exactly the RPC weather the data path sees -- injected
delay/drop/fail rules on those edges produce missed beats, just like a
real network partition.

The detector is *deadline-style* with a phi-like suspicion level: each
:meth:`FailureDetector.poll` probes every target once; a probe that raises
(dead server or broken edge) counts as a miss.  ``misses / dead_after``
is the target's suspicion ``phi``: at ``suspect_after`` consecutive misses
the target is SUSPECT, at ``dead_after`` it is declared DEAD and the
supervisor may act.  A successful probe resets the count (a SUSPECT
target recovers silently; a DEAD one is reported back as recovered).

Nothing here runs on the ingest or query hot path: probes happen only
when :meth:`poll` is called (directly, or by the supervisor's optional
background thread).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Sequence, Tuple

from repro.obs import metrics as _obs
from repro.rpc import MessagePlane, RpcError


class Health(Enum):
    """Detector verdict for one supervised target."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class TargetState:
    """Rolling detector state for one supervised component."""

    kind: str
    index: int
    misses: int = 0
    health: Health = Health.ALIVE
    last_beat: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Transition:
    """One health-state change observed during a poll."""

    kind: str
    index: int
    health: Health
    previous: Health


class FailureDetector:
    """Deadline/phi-style failure detector over message-plane heartbeats."""

    def __init__(
        self,
        plane: MessagePlane,
        *,
        suspect_after: int = 1,
        dead_after: int = 2,
    ):
        if not 1 <= suspect_after <= dead_after:
            raise ValueError("need 1 <= suspect_after <= dead_after")
        self.plane = plane
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self._groups: List[Tuple[str, Any, List[TargetState]]] = []
        reg = _obs.registry()
        self._m_beats = reg.counter("supervisor.heartbeats")
        self._m_misses = reg.counter("supervisor.missed_heartbeats")
        self._m_suspects = reg.counter("supervisor.suspects")
        self._m_deaths = reg.counter("supervisor.deaths")

    def watch(self, kind: str, instances: Sequence[Any]) -> None:
        """Supervise ``instances`` (each answering ``heartbeat()``) under
        the ``supervisor-><kind>`` edge.  Heartbeats are cheap liveness
        probes, so the edge gets a no-retry policy: one lost probe is one
        missed beat, not three."""
        edge = f"supervisor->{kind}"
        self.plane.set_policy(edge, retries=0, backoff=0.0)
        endpoint = self.plane.endpoint(edge, instances)
        states = [TargetState(kind, i) for i in range(len(instances))]
        self._groups.append((kind, endpoint, states))

    def rebind(self, kind: str, instances: Sequence[Any]) -> None:
        """Point an existing watch at replacement instances (e.g. a
        promoted standby coordinator), keeping the detector state."""
        for i, (group_kind, _ep, states) in enumerate(self._groups):
            if group_kind == kind:
                edge = f"supervisor->{kind}"
                endpoint = self.plane.endpoint(edge, instances)
                self._groups[i] = (kind, endpoint, states)
                return
        raise ValueError(f"no watch registered for kind {kind!r}")

    # --- probing --------------------------------------------------------------

    def poll(self) -> List[Transition]:
        """Probe every target once; returns the health transitions."""
        transitions: List[Transition] = []
        for kind, endpoint, states in self._groups:
            for state in states:
                previous = state.health
                try:
                    beat = endpoint.call(state.index, "heartbeat")
                except (RpcError, RuntimeError):
                    # ServerDownError (either flavour) or a transport
                    # failure: indistinguishable to a remote detector.
                    state.misses += 1
                    if _obs.ENABLED:
                        self._m_misses.inc()
                    if state.misses >= self.dead_after:
                        state.health = Health.DEAD
                    elif state.misses >= self.suspect_after:
                        state.health = Health.SUSPECT
                else:
                    state.misses = 0
                    state.health = Health.ALIVE
                    state.last_beat = beat if isinstance(beat, dict) else {}
                    if _obs.ENABLED:
                        self._m_beats.inc()
                if state.health is not previous:
                    transitions.append(
                        Transition(kind, state.index, state.health, previous)
                    )
                    if _obs.ENABLED:
                        if state.health is Health.SUSPECT:
                            self._m_suspects.inc()
                        elif state.health is Health.DEAD:
                            self._m_deaths.inc()
        return transitions

    def reset(self, kind: str, index: int) -> None:
        """Mark a target healthy again (misses cleared, ALIVE).

        The supervisor calls this after repairing a DEAD target: repairs
        fire on the ALIVE/SUSPECT -> DEAD *transition*, so without the
        reset a component that dies again before its next successful
        heartbeat would sit at DEAD with no new transition -- and never be
        repaired again.  If the repair did not actually take (e.g. the
        detector was fooled by a broken supervisor edge), the next polls
        simply re-detect and re-repair.
        """
        for group_kind, _ep, states in self._groups:
            if group_kind == kind:
                states[index].misses = 0
                states[index].health = Health.ALIVE
                return
        raise ValueError(f"no watch registered for kind {kind!r}")

    # --- introspection --------------------------------------------------------

    def health(self, kind: str, index: int) -> Health:
        """Current verdict for one target."""
        for group_kind, _ep, states in self._groups:
            if group_kind == kind:
                return states[index].health
        raise ValueError(f"no watch registered for kind {kind!r}")

    def state_view(self) -> List[dict]:
        """JSON-friendly dump of every target's detector state."""
        out = []
        for kind, _ep, states in self._groups:
            for state in states:
                out.append(
                    {
                        "kind": kind,
                        "index": state.index,
                        "health": state.health.value,
                        "misses": state.misses,
                        "phi": min(1.0, state.misses / self.dead_after),
                    }
                )
        return out
