"""Query-lifecycle trace spans.

A *span* is one timed stage of a query's execution; spans nest, so one
query produces a tree::

    query                      <- Coordinator.execute
      decompose                <- R-tree catalog + fresh-region lookup
      fresh                    <- indexing-server branch
        fresh_scan             <- one per consulted indexing server
      dispatch                 <- chunk branch (LADA / baseline policy)
        subquery               <- one per chunk subquery
          chunk_prefix         <- header+directory+sketch load (or cache hit)
          bloom_prune          <- per-leaf temporal-sketch pruning
          leaf_scan            <- decode + key/time/predicate filtering
            leaf_fetch         <- span-batch (or whole-blob) read of the
              dfs_read_ranges     missing blocks, over the DFS data plane
      merge                    <- result transfer + latency folding

Tracing is **off by default** and costs one module-attribute read per
``span()`` call when off (the shared no-op context manager is returned, no
``Span`` is allocated).  When on, spans record wall-clock ``perf_counter``
durations; simulated-seconds costs from the cost model ride along as span
attributes, so both clocks are visible in one tree.

The active-span stack is **thread-local**: spans opened on a message-plane
worker thread (threaded transport) nest under that worker's own stack and
form their own root trees, never corrupting the caller's tree.
``last_trace()`` returns the most recent root completed on *any* thread.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional

#: Module-level master switch, same contract as ``metrics.ENABLED``.
ENABLED = False


def set_enabled(on: bool) -> None:
    """Flip the process-wide tracing switch."""
    global ENABLED
    ENABLED = bool(on)


def is_enabled() -> bool:
    """Current state of the master switch."""
    return ENABLED


class Span:
    """One timed stage: name, wall-clock bounds, attributes, children."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None):
        self.name = name
        self.attrs: Dict[str, object] = attrs or {}
        self.start = 0.0
        self.end = 0.0
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return max(0.0, self.end - self.start)

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def child(self, name: str) -> Optional["Span"]:
        """First direct child with this name, or None."""
        for c in self.children:
            if c.name == name:
                return c
        return None

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for c in self.children:
            yield from c.walk()

    def as_dict(self) -> dict:
        """JSON-friendly tree view (durations in seconds)."""
        return {
            "name": self.name,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [c.as_dict() for c in self.children],
        }

    # --- rendering ------------------------------------------------------------

    def render(self) -> str:
        """Indented text tree with durations and % of the root."""
        total = self.duration or 1e-12
        lines: List[str] = []

        def fmt_attrs(attrs: Dict[str, object]) -> str:
            if not attrs:
                return ""
            parts = []
            for k in sorted(attrs):
                v = attrs[k]
                parts.append(f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}")
            return "  [" + " ".join(parts) + "]"

        def emit(span: "Span", depth: int) -> None:
            pct = 100.0 * span.duration / total
            lines.append(
                f"{'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}} "
                f"{span.duration * 1e3:9.3f} ms  {pct:5.1f}%"
                f"{fmt_attrs(span.attrs)}"
            )
            for c in span.children:
                emit(c, depth + 1)

        emit(self, 0)
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullSpan()

#: Per-thread stack of currently open spans; the last completed root trace
#: (shared across threads -- last writer wins).
_tls = threading.local()
_last_root: Optional[Span] = None


def _get_stack() -> List[Span]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class _SpanContext:
    """Context manager that opens a :class:`Span` on the active stack."""

    __slots__ = ("_span",)

    def __init__(self, name: str, attrs: Dict[str, object]):
        self._span = Span(name, attrs)

    def __enter__(self) -> Span:
        sp = self._span
        stack = _get_stack()
        if stack:
            stack[-1].children.append(sp)
        stack.append(sp)
        sp.start = perf_counter()
        return sp

    def __exit__(self, *exc) -> bool:
        global _last_root
        sp = self._span
        sp.end = perf_counter()
        # Pop up to and including this span (robust to mismatched exits).
        stack = _get_stack()
        while stack:
            top = stack.pop()
            if top is sp:
                break
        if not stack:
            _last_root = sp
        return False


def span(name: str, **attrs):
    """Open a trace span: ``with span("decompose", n=3) as sp: ...``.

    Returns the shared no-op context manager when tracing is disabled, so
    disabled call sites allocate nothing.  The ``with`` target is the
    :class:`Span` (or None when disabled) -- guard attribute writes with
    ``if sp is not None``.
    """
    if not ENABLED:
        return _NULL
    return _SpanContext(name, attrs)


def current() -> Optional[Span]:
    """The innermost open span on this thread, or None."""
    stack = _get_stack()
    return stack[-1] if stack else None


def set_attr(key: str, value: object) -> None:
    """Attach an attribute to the innermost open span (no-op when none)."""
    stack = _get_stack()
    if stack:
        stack[-1].attrs[key] = value


def last_trace() -> Optional[Span]:
    """The most recently completed root span, or None."""
    return _last_root


def clear() -> None:
    """Drop this thread's open-span stack and the last trace (tests)."""
    global _last_root
    _get_stack().clear()
    _last_root = None


def stage_coverage(root: Span) -> float:
    """Fraction of the root's wall time covered by its direct children.

    The acceptance gauge for the span tree: decompose + fresh + dispatch +
    merge should account for ~all of ``Coordinator.execute``.
    """
    if root.duration <= 0.0:
        return 1.0
    return sum(c.duration for c in root.children) / root.duration
