"""Observability: process-wide metrics registry + query-lifecycle tracing.

Two independently switchable facilities, both **off by default** and
zero-cost when off:

* :mod:`repro.obs.metrics` -- counters, gauges and streaming log2
  histograms in one process-wide :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` -- nested wall-clock spans that follow one
  query through decompose -> dispatch -> per-server subquery -> bloom
  prune -> chunk read -> merge.

Usage::

    from repro import obs

    obs.enable()                      # metrics + tracing
    ...run queries...
    print(obs.metrics.render_table(obs.metrics.registry().snapshot()))
    print(obs.tracing.last_trace().render())
    obs.disable()

See ``docs/OBSERVABILITY.md`` for the full metric and span catalogue.
"""

from __future__ import annotations

from repro.obs import metrics, tracing
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    render_table,
)
from repro.obs.tracing import Span, last_trace, span, stage_coverage


def enable(metrics_on: bool = True, tracing_on: bool = True) -> None:
    """Turn observability on (both facilities by default)."""
    metrics.set_enabled(metrics_on)
    tracing.set_enabled(tracing_on)


def disable() -> None:
    """Turn both facilities off (instrument values are retained)."""
    metrics.set_enabled(False)
    tracing.set_enabled(False)


def reset() -> None:
    """Zero every metric and drop any recorded trace (tests, benchmarks)."""
    metrics.registry().reset()
    tracing.clear()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "disable",
    "enable",
    "last_trace",
    "metrics",
    "registry",
    "render_table",
    "reset",
    "span",
    "stage_coverage",
    "tracing",
]
