"""Process-wide metrics registry: counters, gauges, log2 histograms.

Production stores expose a metrics endpoint; this module is Waterwheel's.
A single process-wide :class:`MetricsRegistry` (see :func:`registry`) holds
named instruments; components resolve their instruments **once** at
construction and the hot path only pays

* one module-attribute read (``metrics.ENABLED``), and
* one integer add on the pre-resolved instrument when enabled,

so ingestion with metrics disabled is indistinguishable from the
uninstrumented build, and enabled costs stay well under the 5% throughput
budget (see ``benchmarks/wallclock_throughput.py``).

Histograms are fixed-bucket base-2: ``observe()`` indexes a preallocated
bucket array via :func:`math.frexp` -- no per-sample allocation, no sorting,
O(1) memory regardless of sample count.  Percentiles are read from the
bucket cumulative counts; with the min/max clamp a single-sample histogram
reports its exact value and every percentile is within one power of two of
the true order statistic.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

#: Module-level master switch.  Components read this attribute directly
#: (``from repro.obs import metrics as _obs`` ... ``if _obs.ENABLED:``);
#: never ``from repro.obs.metrics import ENABLED`` (that copies the value).
ENABLED = False


def set_enabled(on: bool) -> None:
    """Flip the process-wide metrics switch."""
    global ENABLED
    ENABLED = bool(on)


def is_enabled() -> bool:
    """Current state of the master switch."""
    return ENABLED


def _labelled(name: str, labels: Dict[str, object]) -> str:
    """Canonical instrument key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def _reset(self) -> None:
        self.value = 0

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def _reset(self) -> None:
        self.value = 0.0

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming base-2 histogram with O(1) memory and no allocation.

    Bucket ``0`` holds values ``<= scale``; bucket ``i`` holds values in
    ``(scale * 2**(i-1), scale * 2**i]``; the last bucket is unbounded.
    With the default ``scale`` of 1 microsecond and 64 buckets the range
    covers sub-microsecond to ~584 thousand years, so durations never
    saturate in practice.
    """

    N_BUCKETS = 64

    __slots__ = ("name", "unit", "scale", "_buckets", "count", "sum", "min", "max")

    def __init__(self, name: str, scale: float = 1e-6, unit: str = "seconds"):
        if scale <= 0:
            raise ValueError("scale must be > 0")
        self.name = name
        self.unit = unit
        self.scale = scale
        self._buckets = [0] * self.N_BUCKETS
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _index(self, value: float) -> int:
        if value <= self.scale:
            return 0
        m, e = math.frexp(value / self.scale)  # value/scale = m * 2**e
        idx = e - 1 if m == 0.5 else e  # ceil(log2(value / scale))
        return idx if idx < self.N_BUCKETS else self.N_BUCKETS - 1

    def observe(self, value: float) -> None:
        self._buckets[self._index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_upper_bound(self, index: int) -> float:
        """Inclusive upper bound of bucket ``index`` (last bucket: +inf)."""
        if index >= self.N_BUCKETS - 1:
            return float("inf")
        return self.scale * (2.0 ** index)

    def percentile(self, p: float) -> Optional[float]:
        """Upper bound on the ``p``-quantile (``0 < p <= 1``).

        The smallest bucket upper bound covering at least ``ceil(p * count)``
        samples, clamped to the observed max -- so a one-sample histogram is
        exact and any percentile overshoots the true order statistic by at
        most one power of two.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        if self.count == 0:
            return None
        rank = math.ceil(p * self.count)
        seen = 0
        for i, n in enumerate(self._buckets):
            seen += n
            if seen >= rank:
                return min(self.bucket_upper_bound(i), self.max)
        return self.max  # unreachable; defensive

    def _reset(self) -> None:
        for i in range(self.N_BUCKETS):
            self._buckets[i] = 0
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "unit": self.unit,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors.

    ``counter``/``gauge``/``histogram`` return the *same* object for the
    same name+labels, so components can cache the handle at construction
    and never touch the registry dict on a hot path.  :meth:`reset` zeroes
    every instrument **in place** -- cached handles stay valid.
    """

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, cls, key: str, *args):
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(key, *args)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, _labelled(name, labels))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, _labelled(name, labels))

    def histogram(
        self, name: str, scale: float = 1e-6, unit: str = "seconds", **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, _labelled(name, labels), scale, unit)

    def get(self, name: str, **labels):
        """The instrument registered under this name, or None."""
        return self._instruments.get(_labelled(name, labels))

    def names(self) -> Iterable[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Zero every instrument in place (cached handles stay live)."""
        for inst in self._instruments.values():
            inst._reset()

    def snapshot(self, include_zero: bool = False) -> Dict[str, dict]:
        """JSON-friendly ``{name: {type, values...}}`` view.

        Untouched instruments (count/value 0) are skipped unless
        ``include_zero`` -- components pre-register instruments at import
        or construction, and an idle deployment should not list them all.
        """
        out: Dict[str, dict] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            d = inst.as_dict()
            if not include_zero:
                if d["type"] == "histogram" and d["count"] == 0:
                    continue
                if d["type"] != "histogram" and not d["value"]:
                    continue
            out[name] = d
        return out


#: The process-wide registry every component instruments against.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _REGISTRY


def render_table(snap: Dict[str, dict]) -> str:
    """Plain-text rendering of a registry snapshot (the CLI's output)."""
    lines = []
    counters = [(k, v) for k, v in snap.items() if v["type"] != "histogram"]
    hists = [(k, v) for k, v in snap.items() if v["type"] == "histogram"]
    if counters:
        width = max(len(k) for k, _ in counters)
        lines.append("counters / gauges:")
        for name, d in counters:
            lines.append(f"  {name.ljust(width)}  {d['value']}")
    if hists:
        width = max(len(k) for k, _ in hists)
        lines.append("histograms (count / mean / p50 / p95 / p99):")
        for name, d in hists:
            lines.append(
                f"  {name.ljust(width)}  n={d['count']}"
                f"  mean={d['mean']:.6g}  p50={d['p50']:.6g}"
                f"  p95={d['p95']:.6g}  p99={d['p99']:.6g}  [{d['unit']}]"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
