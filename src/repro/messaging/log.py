"""Durable, offset-addressable message log (the paper's Kafka substrate).

Fault tolerance of the insertion workflow (paper Section V) relies on the
input stream being replayable: each indexing server's input lives on one
partition of a topic; records get monotonically increasing offsets; after a
flush the server checkpoints its read offset to the metadata server, and a
restarted server replays from that offset to rebuild its in-memory tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass
class _Partition:
    records: List[Any] = field(default_factory=list)
    base_offset: int = 0  # offset of records[0]; grows with truncation

    @property
    def latest_offset(self) -> int:
        """The offset the next appended record will receive."""
        return self.base_offset + len(self.records)


class DurableLog:
    """Topics -> numbered partitions -> append-only record lists."""

    def __init__(self):
        self._topics: Dict[str, Dict[int, _Partition]] = {}

    def create_topic(self, topic: str, partitions: int) -> None:
        """Create a topic with numbered partitions."""
        if partitions < 1:
            raise ValueError("a topic needs at least one partition")
        if topic in self._topics:
            raise ValueError(f"topic {topic!r} already exists")
        self._topics[topic] = {i: _Partition() for i in range(partitions)}

    def _partition(self, topic: str, partition: int) -> _Partition:
        try:
            parts = self._topics[topic]
        except KeyError:
            raise KeyError(f"unknown topic {topic!r}") from None
        try:
            return parts[partition]
        except KeyError:
            raise KeyError(f"topic {topic!r} has no partition {partition}") from None

    def append(self, topic: str, partition: int, record: Any) -> int:
        """Append a record; returns its offset."""
        part = self._partition(topic, partition)
        part.records.append(record)
        return part.latest_offset - 1

    def append_batch(
        self, topic: str, partition: int, records: Sequence[Any]
    ) -> int:
        """Append a run of records in one call (the batched ingest path).

        Offsets are assigned contiguously in list order; returns the offset
        of the *first* record (record ``i`` gets ``first + i``).  One topic
        and partition lookup for the whole run instead of one per record.
        """
        part = self._partition(topic, partition)
        first = part.latest_offset
        part.records.extend(records)
        return first

    def latest_offset(self, topic: str, partition: int) -> int:
        """The offset the *next* record will receive."""
        return self._partition(topic, partition).latest_offset

    def replay(
        self, topic: str, partition: int, from_offset: int = 0
    ) -> List[Tuple[int, Any]]:
        """Records from ``from_offset`` onward as (offset, record) pairs."""
        part = self._partition(topic, partition)
        if from_offset < 0:
            raise ValueError("offset must be >= 0")
        if from_offset < part.base_offset:
            raise KeyError(
                f"offset {from_offset} was truncated "
                f"(log starts at {part.base_offset})"
            )
        start = from_offset - part.base_offset
        return list(enumerate(part.records[start:], start=from_offset))

    def truncate(self, topic: str, partition: int, upto_offset: int) -> int:
        """Discard records below ``upto_offset`` (retention after a flush
        checkpoint -- everything older is already durable in chunks).
        Returns the number of records dropped.  Offsets stay stable."""
        part = self._partition(topic, partition)
        if upto_offset <= part.base_offset:
            return 0
        drop = min(upto_offset, part.latest_offset) - part.base_offset
        del part.records[:drop]
        part.base_offset += drop
        return drop

    def base_offset(self, topic: str, partition: int) -> int:
        """The oldest offset still retained."""
        return self._partition(topic, partition).base_offset

    def partitions(self, topic: str) -> List[int]:
        """Partition numbers of a topic."""
        return sorted(self._topics.get(topic, {}))

    def topics(self) -> List[str]:
        """All topic names."""
        return sorted(self._topics)
