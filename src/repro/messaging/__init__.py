"""Durable log for replayable input streams (Kafka substrate)."""

from repro.messaging.log import DurableLog

__all__ = ["DurableLog"]
