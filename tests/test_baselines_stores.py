"""Tests for the HBase-like and Druid-like comparison stores."""

import random

from repro.baselines import DruidLike, HBaseLike
from repro.core.model import DataTuple
from repro.simulation import PipelineTopology


def make_tuples(n, key_hi=100_000, seed=0):
    rng = random.Random(seed)
    return [
        DataTuple(rng.randrange(0, key_hi), i * 0.01, payload=i, size=50)
        for i in range(n)
    ]


class TestHBaseLike:
    def test_query_matches_reference(self):
        store = HBaseLike(0, 100_000, n_regions=4, memtable_bytes=2048)
        data = make_tuples(3000)
        store.insert_many(data)
        res = store.query(10_000, 60_000, 5.0, 20.0)
        expected = [
            t for t in data if 10_000 <= t.key <= 60_000 and 5.0 <= t.ts <= 20.0
        ]
        assert sorted(t.payload for t in res.tuples) == sorted(
            t.payload for t in expected
        )
        assert res.latency > 0

    def test_latency_grows_with_key_selectivity(self):
        store = HBaseLike(0, 100_000, n_regions=4, memtable_bytes=2048)
        store.insert_many(make_tuples(10_000, seed=1))
        narrow = store.query(0, 1000, 0.0, 1000.0)
        wide = store.query(0, 50_000, 0.0, 1000.0)
        assert wide.latency > narrow.latency

    def test_latency_insensitive_to_time_selectivity(self):
        """No time index: the same key range costs the same regardless of
        the time filter (every key-matching tuple is read)."""
        store = HBaseLike(0, 100_000, n_regions=4, memtable_bytes=2048)
        store.insert_many(make_tuples(10_000, seed=2))
        short = store.query(0, 50_000, 0.0, 1.0)
        long = store.query(0, 50_000, 0.0, 1000.0)
        assert abs(short.latency - long.latency) / long.latency < 0.5

    def test_write_amplification_measured(self):
        store = HBaseLike(0, 100_000, n_regions=2, memtable_bytes=1024)
        store.insert_many(make_tuples(8000, seed=3))
        assert store.write_amplification > 1.2

    def test_insertion_rate_below_waterwheel_style(self):
        from repro.simulation import CostModel, system_insertion_rate

        store = HBaseLike(0, 100_000, n_regions=2, memtable_bytes=1024)
        store.insert_many(make_tuples(8000, seed=3))
        topology = PipelineTopology(12)
        hbase_rate = store.insertion_rate(topology, tuple_size=50)
        ww_rate = system_insertion_rate(
            CostModel(), topology, 50, chunk_bytes=16 << 20
        )
        assert hbase_rate < ww_rate

    def test_only_overlapping_regions_consulted(self):
        store = HBaseLike(0, 100_000, n_regions=4, memtable_bytes=2048)
        store.insert_many(make_tuples(1000, seed=4))
        res = store.query(0, 10_000, 0.0, 100.0)  # one region only
        assert res.subquery_count == 1


class TestDruidLike:
    def test_query_matches_reference(self):
        store = DruidLike(segment_duration=10.0, n_historicals=4)
        data = make_tuples(3000)
        store.insert_many(data)
        res = store.query(10_000, 60_000, 5.0, 20.0)
        expected = [
            t for t in data if 10_000 <= t.key <= 60_000 and 5.0 <= t.ts <= 20.0
        ]
        assert sorted(t.payload for t in res.tuples) == sorted(
            t.payload for t in expected
        )

    def test_segments_partition_by_time(self):
        store = DruidLike(segment_duration=10.0)
        store.insert_many(make_tuples(3000))  # timestamps span 30 s
        assert store.n_segments == 3

    def test_latency_flat_across_key_selectivity(self):
        store = DruidLike(segment_duration=10.0, n_historicals=4)
        store.insert_many(make_tuples(10_000, seed=1))
        narrow = store.query(0, 1000, 0.0, 50.0)
        wide = store.query(0, 90_000, 0.0, 50.0)
        # No key index: both scan the same rows; only result transfer grows.
        assert abs(wide.latency - narrow.latency) / wide.latency < 0.5

    def test_latency_grows_with_time_range(self):
        store = DruidLike(segment_duration=1.0, n_historicals=2)
        store.insert_many(make_tuples(20_000, seed=2))  # spans 200 s
        short = store.query(0, 100_000, 0.0, 5.0)
        long = store.query(0, 100_000, 0.0, 150.0)
        assert long.latency > short.latency

    def test_time_pruning_skips_segments(self):
        store = DruidLike(segment_duration=10.0)
        store.insert_many(make_tuples(3000))
        res = store.query(0, 100_000, 0.0, 9.0)
        assert res.subquery_count == 1

    def test_insertion_rate_positive(self):
        store = DruidLike()
        assert store.insertion_rate(PipelineTopology(12)) > 0
