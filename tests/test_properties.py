"""Cross-cutting property-based tests on core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import DataTuple
from repro.core.partitioning import KeyPartition
from repro.simulation import (
    CostModel,
    LockSimulator,
    PipelineTopology,
    Segment,
    system_insertion_rate,
)
from repro.storage import ChunkReader, serialize_chunk

# --- LockSimulator invariants -------------------------------------------------

segment_strategy = st.builds(
    Segment,
    lock=st.one_of(st.none(), st.integers(0, 5)),
    exclusive=st.booleans(),
    duration=st.floats(0.001, 1.0),
)
operation_strategy = st.lists(segment_strategy, min_size=1, max_size=3)


class TestLockSimulatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(operation_strategy, min_size=1, max_size=30), st.integers(1, 6))
    def test_makespan_bounds(self, ops, n_threads):
        """work/threads <= makespan <= total work (+epsilon)."""
        result = LockSimulator().run(ops, n_threads)
        total_work = sum(seg.duration for op in ops for seg in op)
        assert result.makespan <= total_work + 1e-9
        assert result.makespan >= total_work / n_threads - 1e-9
        # The longest single operation lower-bounds the makespan too.
        longest = max(sum(seg.duration for seg in op) for op in ops)
        assert result.makespan >= longest - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.lists(operation_strategy, min_size=1, max_size=30), st.integers(1, 6))
    def test_every_operation_completes(self, ops, n_threads):
        result = LockSimulator().run(ops, n_threads)
        assert result.n_ops == len(ops)
        assert result.op_latencies is not None
        assert len(result.op_latencies) == len(ops)
        for op, latency in zip(ops, result.op_latencies):
            # Service time is at least the op's own work.
            assert latency >= sum(seg.duration for seg in op) - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(operation_strategy, min_size=1, max_size=20))
    def test_single_thread_is_serial(self, ops):
        result = LockSimulator().run(ops, 1)
        total_work = sum(seg.duration for op in ops for seg in op)
        assert abs(result.makespan - total_work) < 1e-9
        assert result.total_wait == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(operation_strategy, min_size=2, max_size=20))
    def test_exclusive_everything_never_scales(self, ops):
        """If every segment takes the same exclusive lock, more threads
        cannot reduce the makespan."""
        serialized = [
            [Segment(0, True, seg.duration) for seg in op] for op in ops
        ]
        t1 = LockSimulator().run(serialized, 1).makespan
        t4 = LockSimulator().run(serialized, 4).makespan
        assert t4 >= t1 - 1e-9


# --- pipeline model invariants ----------------------------------------------------


class TestPipelineProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 64), st.integers(1, 64))
    def test_monotone_in_nodes(self, a, b):
        costs = CostModel()
        lo, hi = sorted((a, b))
        r_lo = system_insertion_rate(costs, PipelineTopology(lo), 50, 16 << 20)
        r_hi = system_insertion_rate(costs, PipelineTopology(hi), 50, 16 << 20)
        assert r_hi >= r_lo - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0.01, 10.0), min_size=24, max_size=24),
    )
    def test_balanced_shares_are_optimal(self, shares):
        costs = CostModel()
        topology = PipelineTopology(12)
        balanced = [1.0] * topology.n_indexing
        r_any = system_insertion_rate(costs, topology, 50, 16 << 20, shares=shares)
        r_balanced = system_insertion_rate(
            costs, topology, 50, 16 << 20, shares=balanced
        )
        assert r_balanced >= r_any - 1e-9


# --- partitioning invariants ---------------------------------------------------------


class TestFromSampleProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(1, 2**20 - 2), min_size=0, max_size=300),
        st.integers(1, 16),
    )
    def test_partition_is_valid_and_total(self, sample, n_servers):
        p = KeyPartition.from_sample(0, 1 << 20, n_servers, sample)
        assert p.n_intervals <= n_servers
        # Every key routes to exactly the interval containing it.
        for key in list(sample)[:50] + [0, (1 << 20) - 1]:
            assert key in p.interval(p.server_for(key))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 16))
    def test_balances_duplicated_hotspot(self, seed, n_servers):
        rng = random.Random(seed)
        hot = rng.randrange(1, (1 << 20) - 1)
        sample = [hot] * 50 + [rng.randrange(0, 1 << 20) for _ in range(500)]
        p = KeyPartition.from_sample(0, 1 << 20, n_servers, sample)
        loads = [0] * p.n_intervals
        for key in sample:
            loads[p.server_for(key)] += 1
        # No server holds more than the hot key's mass plus ~2 fair shares.
        assert max(loads) <= 50 + 2 * (len(sample) // n_servers) + 1


# --- chunk format fuzz ------------------------------------------------------------------


class TestChunkFuzz:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_random_corruption_never_silently_wrong(self, seed):
        """Flipping any single byte either leaves results intact (header
        padding / unread region), raises a loud error, or at worst changes
        a sketch (over-pruning is impossible: sketches only over-approximate
        in the safe direction, so we also accept supersets)."""
        rng = random.Random(seed)
        data = [DataTuple(i, float(i), payload=i) for i in range(64)]
        leaves = [
            ([t.key for t in data[i : i + 16]], data[i : i + 16])
            for i in range(0, 64, 16)
        ]
        blob = bytearray(serialize_chunk(leaves))
        clean = sorted(t.payload for t in ChunkReader(bytes(blob)).query(0, 63))
        position = rng.randrange(0, len(blob))
        blob[position] ^= 1 << rng.randrange(8)
        try:
            got = sorted(
                t.payload
                for t in ChunkReader(bytes(blob)).query(
                    0, 63, use_sketch=False
                )
            )
        except Exception:
            return  # loud failure is acceptable
        # Flips in unread regions (sketch bits, padding) leave results
        # intact; any flip that touches decoded data must have tripped the
        # CRC above.  Directory corruption may re-slice blocks, but then the
        # CRC fires too.  So surviving reads must be exactly correct.
        assert got == clean
