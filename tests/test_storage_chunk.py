"""Tests for the chunk serialization format."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import DataTuple
from repro.storage import ChunkReader, serialize_chunk


def leaves_from_tuples(tuples, leaf_size=16):
    """Key-ordered leaf runs, the shape an indexing-server flush produces."""
    data = sorted(tuples, key=lambda t: t.key)
    leaves = []
    for start in range(0, len(data), leaf_size):
        run = data[start : start + leaf_size]
        leaves.append(([t.key for t in run], run))
    return leaves


def make_tuples(n, seed=0, key_hi=1000, time_hi=100.0):
    rng = random.Random(seed)
    return [
        DataTuple(rng.randrange(0, key_hi), rng.uniform(0, time_hi), payload=i)
        for i in range(n)
    ]


class TestRoundTrip:
    def test_all_tuples_recovered(self):
        tuples = make_tuples(500)
        blob = serialize_chunk(leaves_from_tuples(tuples))
        reader = ChunkReader(blob)
        recovered = reader.all_tuples()
        assert sorted(t.payload for t in recovered) == sorted(
            t.payload for t in tuples
        )
        assert reader.meta.n_tuples == 500

    def test_meta_region_covers_data(self):
        tuples = make_tuples(200)
        reader = ChunkReader(serialize_chunk(leaves_from_tuples(tuples)))
        for t in tuples:
            assert t.key in reader.meta.keys
            assert t.ts in reader.meta.times

    def test_empty_chunk(self):
        reader = ChunkReader(serialize_chunk([]))
        assert reader.meta.n_tuples == 0
        assert reader.all_tuples() == []
        assert reader.query(0, 100) == []

    def test_empty_leaves_dropped(self):
        tuples = make_tuples(10)
        leaves = leaves_from_tuples(tuples, leaf_size=4) + [([], [])]
        reader = ChunkReader(serialize_chunk(leaves))
        assert reader.meta.n_leaves == 3

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            ChunkReader(b"NOPE" + b"\x00" * 100)

    def test_payload_objects_roundtrip(self):
        tuples = [
            DataTuple(1, 1.0, {"nested": [1, 2, 3]}),
            DataTuple(2, 2.0, ("tuple", "payload")),
            DataTuple(3, 3.0, None),
        ]
        reader = ChunkReader(serialize_chunk(leaves_from_tuples(tuples, 2)))
        got = {t.key: t.payload for t in reader.all_tuples()}
        assert got == {1: {"nested": [1, 2, 3]}, 2: ("tuple", "payload"), 3: None}


class TestQuery:
    def test_query_matches_brute_force(self):
        tuples = make_tuples(800, seed=1)
        reader = ChunkReader(serialize_chunk(leaves_from_tuples(tuples)))
        got = reader.query(100, 600, 10.0, 60.0)
        expected = [
            t for t in tuples if 100 <= t.key <= 600 and 10.0 <= t.ts <= 60.0
        ]
        assert sorted(t.payload for t in got) == sorted(t.payload for t in expected)

    def test_predicate_applied(self):
        tuples = make_tuples(100, seed=2)
        reader = ChunkReader(serialize_chunk(leaves_from_tuples(tuples)))
        got = reader.query(0, 1000, predicate=lambda t: t.payload < 10)
        assert all(t.payload < 10 for t in got)

    def test_bytes_read_scales_with_selectivity(self):
        tuples = make_tuples(2000, seed=3, key_hi=10_000)
        blob = serialize_chunk(leaves_from_tuples(tuples))
        narrow = ChunkReader(blob)
        narrow.query(0, 500)
        wide = ChunkReader(blob)
        wide.query(0, 9000)
        assert narrow.bytes_read < wide.bytes_read
        assert narrow.bytes_read >= narrow.prefix_bytes

    def test_sketch_prunes_leaf_reads(self):
        # Keys correlate with time, so key-distinct leaves hold distinct
        # time windows.
        tuples = [DataTuple(i, float(i), payload=i) for i in range(1000)]
        blob = serialize_chunk(leaves_from_tuples(tuples, leaf_size=32))
        pruned = ChunkReader(blob)
        got = pruned.query(0, 999, 100.0, 120.0)
        assert sorted(t.payload for t in got) == list(range(100, 121))
        assert pruned.leaves_skipped > 0
        unpruned = ChunkReader(blob)
        unpruned.query(0, 999, 100.0, 120.0, use_sketch=False)
        assert unpruned.bytes_read > pruned.bytes_read

    def test_duplicate_keys_across_leaf_boundary(self):
        tuples = [DataTuple(5, float(i), payload=i) for i in range(40)]
        blob = serialize_chunk(leaves_from_tuples(tuples, leaf_size=8))
        reader = ChunkReader(blob)
        got = reader.query(5, 5)
        assert sorted(t.payload for t in got) == list(range(40))

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 300), st.floats(0, 50, allow_nan=False)),
            min_size=0,
            max_size=200,
        ),
        st.integers(0, 300),
        st.integers(0, 300),
        st.floats(0, 50, allow_nan=False),
        st.floats(0, 50, allow_nan=False),
    )
    def test_property_query_equals_reference(self, rows, k1, k2, ts1, ts2):
        k_lo, k_hi = min(k1, k2), max(k1, k2)
        t_lo, t_hi = min(ts1, ts2), max(ts1, ts2)
        tuples = [DataTuple(k, ts, payload=i) for i, (k, ts) in enumerate(rows)]
        reader = ChunkReader(serialize_chunk(leaves_from_tuples(tuples, 8)))
        got = reader.query(k_lo, k_hi, t_lo, t_hi)
        expected = [
            t for t in tuples if k_lo <= t.key <= k_hi and t_lo <= t.ts <= t_hi
        ]
        assert sorted(t.payload for t in got) == sorted(t.payload for t in expected)


class TestCompression:
    def _tuples(self):
        # Repetitive payloads compress well.
        return [
            DataTuple(i, float(i), payload="x" * 40) for i in range(2000)
        ]

    def test_roundtrip_compressed(self):
        tuples = self._tuples()
        blob = serialize_chunk(leaves_from_tuples(tuples), compress=True)
        reader = ChunkReader(blob)
        assert reader.compressed
        got = reader.all_tuples()
        assert len(got) == 2000
        assert all(t.payload == "x" * 40 for t in got)

    def test_compressed_smaller(self):
        tuples = self._tuples()
        runs = leaves_from_tuples(tuples, leaf_size=128)
        plain = serialize_chunk(runs)
        packed = serialize_chunk(runs, compress=True)
        assert len(packed) < 0.5 * len(plain)

    def test_query_equivalent(self):
        tuples = make_tuples(800, seed=11)
        plain = ChunkReader(serialize_chunk(leaves_from_tuples(tuples)))
        packed = ChunkReader(
            serialize_chunk(leaves_from_tuples(tuples), compress=True)
        )
        a = plain.query(100, 600, 10.0, 60.0)
        b = packed.query(100, 600, 10.0, 60.0)
        assert sorted(t.payload for t in a) == sorted(t.payload for t in b)

    def test_corruption_detected_in_compressed_block(self):
        import pytest as _pytest

        from repro.storage import ChunkCorruption

        tuples = self._tuples()
        blob = bytearray(serialize_chunk(leaves_from_tuples(tuples), compress=True))
        reader = ChunkReader(bytes(blob))
        entry = reader.candidate_leaves(0, 5000)[0]
        blob[entry.block_offset + 2] ^= 0xFF
        with _pytest.raises(ChunkCorruption):
            ChunkReader(bytes(blob)).query(0, 5000)

    def test_system_end_to_end_compressed(self):
        import random as _random

        from repro import Waterwheel, small_config

        ww = Waterwheel(small_config(compress_chunks=True, chunk_bytes=4096))
        rng = _random.Random(12)
        data = [
            DataTuple(rng.randrange(0, 10_000), i * 0.01, payload="p" * 20, size=32)
            for i in range(2000)
        ]
        for t in data:
            ww.insert(t)
        ww.flush_all()
        res = ww.query(0, 10_000, 0.0, 20.0)
        assert len(res) == 2000
