"""Tests for the indexing server: ingest, flush, late buffer, recovery."""

import pytest

from repro.core.config import small_config
from repro.core.indexing_server import IndexingServer, ServerDownError
from repro.core.model import DataTuple, KeyInterval, SubQuery, TimeInterval
from repro.messaging import DurableLog
from repro.metastore import MetadataStore
from repro.simulation import Cluster
from repro.storage import ChunkReader, SimulatedDFS


def build_server(**config_overrides):
    cfg = small_config(**config_overrides)
    cluster = Cluster(cfg.n_nodes, seed=cfg.seed)
    dfs = SimulatedDFS(cluster, cfg.costs, cfg.replication)
    metastore = MetadataStore()
    server = IndexingServer(0, 0, cfg, dfs, metastore, KeyInterval(0, 10_000))
    return server, dfs, metastore, cfg


def sq(key_lo, key_hi, t_lo, t_hi):
    return SubQuery(
        query_id=1,
        keys=KeyInterval.closed(key_lo, key_hi),
        times=TimeInterval(t_lo, t_hi),
        predicate=None,
        chunk_id=None,
        indexing_server=0,
    )


class TestIngestAndFlush:
    def test_flush_triggered_at_chunk_size(self):
        server, dfs, metastore, cfg = build_server()
        per_chunk = cfg.chunk_bytes // 32
        chunk_id = None
        for i in range(per_chunk + 5):
            got = server.ingest(DataTuple(i % 10_000, float(i), payload=i, size=32), offset=i)
            if got:
                chunk_id = got
        assert chunk_id is not None
        assert dfs.exists(chunk_id)
        assert metastore.exists(f"/chunks/{chunk_id}")

    def test_flushed_chunk_contains_the_data(self):
        server, dfs, metastore, cfg = build_server()
        n = cfg.chunk_bytes // 32
        for i in range(n):
            server.ingest(DataTuple(i % 10_000, float(i), payload=i, size=32), offset=i)
        server.flush()
        chunk_ids = dfs.chunk_ids()
        recovered = []
        for cid in chunk_ids:
            recovered.extend(ChunkReader(dfs.get_bytes(cid)).all_tuples())
        assert sorted(t.payload for t in recovered) == list(range(n))

    def test_chunk_region_matches_data_extent(self):
        server, dfs, metastore, cfg = build_server()
        for i in range(50):
            server.ingest(DataTuple(100 + i, 10.0 + i, payload=i, size=32), offset=i)
        chunk_id = server.flush()
        info = metastore.get(f"/chunks/{chunk_id}")
        assert info["key_lo"] == 100
        assert info["key_hi"] == 150  # half-open
        assert info["t_lo"] == 10.0
        assert info["t_hi"] == 59.0

    def test_flush_empty_is_noop(self):
        server, dfs, _metastore, _cfg = build_server()
        assert server.flush() is None
        assert len(dfs) == 0

    def test_template_recycled_across_flushes(self):
        server, _dfs, _metastore, cfg = build_server()
        for i in range(200):
            server.ingest(DataTuple(i * 50 % 10_000, float(i), size=32), offset=i)
        template_before = server._tree.separators
        server.flush()
        assert server._tree.separators == template_before
        assert server.in_memory_tuples == 0

    def test_offset_checkpointed_on_flush(self):
        server, _dfs, metastore, cfg = build_server()
        for i in range(100):
            server.ingest(DataTuple(i, float(i), size=32), offset=i)
        server.flush()
        assert metastore.get("/indexing/0/offset") == 100

    def test_chunk_ids_unique_across_flushes(self):
        server, dfs, _metastore, cfg = build_server()
        ids = set()
        for round_ in range(3):
            for i in range(50):
                server.ingest(DataTuple(i, float(round_ * 100 + i), size=32), offset=i)
            ids.add(server.flush())
        assert len(ids) == 3


class TestFreshQueries:
    def test_query_fresh_matches_reference(self):
        server, _dfs, _metastore, _cfg = build_server()
        # Keep the batch below the flush threshold (256 tuples at 32 bytes)
        # so everything stays in memory.
        data = [DataTuple(i * 7 % 10_000, float(i), payload=i, size=32) for i in range(200)]
        for i, t in enumerate(data):
            server.ingest(t, offset=i)
        got, examined = server.query_fresh(sq(1000, 5000, 50.0, 150.0))
        expected = [
            t for t in data if 1000 <= t.key <= 5000 and 50.0 <= t.ts <= 150.0
        ]
        assert sorted(t.payload for t in got) == sorted(t.payload for t in expected)
        assert examined >= len(expected)

    def test_fresh_region_none_when_empty(self):
        server, _dfs, _metastore, _cfg = build_server()
        assert server.fresh_region() is None

    def test_fresh_region_extends_left_by_delta(self):
        server, _dfs, _metastore, cfg = build_server()
        server.ingest(DataTuple(500, 100.0, size=32), offset=0)
        region = server.fresh_region()
        assert region.times.lo == 100.0 - cfg.late_delta
        assert 500 in region.keys

    def test_immediate_visibility(self):
        """A tuple is queryable the moment ingest() returns (no batching)."""
        server, _dfs, _metastore, _cfg = build_server()
        server.ingest(DataTuple(42, 1.0, payload="now", size=32), offset=0)
        got, _examined = server.query_fresh(sq(42, 42, 0.0, 2.0))
        assert [t.payload for t in got] == ["now"]


class TestLateArrivals:
    def test_severely_late_tuples_go_to_side_buffer(self):
        server, _dfs, _metastore, cfg = build_server()
        server.ingest(DataTuple(1, 1000.0, size=32), offset=0)
        # Way older than max_ts - 4 * late_delta.
        server.ingest(DataTuple(2, 10.0, payload="late", size=32), offset=1)
        assert server._late_tree is not None
        assert len(server._late_tree) == 1

    def test_late_tuples_still_visible_to_queries(self):
        server, _dfs, _metastore, _cfg = build_server()
        server.ingest(DataTuple(1, 1000.0, size=32), offset=0)
        server.ingest(DataTuple(2, 10.0, payload="late", size=32), offset=1)
        got, _examined = server.query_fresh(sq(0, 100, 0.0, 20.0))
        assert [t.payload for t in got] == ["late"]
        # The fresh region's left edge accounts for the late tuple.
        assert server.fresh_region().times.lo <= 10.0

    def test_flush_all_writes_late_chunk_separately(self):
        server, dfs, metastore, _cfg = build_server()
        server.ingest(DataTuple(1, 1000.0, size=32), offset=0)
        server.ingest(DataTuple(2, 10.0, size=32), offset=1)
        chunk_ids = server.flush_all()
        assert len(chunk_ids) == 2
        infos = [metastore.get(f"/chunks/{cid}") for cid in chunk_ids]
        lates = [info["late"] for info in infos]
        assert sorted(lates) == [False, True]
        # The ordinary chunk keeps a tight temporal boundary.
        main = next(info for info in infos if not info["late"])
        assert main["t_lo"] == 1000.0

    def test_slightly_late_tuple_stays_in_main_tree(self):
        server, _dfs, _metastore, cfg = build_server()
        server.ingest(DataTuple(1, 100.0, size=32), offset=0)
        server.ingest(DataTuple(2, 100.0 - cfg.late_delta, size=32), offset=1)
        assert server._late_tree is None
        assert server.in_memory_tuples == 2


class TestReassign:
    def test_actual_interval_can_exceed_assigned(self):
        server, _dfs, _metastore, _cfg = build_server()
        server.ingest(DataTuple(9000, 1.0, size=32), offset=0)
        server.reassign(KeyInterval(0, 100))
        server.ingest(DataTuple(50, 2.0, size=32), offset=1)
        region = server.fresh_region()
        assert 50 in region.keys and 9000 in region.keys


class TestFailureRecovery:
    def test_failed_server_rejects_work(self):
        server, _dfs, _metastore, _cfg = build_server()
        server.fail()
        with pytest.raises(ServerDownError):
            server.ingest(DataTuple(1, 1.0, size=32), offset=0)
        with pytest.raises(ServerDownError):
            server.query_fresh(sq(0, 10, 0, 10))
        assert server.fresh_region() is None

    def test_recovery_replays_unflushed_tuples(self):
        server, _dfs, metastore, cfg = build_server()
        log = DurableLog()
        log.create_topic("tuples", 1)
        data = [DataTuple(i, float(i), payload=i, size=32) for i in range(100)]
        for i, t in enumerate(data):
            offset = log.append("tuples", 0, t)
            server.ingest(t, offset)
        server.fail()
        replayed = server.recover(log, "tuples")
        assert replayed == 100
        got, _examined = server.query_fresh(sq(0, 100, 0.0, 100.0))
        assert sorted(t.payload for t in got) == list(range(100))

    def test_recovery_skips_flushed_prefix(self):
        server, dfs, metastore, cfg = build_server()
        log = DurableLog()
        log.create_topic("tuples", 1)
        n = cfg.chunk_bytes // 32
        for i in range(n + 10):
            t = DataTuple(i % 10_000, float(i), payload=i, size=32)
            offset = log.append("tuples", 0, t)
            server.ingest(t, offset)
        flushed_before = server.flush_count
        assert flushed_before >= 1
        server.fail()
        replayed = server.recover(log, "tuples")
        # Only the unflushed suffix is replayed.
        assert replayed < n + 10
        # No data is lost: chunks + fresh data together hold everything.
        fresh, _ = server.query_fresh(sq(0, 10_000, 0.0, float(n + 10)))
        chunk_tuples = []
        for cid in dfs.chunk_ids():
            chunk_tuples.extend(ChunkReader(dfs.get_bytes(cid)).all_tuples())
        assert sorted(
            [t.payload for t in fresh] + [t.payload for t in chunk_tuples]
        ) == list(range(n + 10))
