"""Tests for the versioned metadata store."""

from repro.metastore import MetadataStore


class TestBasicKV:
    def test_put_get(self):
        store = MetadataStore()
        assert store.put("/a", 1) == 1
        assert store.get("/a") == 1

    def test_versions_bump(self):
        store = MetadataStore()
        store.put("/a", 1)
        assert store.put("/a", 2) == 2
        assert store.get_entry("/a").version == 2

    def test_get_default(self):
        store = MetadataStore()
        assert store.get("/missing", default="d") == "d"

    def test_delete(self):
        store = MetadataStore()
        store.put("/a", 1)
        assert store.delete("/a")
        assert not store.exists("/a")
        assert not store.delete("/a")

    def test_len(self):
        store = MetadataStore()
        store.put("/a", 1)
        store.put("/b", 2)
        assert len(store) == 2


class TestCompareAndPut:
    def test_create_when_absent(self):
        store = MetadataStore()
        assert store.compare_and_put("/lock", 0, "owner-1")
        assert not store.compare_and_put("/lock", 0, "owner-2")
        assert store.get("/lock") == "owner-1"

    def test_conditional_update(self):
        store = MetadataStore()
        store.put("/a", "v1")
        assert store.compare_and_put("/a", 1, "v2")
        assert not store.compare_and_put("/a", 1, "v3")  # stale version
        assert store.get("/a") == "v2"


class TestPrefix:
    def test_list_and_items(self):
        store = MetadataStore()
        store.put("/regions/c1", "r1")
        store.put("/regions/c2", "r2")
        store.put("/offsets/0", 10)
        assert store.list_prefix("/regions/") == ["/regions/c1", "/regions/c2"]
        assert dict(store.items_prefix("/regions/")) == {
            "/regions/c1": "r1",
            "/regions/c2": "r2",
        }

    def test_delete_prefix(self):
        store = MetadataStore()
        store.put("/regions/c1", 1)
        store.put("/regions/c2", 2)
        store.put("/other", 3)
        assert store.delete_prefix("/regions/") == 2
        assert len(store) == 1


class TestWatches:
    def test_watch_fires_on_put_and_delete(self):
        store = MetadataStore()
        events = []
        store.watch("/regions/", lambda k, v: events.append((k, v)))
        store.put("/regions/c1", "r1")
        store.put("/elsewhere", "x")
        store.delete("/regions/c1")
        assert events == [("/regions/c1", "r1"), ("/regions/c1", None)]

    def test_unsubscribe(self):
        store = MetadataStore()
        events = []
        unsubscribe = store.watch("/", lambda k, v: events.append(k))
        store.put("/a", 1)
        unsubscribe()
        store.put("/b", 2)
        assert events == ["/a"]

    def test_multiple_watchers(self):
        store = MetadataStore()
        hits = {"a": 0, "b": 0}
        store.watch("/x", lambda k, v: hits.__setitem__("a", hits["a"] + 1))
        store.watch("/x", lambda k, v: hits.__setitem__("b", hits["b"] + 1))
        store.put("/x/1", 1)
        assert hits == {"a": 1, "b": 1}
