"""Tests for the simulated distributed file system."""

import pytest

from repro.simulation import Cluster, CostModel
from repro.storage import ChunkNotFound, ChunkUnavailable, SimulatedDFS


@pytest.fixture
def dfs():
    return SimulatedDFS(Cluster(6, seed=1), CostModel(), replication=3)


class TestPutGet:
    def test_roundtrip(self, dfs):
        location, cost = dfs.put("c1", b"hello chunk")
        assert cost > 0
        assert location.size == 11
        assert len(location.replicas) == 3
        assert dfs.get_bytes("c1") == b"hello chunk"

    def test_immutable(self, dfs):
        dfs.put("c1", b"x")
        with pytest.raises(ValueError):
            dfs.put("c1", b"y")

    def test_missing_chunk(self, dfs):
        with pytest.raises(ChunkNotFound):
            dfs.location("nope")

    def test_delete(self, dfs):
        dfs.put("c1", b"x")
        dfs.delete("c1")
        assert not dfs.exists("c1")

    def test_replicas_on_distinct_nodes(self, dfs):
        location, _cost = dfs.put("c1", b"x")
        assert len(set(location.replicas)) == 3

    def test_accounting(self, dfs):
        dfs.put("c1", b"abcd")
        dfs.read_cost("c1", 2, reader_node=0)
        assert dfs.total_bytes_written == 4
        assert dfs.total_bytes_read == 2


class TestReadCosts:
    def test_local_read_cheaper(self):
        # Two fresh DFS instances share the same access-counter sequence, so
        # the per-access latency jitter cancels and only the network hop
        # differs between the local and remote reader.
        def total_cost(reader_is_local):
            dfs = SimulatedDFS(Cluster(6, seed=1), CostModel(), replication=3)
            location, _cost = dfs.put("c1", b"x" * (1 << 20))
            if reader_is_local:
                node = location.replicas[0]
            else:
                node = next(n for n in range(6) if n not in location.replicas)
            return sum(dfs.read_cost("c1", 1 << 20, node) for _ in range(5))

        assert total_cost(True) < total_cost(False)

    def test_cost_has_latency_floor(self, dfs):
        dfs.put("c1", b"x")
        cost = dfs.read_cost("c1", 1, reader_node=0)
        assert cost >= CostModel().dfs_access_latency_min


class TestFailures:
    def test_read_survives_partial_failure(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        dfs._cluster.kill(location.replicas[0])
        assert dfs.get_bytes("c1") == b"data"
        assert location.replicas[0] not in dfs.live_replicas("c1")

    def test_all_replicas_dead(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        for node in location.replicas:
            dfs._cluster.kill(node)
        with pytest.raises(ChunkUnavailable):
            dfs.get_bytes("c1")

    def test_recovery_after_revive(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        for node in location.replicas:
            dfs._cluster.kill(node)
        dfs._cluster.revive(location.replicas[0])
        assert dfs.get_bytes("c1") == b"data"

    def test_local_replica_check_respects_liveness(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        node = location.replicas[0]
        assert dfs.has_local_replica("c1", node)
        dfs._cluster.kill(node)
        assert not dfs.has_local_replica("c1", node)


class TestValidation:
    def test_replication_floor(self):
        with pytest.raises(ValueError):
            SimulatedDFS(Cluster(3), replication=0)

    def test_small_cluster_caps_replicas(self):
        dfs = SimulatedDFS(Cluster(2), replication=3)
        location, _cost = dfs.put("c1", b"x")
        assert len(location.replicas) == 2


class TestSpillToDisk:
    def test_roundtrip_via_files(self, tmp_path):
        dfs = SimulatedDFS(
            Cluster(4, seed=1), CostModel(), replication=2,
            spill_dir=str(tmp_path / "blocks"),
        )
        dfs.put("c1", b"spilled bytes")
        dfs.put("dir/with/slashes", b"other")
        assert dfs.get_bytes("c1") == b"spilled bytes"
        assert dfs.get_bytes("dir/with/slashes") == b"other"
        # Data actually lives on disk, not in the in-memory dict.
        assert dfs._blocks == {}
        assert len(list((tmp_path / "blocks").iterdir())) == 2

    def test_delete_removes_file(self, tmp_path):
        dfs = SimulatedDFS(
            Cluster(3, seed=1), spill_dir=str(tmp_path / "blocks")
        )
        dfs.put("c1", b"x")
        dfs.delete("c1")
        assert not dfs.exists("c1")
        assert list((tmp_path / "blocks").iterdir()) == []

    def test_failure_semantics_unchanged(self, tmp_path):
        dfs = SimulatedDFS(
            Cluster(3, seed=1), replication=3, spill_dir=str(tmp_path / "b")
        )
        location, _cost = dfs.put("c1", b"data")
        for node in location.replicas:
            dfs._cluster.kill(node)
        with pytest.raises(ChunkUnavailable):
            dfs.get_bytes("c1")


class TestChecksumRepair:
    """Per-replica CRCs: corrupt copies are skipped, repaired, never served."""

    def test_corrupt_replica_is_skipped_and_repaired(self, dfs):
        dfs.put("c1", b"precious bytes")
        node = dfs.corrupt_replica("c1")
        assert dfs.corrupted_replicas("c1") == [node]
        # The read falls back to a healthy replica and repairs in place.
        assert dfs.get_bytes("c1") == b"precious bytes"
        assert dfs.corrupted_replicas("c1") == []

    def test_corrupt_specific_replica(self, dfs):
        location, _cost = dfs.put("c1", b"payload")
        victim = location.replicas[2]
        assert dfs.corrupt_replica("c1", victim) == victim
        assert dfs.corrupted_replicas("c1") == [victim]

    def test_corrupt_on_non_replica_node_rejected(self, dfs):
        location, _cost = dfs.put("c1", b"payload")
        outsider = next(
            n.node_id for n in dfs._cluster.nodes
            if n.node_id not in location.replicas
        )
        with pytest.raises(ValueError):
            dfs.corrupt_replica("c1", outsider)

    def test_all_live_replicas_corrupt_raises(self, dfs):
        from repro.storage import ChunkCorrupt

        location, _cost = dfs.put("c1", b"doomed")
        for node in location.replicas:
            dfs.corrupt_replica("c1", node)
        with pytest.raises(ChunkCorrupt):
            dfs.get_bytes("c1")
        # Corruption is a flavour of unavailability: existing partial-result
        # degradation paths handle it without new except clauses.
        assert issubclass(ChunkCorrupt, ChunkUnavailable)

    def test_corruption_recoverable_when_one_copy_survives(self, dfs):
        location, _cost = dfs.put("c1", b"doomed?")
        for node in location.replicas[:-1]:
            dfs.corrupt_replica("c1", node)
        assert dfs.get_bytes("c1") == b"doomed?"
        assert dfs.corrupted_replicas("c1") == []

    def test_scrub_repairs_without_reads(self, dfs):
        dfs.put("c1", b"one")
        dfs.put("c2", b"two")
        dfs.corrupt_replica("c1")
        dfs.corrupt_replica("c2")
        assert dfs.scrub() == 2
        assert dfs.corrupted_replicas("c1") == []
        assert dfs.corrupted_replicas("c2") == []
        assert dfs.scrub() == 0  # idempotent

    def test_delete_drops_corruption_state(self, dfs):
        dfs.put("c1", b"x")
        dfs.corrupt_replica("c1")
        dfs.delete("c1")
        assert dfs.scrub() == 0


class TestReReplication:
    """Node failures shrink replica sets; re_replicate restores the factor."""

    def test_under_replicated_after_node_failure(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        assert dfs.under_replicated() == []
        dfs._cluster.kill(location.replicas[0])
        assert dfs.under_replicated() == ["c1"]

    def test_re_replicate_restores_factor(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        before = dfs.total_bytes_written
        dfs._cluster.kill(location.replicas[0])
        assert dfs.re_replicate() == 1
        assert len(dfs.live_replicas("c1")) == 3
        assert dfs.under_replicated() == []
        # The copy costs a real write.
        assert dfs.total_bytes_written == before + location.size

    def test_re_replicate_caps_at_alive_nodes(self):
        dfs = SimulatedDFS(Cluster(3, seed=1), replication=3)
        location, _cost = dfs.put("c1", b"data")
        dfs._cluster.kill(location.replicas[0])
        # Only two nodes remain and both already hold replicas: nothing to do.
        assert dfs.re_replicate() == 0
        assert dfs.under_replicated() == []

    def test_no_live_replica_cannot_be_repaired(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        for node in location.replicas:
            dfs._cluster.kill(node)
        assert dfs.re_replicate() == 0
        with pytest.raises(ChunkUnavailable):
            dfs.get_bytes("c1")

    def test_replicas_return_with_revived_node(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        dead = location.replicas[0]
        dfs._cluster.kill(dead)
        dfs.re_replicate()
        dfs._cluster.revive(dead)
        # HDFS-style block report: the revived node's copy is live again.
        assert dead in dfs.live_replicas("c1")
        assert len(dfs.live_replicas("c1")) == 4
