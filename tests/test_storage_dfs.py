"""Tests for the simulated distributed file system."""

import pytest

from repro.simulation import Cluster, CostModel
from repro.storage import ChunkNotFound, ChunkUnavailable, SimulatedDFS


@pytest.fixture
def dfs():
    return SimulatedDFS(Cluster(6, seed=1), CostModel(), replication=3)


class TestPutGet:
    def test_roundtrip(self, dfs):
        location, cost = dfs.put("c1", b"hello chunk")
        assert cost > 0
        assert location.size == 11
        assert len(location.replicas) == 3
        assert dfs.get_bytes("c1") == b"hello chunk"

    def test_immutable(self, dfs):
        dfs.put("c1", b"x")
        with pytest.raises(ValueError):
            dfs.put("c1", b"y")

    def test_missing_chunk(self, dfs):
        with pytest.raises(ChunkNotFound):
            dfs.location("nope")

    def test_delete(self, dfs):
        dfs.put("c1", b"x")
        dfs.delete("c1")
        assert not dfs.exists("c1")

    def test_replicas_on_distinct_nodes(self, dfs):
        location, _cost = dfs.put("c1", b"x")
        assert len(set(location.replicas)) == 3

    def test_accounting(self, dfs):
        dfs.put("c1", b"abcd")
        dfs.read_cost("c1", 2, reader_node=0)
        assert dfs.total_bytes_written == 4
        assert dfs.total_bytes_read == 2


class TestReadCosts:
    def test_local_read_cheaper(self):
        # Two fresh DFS instances share the same access-counter sequence, so
        # the per-access latency jitter cancels and only the network hop
        # differs between the local and remote reader.
        def total_cost(reader_is_local):
            dfs = SimulatedDFS(Cluster(6, seed=1), CostModel(), replication=3)
            location, _cost = dfs.put("c1", b"x" * (1 << 20))
            if reader_is_local:
                node = location.replicas[0]
            else:
                node = next(n for n in range(6) if n not in location.replicas)
            return sum(dfs.read_cost("c1", 1 << 20, node) for _ in range(5))

        assert total_cost(True) < total_cost(False)

    def test_cost_has_latency_floor(self, dfs):
        dfs.put("c1", b"x")
        cost = dfs.read_cost("c1", 1, reader_node=0)
        assert cost >= CostModel().dfs_access_latency_min


class TestFailures:
    def test_read_survives_partial_failure(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        dfs._cluster.kill(location.replicas[0])
        assert dfs.get_bytes("c1") == b"data"
        assert location.replicas[0] not in dfs.live_replicas("c1")

    def test_all_replicas_dead(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        for node in location.replicas:
            dfs._cluster.kill(node)
        with pytest.raises(ChunkUnavailable):
            dfs.get_bytes("c1")

    def test_recovery_after_revive(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        for node in location.replicas:
            dfs._cluster.kill(node)
        dfs._cluster.revive(location.replicas[0])
        assert dfs.get_bytes("c1") == b"data"

    def test_local_replica_check_respects_liveness(self, dfs):
        location, _cost = dfs.put("c1", b"data")
        node = location.replicas[0]
        assert dfs.has_local_replica("c1", node)
        dfs._cluster.kill(node)
        assert not dfs.has_local_replica("c1", node)


class TestValidation:
    def test_replication_floor(self):
        with pytest.raises(ValueError):
            SimulatedDFS(Cluster(3), replication=0)

    def test_small_cluster_caps_replicas(self):
        dfs = SimulatedDFS(Cluster(2), replication=3)
        location, _cost = dfs.put("c1", b"x")
        assert len(location.replicas) == 2


class TestSpillToDisk:
    def test_roundtrip_via_files(self, tmp_path):
        dfs = SimulatedDFS(
            Cluster(4, seed=1), CostModel(), replication=2,
            spill_dir=str(tmp_path / "blocks"),
        )
        dfs.put("c1", b"spilled bytes")
        dfs.put("dir/with/slashes", b"other")
        assert dfs.get_bytes("c1") == b"spilled bytes"
        assert dfs.get_bytes("dir/with/slashes") == b"other"
        # Data actually lives on disk, not in the in-memory dict.
        assert dfs._blocks == {}
        assert len(list((tmp_path / "blocks").iterdir())) == 2

    def test_delete_removes_file(self, tmp_path):
        dfs = SimulatedDFS(
            Cluster(3, seed=1), spill_dir=str(tmp_path / "blocks")
        )
        dfs.put("c1", b"x")
        dfs.delete("c1")
        assert not dfs.exists("c1")
        assert list((tmp_path / "blocks").iterdir()) == []

    def test_failure_semantics_unchanged(self, tmp_path):
        dfs = SimulatedDFS(
            Cluster(3, seed=1), replication=3, spill_dir=str(tmp_path / "b")
        )
        location, _cost = dfs.put("c1", b"data")
        for node in location.replicas:
            dfs._cluster.kill(node)
        with pytest.raises(ChunkUnavailable):
            dfs.get_bytes("c1")
