"""Tests for the secondary bitmap/bloom indexes (paper future work)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Waterwheel, small_config
from repro.core.model import DataTuple
from repro.secondary import AttributeSpec, Bitmap, ChunkSecondaryIndex, sidecar_id


class TestBitmap:
    def test_set_get(self):
        bm = Bitmap()
        bm.set(3)
        bm.set(70)
        assert bm.get(3) and 70 in bm
        assert not bm.get(4)

    def test_from_positions_and_iter(self):
        bm = Bitmap.from_positions([5, 1, 9])
        assert list(bm.positions()) == [1, 5, 9]
        assert len(bm) == 3

    def test_algebra(self):
        a = Bitmap.from_positions([1, 2, 3])
        b = Bitmap.from_positions([2, 3, 4])
        assert list((a & b).positions()) == [2, 3]
        assert list((a | b).positions()) == [1, 2, 3, 4]
        assert list((a - b).positions()) == [1]

    def test_empty(self):
        assert Bitmap().is_empty()
        assert not Bitmap.from_positions([0]).is_empty()
        assert bool(Bitmap.from_positions([0]))

    def test_serialization_roundtrip(self):
        bm = Bitmap.from_positions([0, 63, 64, 200])
        clone = Bitmap.from_bytes(bm.to_bytes())
        assert clone == bm

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Bitmap.from_positions([-1])
        with pytest.raises(ValueError):
            Bitmap(-5)

    @given(st.lists(st.integers(0, 500), max_size=60), st.lists(st.integers(0, 500), max_size=60))
    def test_property_algebra_matches_sets(self, xs, ys):
        a, b = Bitmap.from_positions(xs), Bitmap.from_positions(ys)
        sa, sb = set(xs), set(ys)
        assert set((a & b).positions()) == sa & sb
        assert set((a | b).positions()) == sa | sb
        assert set((a - b).positions()) == sa - sb


def _leaves(rows, leaf_size=8):
    data = sorted(rows, key=lambda t: t.key)
    out = []
    for start in range(0, len(data), leaf_size):
        run = data[start : start + leaf_size]
        out.append(([t.key for t in run], run))
    return out


def _specs(max_exact=1024):
    return (
        AttributeSpec("color", lambda p: p.get("color"), max_exact_values=max_exact),
        AttributeSpec("user", lambda p: p.get("user"), max_exact_values=max_exact),
    )


def make_rows(n, n_colors=4, n_users=1000, seed=0):
    rng = random.Random(seed)
    return [
        DataTuple(
            rng.randrange(0, 10_000),
            float(i),
            {"color": f"c{rng.randrange(n_colors)}", "user": rng.randrange(n_users)},
        )
        for i in range(n)
    ]


class TestChunkSecondaryIndex:
    def test_exact_bitmaps_no_false_negatives(self):
        rows = make_rows(200)
        leaves = _leaves(rows)
        index = ChunkSecondaryIndex.build(_specs(), leaves)
        for target in ("c0", "c1", "c2", "c3"):
            allowed = index.candidate_leaves({"color": target})
            for leaf_idx, (_keys, tuples) in enumerate(leaves):
                if any(t.payload["color"] == target for t in tuples):
                    assert leaf_idx in allowed

    def test_exact_bitmaps_prune(self):
        # One rare color confined to a single leaf.
        rows = [DataTuple(i, float(i), {"color": "common", "user": 0}) for i in range(100)]
        rows[50] = DataTuple(50, 50.0, {"color": "rare", "user": 0})
        leaves = _leaves(rows)
        index = ChunkSecondaryIndex.build(_specs(), leaves)
        allowed = index.candidate_leaves({"color": "rare"})
        assert len(allowed) == 1

    def test_missing_value_empty(self):
        index = ChunkSecondaryIndex.build(_specs(), _leaves(make_rows(50)))
        assert index.candidate_leaves({"color": "nope"}).is_empty()

    def test_unindexed_attribute_returns_none(self):
        index = ChunkSecondaryIndex.build(_specs(), _leaves(make_rows(50)))
        assert index.candidate_leaves({"unknown": 1}) is None

    def test_multiple_attrs_intersect(self):
        rows = make_rows(300, n_colors=3, n_users=5, seed=2)
        leaves = _leaves(rows)
        index = ChunkSecondaryIndex.build(_specs(), leaves)
        allowed = index.candidate_leaves({"color": "c1", "user": 3})
        both = index.candidate_leaves({"color": "c1"}) & index.candidate_leaves(
            {"user": 3}
        )
        assert allowed == both

    def test_degrades_to_blooms_at_high_cardinality(self):
        rows = make_rows(400, n_users=10_000, seed=3)
        leaves = _leaves(rows)
        index = ChunkSecondaryIndex.build(_specs(max_exact=16), leaves)
        attr = index._indexes["user"]
        assert attr.exact is None and attr.blooms is not None
        # Still no false negatives after degradation.
        for leaf_idx, (_keys, tuples) in enumerate(leaves):
            for t in tuples[:2]:
                allowed = index.candidate_leaves({"user": t.payload["user"]})
                assert leaf_idx in allowed

    def test_serialization_roundtrip_exact(self):
        rows = make_rows(150, seed=4)
        leaves = _leaves(rows)
        index = ChunkSecondaryIndex.build(_specs(), leaves)
        clone = ChunkSecondaryIndex.from_bytes(index.to_bytes(), _specs())
        for color in ("c0", "c3"):
            assert clone.candidate_leaves({"color": color}) == index.candidate_leaves(
                {"color": color}
            )

    def test_serialization_roundtrip_bloom(self):
        rows = make_rows(150, n_users=10_000, seed=5)
        index = ChunkSecondaryIndex.build(_specs(max_exact=8), _leaves(rows))
        clone = ChunkSecondaryIndex.from_bytes(index.to_bytes(), _specs(max_exact=8))
        user = rows[0].payload["user"]
        assert clone.candidate_leaves({"user": user}) == index.candidate_leaves(
            {"user": user}
        )

    def test_corrupted_sidecar_rejected(self):
        index = ChunkSecondaryIndex.build(_specs(), _leaves(make_rows(50)))
        blob = bytearray(index.to_bytes())
        blob[-1] ^= 0xFF
        with pytest.raises(ValueError):
            ChunkSecondaryIndex.from_bytes(bytes(blob))

    def test_sidecar_id(self):
        assert sidecar_id("chunk-1-2") == "chunk-1-2.sidx"


def _system(specs=None):
    cfg = small_config(
        secondary_specs=specs if specs is not None else _specs(),
        chunk_bytes=4096,
    )
    return Waterwheel(cfg)


def stream(n, seed=1):
    rng = random.Random(seed)
    return [
        DataTuple(
            rng.randrange(0, 10_000),
            i * 0.01,
            {"color": f"c{rng.randrange(8)}", "user": rng.randrange(50)},
            size=32,
        )
        for i in range(n)
    ]


class TestSystemIntegration:
    def test_attr_query_matches_reference(self):
        ww = _system()
        data = stream(3000)
        ww.insert_many(data)
        res = ww.query(0, 10_000, 0.0, 30.0, attr_equals={"color": "c3"})
        expected = [
            t for t in data if t.ts <= 30.0 and t.payload["color"] == "c3"
        ]
        assert sorted(t.ts for t in res.tuples) == sorted(t.ts for t in expected)

    def test_attr_query_on_fresh_data(self):
        ww = _system()
        ww.insert_record(5, 1.0, {"color": "c1", "user": 2}, size=32)
        ww.insert_record(6, 1.1, {"color": "c2", "user": 2}, size=32)
        res = ww.query(0, 100, 0.0, 2.0, attr_equals={"color": "c1"})
        assert len(res) == 1
        assert res.tuples[0].payload["color"] == "c1"

    def test_sidecars_written_at_flush(self):
        ww = _system()
        ww.insert_many(stream(2000))
        ww.flush_all()
        chunk_ids = [c for c in ww.dfs.chunk_ids() if not c.endswith(".sidx")]
        assert chunk_ids
        for cid in chunk_ids:
            assert ww.dfs.exists(sidecar_id(cid))

    def test_index_prunes_leaves_for_rare_value(self):
        ww = _system()
        data = stream(4000, seed=7)
        # One rare color at a single point in the stream.
        data[2000] = DataTuple(
            500, 20.0, {"color": "needle", "user": 1}, size=32
        )
        ww.insert_many(data)
        ww.flush_all()
        res = ww.query(0, 10_000, 0.0, 40.0, attr_equals={"color": "needle"})
        assert len(res) == 1
        no_index = ww.query(0, 10_000, 0.0, 40.0)
        assert res.leaves_read < no_index.leaves_read

    def test_multiple_attr_filters(self):
        ww = _system()
        data = stream(3000, seed=8)
        ww.insert_many(data)
        res = ww.query(
            0, 10_000, 0.0, 30.0, attr_equals={"color": "c1", "user": 7}
        )
        expected = [
            t
            for t in data
            if t.payload["color"] == "c1" and t.payload["user"] == 7
        ]
        assert len(res) == len(expected)

    def test_unknown_attribute_raises(self):
        ww = _system()
        ww.insert_many(stream(500, seed=9))
        ww.flush_all()
        with pytest.raises(ValueError):
            ww.query(0, 10_000, 0.0, 10.0, attr_equals={"nope": 1})

    def test_attr_query_without_configured_index_post_filters(self):
        # System without secondary specs: attr filter on fresh data raises
        # (unknown attribute), because no extractor exists.
        ww = Waterwheel(small_config())
        ww.insert_record(1, 1.0, {"color": "c1"})
        with pytest.raises(ValueError):
            ww.query(0, 100, 0.0, 2.0, attr_equals={"color": "c1"})

    def test_attr_combined_with_predicate(self):
        ww = _system()
        data = stream(2000, seed=10)
        ww.insert_many(data)
        res = ww.query(
            0,
            10_000,
            0.0,
            20.0,
            predicate=lambda t: t.key < 5000,
            attr_equals={"color": "c0"},
        )
        assert all(
            t.key < 5000 and t.payload["color"] == "c0" for t in res.tuples
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 7), st.integers(0, 2**30))
    def test_property_attr_queries_correct(self, color_idx, seed):
        ww = _system()
        data = stream(800, seed=seed % 1000)
        ww.insert_many(data)
        if seed % 2:
            ww.flush_all()
        res = ww.query(
            0, 10_000, 0.0, 8.0, attr_equals={"color": f"c{color_idx}"}
        )
        expected = [
            t
            for t in data
            if t.ts <= 8.0 and t.payload["color"] == f"c{color_idx}"
        ]
        assert sorted(t.ts for t in res.tuples) == sorted(t.ts for t in expected)


class TestZoneMaps:
    def _zone_specs(self):
        return (
            AttributeSpec("temp", lambda p: p.get("temp"), numeric=True),
        )

    def _rows(self, n=400, seed=21):
        rng = random.Random(seed)
        # Temperature drifts with time, so key-ordered leaves hold varied
        # temperature zones.
        return [
            DataTuple(
                rng.randrange(0, 10_000),
                float(i),
                {"temp": 20.0 + (i / n) * 60.0 + rng.uniform(-1, 1)},
            )
            for i in range(n)
        ]

    def test_zone_map_never_misses(self):
        rows = self._rows()
        # Leaf runs ordered by TIME here (as an indexing server flush over a
        # temperature-drifting stream would produce per chunk epoch).
        leaves = [
            ([t.key for t in sorted(rows[i : i + 16], key=lambda x: x.key)],
             sorted(rows[i : i + 16], key=lambda x: x.key))
            for i in range(0, len(rows), 16)
        ]
        index = ChunkSecondaryIndex.build(self._zone_specs(), leaves)
        allowed = index.candidate_leaves(attr_ranges={"temp": (30.0, 40.0)})
        for leaf_idx, (_keys, tuples) in enumerate(leaves):
            if any(30.0 <= t.payload["temp"] <= 40.0 for t in tuples):
                assert leaf_idx in allowed

    def test_zone_map_prunes(self):
        rows = self._rows()
        leaves = [
            ([t.key for t in rows[i : i + 16]], rows[i : i + 16])
            for i in range(0, len(rows), 16)
        ]
        index = ChunkSecondaryIndex.build(self._zone_specs(), leaves)
        allowed = index.candidate_leaves(attr_ranges={"temp": (30.0, 34.0)})
        assert 0 < len(allowed) < len(leaves)

    def test_zone_map_serialization_roundtrip(self):
        rows = self._rows(100)
        leaves = [([t.key for t in rows[i:i+10]], rows[i:i+10]) for i in range(0, 100, 10)]
        index = ChunkSecondaryIndex.build(self._zone_specs(), leaves)
        clone = ChunkSecondaryIndex.from_bytes(index.to_bytes())
        probe = {"temp": (25.0, 45.0)}
        assert clone.candidate_leaves(attr_ranges=probe) == index.candidate_leaves(
            attr_ranges=probe
        )

    def test_range_on_non_numeric_attr_ignored_by_index(self):
        rows = make_rows(50)
        index = ChunkSecondaryIndex.build(_specs(), _leaves(rows))
        # 'color' is not numeric: the range predicate can't use the index.
        assert index.candidate_leaves(attr_ranges={"color": ("a", "z")}) is None

    def test_system_range_query_matches_reference(self):
        cfg = small_config(
            secondary_specs=(
                AttributeSpec("temp", lambda p: p["temp"], numeric=True),
            ),
            chunk_bytes=4096,
        )
        ww = Waterwheel(cfg)
        rng = random.Random(22)
        data = [
            DataTuple(
                rng.randrange(0, 10_000),
                i * 0.01,
                {"temp": 20.0 + (i / 3000) * 60.0},
                size=32,
            )
            for i in range(3000)
        ]
        ww.insert_many(data)
        ww.flush_all()
        res = ww.query(0, 10_000, 0.0, 30.0, attr_ranges={"temp": (40.0, 50.0)})
        expected = [t for t in data if 40.0 <= t.payload["temp"] <= 50.0]
        assert len(res) == len(expected)
        # Temperature correlates with time -> zone maps prune leaves.
        baseline = ww.query(0, 10_000, 0.0, 30.0)
        assert res.leaves_read < baseline.leaves_read

    def test_combined_equality_and_range(self):
        cfg = small_config(
            secondary_specs=(
                AttributeSpec("temp", lambda p: p["temp"], numeric=True),
                AttributeSpec("kind", lambda p: p["kind"]),
            ),
            chunk_bytes=4096,
        )
        ww = Waterwheel(cfg)
        rng = random.Random(23)
        data = [
            DataTuple(
                rng.randrange(0, 10_000),
                i * 0.01,
                {"temp": rng.uniform(0, 100), "kind": f"k{i % 4}"},
                size=32,
            )
            for i in range(2000)
        ]
        ww.insert_many(data)
        res = ww.query(
            0, 10_000, 0.0, 20.0,
            attr_equals={"kind": "k2"},
            attr_ranges={"temp": (10.0, 20.0)},
        )
        expected = [
            t for t in data
            if t.payload["kind"] == "k2" and 10.0 <= t.payload["temp"] <= 20.0
        ]
        assert len(res) == len(expected)
