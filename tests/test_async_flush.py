"""Asynchronous seal-and-swap flush pipeline: equivalence, backpressure,
crash-safety.

The headline property: ``flush_mode="async"`` is observationally
equivalent to ``flush_mode="sync"`` -- same query results at every
checkpoint, same chunk ids and contents, same metastore end state --
across ingest (both paths), queries, kill/recover, log compaction and
rebalancing, on both transports.  The remaining tests pin the pieces that
make that hold: sealed-but-unflushed data stays query-visible, the replay
checkpoint never passes an unflushed offset (also a regression for the
sync-mode late-buffer bug), backpressure bounds sealed bytes without
deadlocking, and a crash mid-flush loses nothing.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.config import small_config
from repro.core.flush import FlushExecutor, FlushTask
from repro.core.indexing_server import IndexingServer
from repro.core.model import DataTuple, KeyInterval
from repro.core.system import Waterwheel
from repro.core.verify import verify_system
from repro.messaging import DurableLog
from repro.metastore import MetadataStore
from repro.simulation import Cluster
from repro.storage import ChunkWriteError, SimulatedDFS
from repro.workloads import uniform_records


def build_server(**config_overrides):
    cfg = small_config(**config_overrides)
    cluster = Cluster(cfg.n_nodes, seed=cfg.seed)
    dfs = SimulatedDFS(cluster, cfg.costs, cfg.replication)
    metastore = MetadataStore()
    server = IndexingServer(0, 0, cfg, dfs, metastore, KeyInterval(0, 10_000))
    return server, dfs, metastore, cfg


def _fill_and_flush(server, cfg, n_extra=5):
    """Ingest just past one chunk threshold; returns (chunk_id, offsets)."""
    per_chunk = cfg.chunk_bytes // 32
    chunk_id = None
    offset = 0
    for i in range(per_chunk + n_extra):
        got = server.ingest(
            DataTuple(i % 10_000, float(i), payload=i, size=32), offset=offset
        )
        offset += 1
        if got:
            chunk_id = got
    return chunk_id, offset


# --- sync == async equivalence ------------------------------------------------


def _skewed_stream(cfg, n, seed):
    """Uniform stream with a drifting hot band so the balancer really fires."""
    data = uniform_records(n, key_lo=cfg.key_lo, key_hi=cfg.key_hi, seed=seed)
    span = cfg.key_hi - cfg.key_lo
    out = []
    for i, t in enumerate(data):
        if i % 3 == 0:
            centre = cfg.key_lo + span * (0.2 + 0.6 * i / max(1, n - 1))
            key = min(cfg.key_hi - 1, max(cfg.key_lo, int(centre) + i % 97))
            out.append(DataTuple(key, t.ts, t.payload, t.size))
        else:
            out.append(t)
    return out


def _snapshot(ww, lo, hi, t_lo, t_hi):
    res = ww.query(lo, hi, t_lo, t_hi)
    assert not res.partial
    return sorted((t.key, t.ts) for t in res.tuples)


def _run_scenario(flush_mode, transport):
    """One seeded life: mixed ingest, queries, a kill/recover, compaction,
    rebalancing, final flush -- returns every observable along the way."""
    cfg = small_config(
        n_nodes=4,
        flush_mode=flush_mode,
        rebalance_check_every=400,
        dfs_write_sleep=0.0005,
    )
    data = _skewed_stream(cfg, 2_400, seed=99)
    obs = []
    ww = Waterwheel(cfg, transport=transport)
    try:
        steps = 8
        per = len(data) // steps
        for step in range(steps):
            batch = data[step * per : (step + 1) * per]
            if step % 2 == 0:
                ww.insert_batch(batch)
            else:
                for t in batch:
                    ww.insert(t)
            if step == 3:
                # Crash with seals potentially in flight; recovery replays
                # the log suffix the commits never checkpointed.
                ww.kill_indexing_server(1)
                obs.append(("recovered", ww.recover_indexing_server(1) > 0))
            if step == 5:
                ww.drain_flushes()
                ww.compact_log()
            # Quiesce the pipeline before comparing query results: a
            # commit landing mid-query moves tuples between the fresh and
            # chunk branches, which is exactly what must NOT change the
            # result -- but the comparison itself needs a stable point.
            ww.drain_flushes()
            t_hi = max(t.ts for t in data[: (step + 1) * per]) + 1.0
            obs.append(
                _snapshot(ww, cfg.key_lo, cfg.key_hi - 1, 0.0, t_hi)
            )
            qlo = cfg.key_lo + 123 + step * 977
            obs.append(_snapshot(ww, qlo, qlo + 3_000, t_hi * 0.25, t_hi))
        ww.flush_all()
        audit = verify_system(ww)
        obs.append(("audit", audit.problems))
        chunk_ids = sorted(ww.dfs.chunk_ids())
        obs.append(("chunks", chunk_ids))
        obs.append(
            (
                "chunk_records",
                [
                    (
                        cid,
                        rec["key_lo"],
                        rec["key_hi"],
                        rec["t_lo"],
                        rec["t_hi"],
                        rec["n_tuples"],
                        rec["late"],
                    )
                    for cid in chunk_ids
                    for rec in [ww.metastore.get(f"/chunks/{cid}")]
                    if rec is not None
                ],
            )
        )
        obs.append(
            (
                "checkpoints",
                [
                    ww.metastore.get(f"/indexing/{s.server_id}/offset", 0)
                    for s in ww.indexing_servers
                ],
            )
        )
        obs.append(("rebalances", ww.balancer.rebalance_count))
        obs.append(("in_memory", ww.in_memory_tuples))
        t_end = max(t.ts for t in data) + cfg.late_delta + 1.0
        obs.append(_snapshot(ww, cfg.key_lo, cfg.key_hi - 1, 0.0, t_end))
    finally:
        ww.close()
    return obs


@pytest.mark.parametrize("transport", ["inline", "threaded"])
def test_sync_async_equivalence(transport):
    sync_obs = _run_scenario("sync", transport)
    async_obs = _run_scenario("async", transport)
    assert len(sync_obs) == len(async_obs)
    for i, (a, b) in enumerate(zip(sync_obs, async_obs)):
        assert a == b, f"observation {i} diverged between sync and async"
    # The scenario genuinely exercised its moving parts.
    labels = dict(o for o in sync_obs if isinstance(o, tuple) and len(o) == 2)
    assert labels["audit"] == []
    assert labels["in_memory"] == 0
    assert len(labels["chunks"]) > 3


# --- sealed visibility & checkpointing ----------------------------------------


def test_sealed_data_stays_query_visible_until_commit():
    server, dfs, metastore, cfg = build_server(flush_mode="async")
    dfs.inject_put_faults(times=1)  # the commit fails; the seal parks
    chunk_id, offset = _fill_and_flush(server, cfg)
    assert chunk_id is not None
    server._flush_executor.drain(timeout=5.0)
    # The write failed: no chunk, task parked, data still in memory ...
    assert not dfs.exists(chunk_id)
    [task] = server.sealed_tasks
    assert task.state == "failed" and task.uncommitted
    assert server.in_memory_tuples == offset
    # ... query-visible through the fresh branch ...
    from tests.test_indexing_server import sq

    got, _ = server.query_fresh(sq(0, 9_999, 0.0, float(offset)))
    assert len(got) == offset
    # ... and the replay checkpoint never moved past it.
    assert metastore.get("/indexing/0/offset", 0) == 0
    # Heal + retry: the supervisor path requeues, the commit lands, and
    # only then does the checkpoint advance and the fresh copy retire.
    assert server.retry_failed_flushes() == 1
    assert server._flush_executor.drain(timeout=5.0)
    assert dfs.exists(chunk_id)
    assert metastore.exists(f"/chunks/{chunk_id}")
    sealed_n = metastore.get(f"/chunks/{chunk_id}")["n_tuples"]
    assert server.in_memory_tuples == offset - sealed_n
    assert metastore.get("/indexing/0/offset", 0) == sealed_n


def test_checkpoint_pinned_by_late_buffer():
    """Regression (also present in sync mode): flushing the main tree while
    the late buffer holds an *older* offset must not checkpoint past it --
    the seed code checkpointed ``last_offset + 1`` and a kill+recover then
    silently dropped the late tuple."""
    server, dfs, metastore, cfg = build_server()
    offset = 0
    for i in range(10):  # establish max_ts ~ 109
        server.ingest(
            DataTuple(100 + i, 100.0 + i, payload=i, size=32), offset=offset
        )
        offset += 1
    late_offset = offset  # severely late: ts far below max - 4 * late_delta
    server.ingest(
        DataTuple(500, 1.0, payload="late", size=32), offset=late_offset
    )
    offset += 1
    chunk_id = None
    while chunk_id is None:
        chunk_id = server.ingest(
            DataTuple(offset % 10_000, 110.0 + offset, payload=offset, size=32),
            offset=offset,
        )
        offset += 1
    # The main tree flushed, but the checkpoint may not pass the late
    # tuple still in memory; the flushed ranges above it are persisted
    # for replay to skip.
    assert metastore.get("/indexing/0/offset", 0) == late_offset
    residual = metastore.get("/indexing/0/flushed_offsets")
    assert residual == [[late_offset + 1, offset]]
    # Once the late buffer flushes too, the checkpoint catches up.
    server.flush_all()
    assert metastore.get("/indexing/0/offset", 0) == offset
    assert metastore.get("/indexing/0/flushed_offsets") == []


def test_recovery_skips_flushed_ranges():
    """Replay after a partial flush re-ingests only the unflushed offsets:
    the persisted flushed ranges are skipped, so nothing duplicates."""
    server, dfs, metastore, cfg = build_server()
    log = DurableLog()
    log.create_topic("tuples", 1)
    offset = 0
    tuples = []
    for i in range(10):
        tuples.append(DataTuple(100 + i, 100.0 + i, payload=i, size=32))
    tuples.append(DataTuple(500, 1.0, payload="late", size=32))
    per_chunk = cfg.chunk_bytes // 32
    for j in range(per_chunk):
        tuples.append(
            DataTuple(j % 10_000, 110.0 + j, payload=j, size=32)
        )
    for t in tuples:
        log.append("tuples", 0, t)
        server.ingest(t, offset=offset)
        offset += 1
    assert server.flush_count >= 1  # the main tree flushed mid-stream
    in_memory_before = server.in_memory_tuples
    server.fail()
    replayed = server.recover(log, "tuples")
    # Exactly the unflushed tuples come back -- the flushed ranges were
    # skipped, so flushed data exists once (in its chunk), not twice.
    assert replayed == in_memory_before
    assert server.in_memory_tuples == in_memory_before
    from tests.test_indexing_server import sq

    got, _ = server.query_fresh(sq(500, 500, 0.0, 2.0))
    assert len(got) == 1  # the late tuple survived the crash


def test_template_survives_seal():
    """The retained template spawns the next active tree: same separators,
    no rebuilt boundaries, ingestion resumes immediately."""
    server, dfs, metastore, cfg = build_server(flush_mode="async")
    dfs.inject_put_faults(times=1)  # park the seal so we can inspect it
    chunk_id, offset = _fill_and_flush(server, cfg)
    assert chunk_id is not None
    server._flush_executor.drain(timeout=5.0)
    [task] = server.sealed_tasks
    # The spawned active tree carries the sealed tree's separators exactly
    # as they stood at seal time (including any skew adaptation) -- no
    # uniform-boundary rebuild, so ingestion resumes on a trained template.
    assert server._tree.separators == task.tree.separators
    assert len(server._tree) > 0  # the post-threshold extras kept landing
    dfs.clear_put_faults()
    assert server.retry_failed_flushes() == 1
    assert server._flush_executor.drain(timeout=5.0)
    assert dfs.exists(chunk_id)


# --- executor backpressure ----------------------------------------------------


class _GateServer:
    """Stand-in server whose commits wait on an explicit gate."""

    def __init__(self):
        self.gate = threading.Semaphore(0)
        self.committed = []

    def _execute_flush(self, task):
        assert self.gate.acquire(timeout=5.0)
        task.state = "committed"
        self.committed.append(task.chunk_id)
        return True


def _task(server, chunk_id, nbytes):
    return FlushTask(server, None, False, 0, chunk_id, nbytes, [])


def test_backpressure_blocks_until_capacity_frees():
    server = _GateServer()
    ex = FlushExecutor(max_inflight_bytes=100)
    ex.submit(_task(server, "c0", 80))
    done = threading.Event()

    def second():
        ex.submit(_task(server, "c1", 80))  # 80 + 80 > 100: must wait
        done.set()

    thread = threading.Thread(target=second, daemon=True)
    thread.start()
    assert not done.wait(0.15)  # parked on the cap
    server.gate.release()  # first commit completes, capacity frees
    assert done.wait(5.0)
    server.gate.release()
    assert ex.drain(timeout=5.0)
    assert server.committed == ["c0", "c1"]
    ex.close()


def test_oversized_seal_admitted_when_idle():
    """A cap smaller than one chunk must not deadlock: the executor always
    admits a task when nothing is in flight."""
    server = _GateServer()
    server.gate.release()
    ex = FlushExecutor(max_inflight_bytes=10)
    ex.submit(_task(server, "big", 1_000_000))  # returns without blocking
    assert ex.drain(timeout=5.0)
    assert server.committed == ["big"]
    ex.close()


def test_ingest_overlaps_slow_chunk_writes():
    """End to end: with writes slowed and the cap at one chunk, ingest
    still completes and every chunk commits -- the pipeline throttles,
    never wedges."""
    cfg = small_config(
        flush_mode="async",
        flush_inflight_bytes=8192,  # one chunk in flight at a time
        dfs_write_sleep=0.002,
    )
    ww = Waterwheel(cfg)
    try:
        data = uniform_records(1_500, key_hi=cfg.key_hi, seed=11)
        ww.insert_many(data)
        assert ww.drain_flushes(timeout=30.0)
        ww.flush_all()
        assert ww.in_memory_tuples == 0
        res = ww.query(0, cfg.key_hi - 1, 0.0, max(t.ts for t in data) + 1)
        assert len(res.tuples) == len(data)
    finally:
        ww.close()


# --- crash safety -------------------------------------------------------------


def test_kill_mid_flush_loses_nothing():
    """Crash a server while flushes are parked mid-pipeline: the replay
    checkpoint never covered them, so recovery rebuilds every tuple."""
    cfg = small_config(flush_mode="async")
    ww = Waterwheel(cfg)
    try:
        # Every chunk write fails: seals pile up uncommitted.
        ww.dfs.inject_put_faults(times=1_000)
        data = uniform_records(1_200, key_hi=cfg.key_hi, seed=23)
        ww.insert_many(data)
        ww.drain_flushes()
        sid = next(
            s.server_id for s in ww.indexing_servers if s.sealed_tasks
        )
        # Compaction is guarded by flush *completion*: nothing committed,
        # so nothing may be truncated out from under the pending replay.
        assert ww.compact_log() == 0
        ww.kill_indexing_server(sid)
        assert ww.recover_indexing_server(sid) > 0
        # Heal the DFS; retries drain the re-sealed data.
        ww.dfs.clear_put_faults()
        ww.retry_failed_flushes()
        ww.flush_all()
        audit = verify_system(ww)
        assert audit.problems == []
        res = ww.query(0, cfg.key_hi - 1, 0.0, max(t.ts for t in data) + 1)
        assert sorted((t.key, t.ts) for t in res.tuples) == sorted(
            (t.key, t.ts) for t in data
        )
    finally:
        ww.close()


def test_failed_sync_flush_keeps_data_for_retry():
    """Sync mode writes before resetting: a failed DFS put surfaces the
    error with the tree (and its offsets) intact, and the next threshold
    crossing retries cleanly."""
    server, dfs, metastore, cfg = build_server()
    dfs.inject_put_faults(times=1)
    per_chunk = cfg.chunk_bytes // 32
    # The threshold-crossing tuple is inserted first; its flush then fails.
    with pytest.raises(ChunkWriteError):
        for i in range(per_chunk + 5):
            server.ingest(
                DataTuple(i % 10_000, float(i), payload=i, size=32), offset=i
            )
    assert server.in_memory_tuples == per_chunk  # nothing lost
    assert metastore.get("/indexing/0/offset", 0) == 0
    chunk_id = server.flush()  # budget exhausted: this one succeeds
    assert chunk_id is not None and dfs.exists(chunk_id)
    assert metastore.get("/indexing/0/offset", 0) == per_chunk


def test_config_validates_flush_settings():
    with pytest.raises(ValueError):
        small_config(flush_mode="pipelined")
    with pytest.raises(ValueError):
        small_config(flush_inflight_bytes=0)
    with pytest.raises(ValueError):
        small_config(dfs_write_sleep=-1.0)
