"""Queries against a degraded cluster: partial results, retries, faults.

Section V fault tolerance, exercised end to end: DFS nodes fail out from
under flushed chunks (every replica dead -> ``ChunkUnavailable``), query
servers drop off the message plane (injected drops / fails on the
``coordinator->query_server`` edge), and in each case the query must
degrade -- not abort.  Readable chunks and fresh in-memory data still
arrive; the lost chunks are named in ``QueryResult.unreadable_chunks``;
the retry/timeout/fault traffic shows up in the ``rpc.*`` counters and
``coordinator.partial_queries``.
"""

from __future__ import annotations

import pytest

from repro import Waterwheel, obs, small_config
from repro.core.model import DataTuple
from conftest import make_tuples


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _loaded_system(transport="inline", n=4_000, nodes=6):
    """A system with several flushed chunks plus a fresh in-memory tail."""
    ww = Waterwheel(small_config(n_nodes=nodes), transport=transport)
    data = make_tuples(n)
    ww.insert_many(data)
    now = max(t.ts for t in data)
    # A fresh tail that stays in memory: the degraded queries below must
    # still return it untouched.
    fresh = [
        DataTuple(key=37 + 100 * i, ts=now + 0.5 + 0.001 * i, payload=f"fresh-{i}")
        for i in range(50)
    ]
    for t in fresh:
        ww.insert(t)
    assert ww.in_memory_tuples >= len(fresh)
    assert ww.chunk_count > 1
    return ww, now + 1.0, {t.payload for t in fresh}


def _kill_all_replicas(ww, chunk_id):
    for node in ww.dfs.location(chunk_id).replicas:
        if ww.cluster.is_alive(node):
            ww.cluster.kill(node)


class TestUnreadableChunks:
    """Satellite bugfix: ``ChunkUnavailable`` from ``dfs.get_bytes`` used to
    propagate out of ``QueryServer.execute`` and abort the whole query."""

    @pytest.mark.parametrize("transport", ["inline", "threaded"])
    def test_dead_replica_set_degrades_to_partial(self, transport):
        obs.enable(metrics_on=True, tracing_on=False)
        ww, now, fresh_payloads = _loaded_system(transport)
        try:
            chunks = [
                key[len("/chunks/") :]
                for key in sorted(ww.metastore.list_prefix("/chunks/"))
            ]
            victim = chunks[0]
            _kill_all_replicas(ww, victim)
            assert ww.cluster.failed_nodes  # mid-workload node failures
            assert ww.dfs.live_replicas(victim) == []

            res = ww.query(0, 10_000, 0.0, now)
            assert res.partial
            assert victim in res.unreadable_chunks
            # Only chunks whose whole replica sets died are lost.
            for lost in res.unreadable_chunks:
                assert ww.dfs.live_replicas(lost) == []
            # Every readable chunk still contributed ...
            assert len(res) > 0
            got = {t.payload for t in res.tuples}
            # ... and the fresh branch is untouched by DFS failures.
            assert fresh_payloads <= got

            snap = ww.metrics()
            assert snap["coordinator.partial_queries"]["value"] == 1
        finally:
            ww.close()

    def test_healthy_cluster_is_not_partial(self):
        ww, now, _fresh = _loaded_system()
        res = ww.query(0, 10_000, 0.0, now)
        assert not res.partial
        assert res.unreadable_chunks == []

    def test_replica_unavailable_error_alias(self):
        from repro.storage import ChunkUnavailable
        from repro.storage.dfs import ReplicaUnavailableError

        assert ReplicaUnavailableError is ChunkUnavailable


class TestEdgeFaults:
    """Timeout -> retry -> partial degradation on broken message-plane
    edges, with the traffic visible in the ``rpc.*`` counters."""

    def test_threaded_single_server_drop_reroutes_to_full_result(self):
        obs.enable(metrics_on=True, tracing_on=False)
        ww, now, _fresh = _loaded_system("threaded")
        try:
            total = ww.tuples_inserted
            ww.plane.set_policy(
                "coordinator->query_server", timeout=0.2, retries=1
            )
            ww.faults.inject(
                edge="coordinator->query_server", target=0, drop=True
            )
            res = ww.query(0, 10_000, 0.0, now)
            # Server 0's subqueries timed out, were re-routed and answered
            # by the other servers: the result is complete.
            assert len(res) == total
            assert not res.partial
            snap = ww.metrics()
            edge = "{edge=coordinator->query_server}"
            assert snap[f"rpc.faults{edge}"]["value"] > 0
            assert snap[f"rpc.timeouts{edge}"]["value"] > 0
            assert snap[f"rpc.retries{edge}"]["value"] > 0
        finally:
            ww.close()

    def test_threaded_whole_edge_drop_degrades_to_partial(self):
        obs.enable(metrics_on=True, tracing_on=False)
        ww, now, fresh_payloads = _loaded_system("threaded")
        try:
            ww.plane.set_policy(
                "coordinator->query_server", timeout=0.1, retries=1
            )
            ww.faults.inject(edge="coordinator->query_server", drop=True)
            res = ww.query(0, 10_000, 0.0, now)
            # Every chunk subquery timed out on every route: the chunk
            # branch is gone, the fresh branch still answers.
            assert res.partial
            assert set(res.unreadable_chunks)
            got = {t.payload for t in res.tuples}
            assert fresh_payloads <= got
            snap = ww.metrics()
            assert snap["coordinator.partial_queries"]["value"] == 1
            edge = "{edge=coordinator->query_server}"
            assert snap[f"rpc.timeouts{edge}"]["value"] > 0
        finally:
            ww.close()

    def test_inline_transient_drop_recovers_via_endpoint_retries(self):
        obs.enable(metrics_on=True, tracing_on=False)
        ww, now, _fresh = _loaded_system("inline")
        total = ww.tuples_inserted
        ww.plane.set_policy(
            "coordinator->query_server", retries=2, backoff=0.0
        )
        # The first two sends vanish; the endpoint's own retry loop makes
        # the third attempt deliver.
        ww.faults.inject(
            edge="coordinator->query_server", drop=True, times=2
        )
        res = ww.query(0, 10_000, 0.0, now)
        assert len(res) == total
        assert not res.partial
        assert not ww.faults.active  # the times budget is spent
        snap = ww.metrics()
        edge = "{edge=coordinator->query_server}"
        assert snap[f"rpc.timeouts{edge}"]["value"] == 2
        assert snap[f"rpc.retries{edge}"]["value"] == 2

    def test_inline_hard_fail_on_one_server_still_completes(self):
        ww, now, _fresh = _loaded_system("inline")
        total = ww.tuples_inserted
        ww.plane.set_policy(
            "coordinator->query_server", retries=0
        )
        # Server 0's edge is permanently broken: the dispatch loop
        # quarantines its slot and re-routes its subqueries.
        ww.faults.inject(
            edge="coordinator->query_server", target=0, fail=True
        )
        res = ww.query(0, 10_000, 0.0, now)
        assert len(res) == total
        assert not res.partial

    def test_killed_query_server_retries_visible_in_dispatch_counters(self):
        obs.enable(metrics_on=True, tracing_on=False)
        ww, now, _fresh = _loaded_system("inline")
        total = ww.tuples_inserted
        ww.kill_query_server(0)
        ww.kill_query_server(1)
        res = ww.query(0, 10_000, 0.0, now)
        assert len(res) == total
        assert not res.partial  # surviving servers absorb the work
