"""Tests for the subquery dispatch policies (LADA and baselines)."""

import pytest

from repro.core.dispatch import (
    DispatchError,
    HashingDispatch,
    LadaDispatch,
    RoundRobinDispatch,
    SharedQueueDispatch,
    run_dispatch,
)
from repro.core.model import KeyInterval, SubQuery, TimeInterval
from repro.core.query_server import SubQueryResult


class FakeServer:
    """Stands in for a QueryServer: fixed cost per subquery, no I/O."""

    def __init__(self, server_id, node_id, cost=1.0):
        self.server_id = server_id
        self.node_id = node_id
        self.cost = cost
        self.alive = True
        self.executed = []

    def execute(self, sq):
        self.executed.append(sq.chunk_id)
        return SubQueryResult(tuples=[], cost=self.cost)


def make_sqs(chunk_ids):
    return [
        SubQuery(
            query_id=1,
            keys=KeyInterval(0, 10),
            times=TimeInterval(0, 1),
            predicate=None,
            chunk_id=cid,
        )
        for cid in chunk_ids
    ]


def make_servers(n, cost=1.0):
    return [FakeServer(i, node_id=i, cost=cost) for i in range(n)]


class TestRunDispatchBasics:
    def test_all_subqueries_execute_exactly_once(self):
        servers = make_servers(3)
        outcome = run_dispatch(make_sqs([f"c{i}" for i in range(10)]), servers, SharedQueueDispatch())
        assert all(r is not None for r in outcome.results)
        total = sum(len(s.executed) for s in servers)
        assert total == 10

    def test_empty_subquery_list(self):
        outcome = run_dispatch([], make_servers(2), SharedQueueDispatch())
        assert outcome.makespan == 0.0
        assert outcome.results == []

    def test_no_alive_servers_raises(self):
        servers = make_servers(2)
        for s in servers:
            s.alive = False
        with pytest.raises(DispatchError):
            run_dispatch(make_sqs(["c1"]), servers, SharedQueueDispatch())

    def test_makespan_shared_queue_balanced(self):
        servers = make_servers(4, cost=1.0)
        outcome = run_dispatch(make_sqs([f"c{i}" for i in range(8)]), servers, SharedQueueDispatch())
        assert outcome.makespan == pytest.approx(2.0)

    def test_dead_server_skipped(self):
        servers = make_servers(3)
        servers[1].alive = False
        outcome = run_dispatch(make_sqs([f"c{i}" for i in range(6)]), servers, SharedQueueDispatch())
        assert servers[1].executed == []
        assert all(r is not None for r in outcome.results)


class TestRoundRobin:
    def test_static_assignment_ignores_idleness(self):
        # Server 0 is slow; round-robin still gives it half the work.
        servers = [FakeServer(0, 0, cost=10.0), FakeServer(1, 1, cost=1.0)]
        outcome = run_dispatch(make_sqs([f"c{i}" for i in range(6)]), servers, RoundRobinDispatch())
        assert len(servers[0].executed) == 3
        assert outcome.makespan == pytest.approx(30.0)

    def test_shared_queue_beats_round_robin_with_slow_server(self):
        def run(policy):
            servers = [FakeServer(0, 0, cost=10.0), FakeServer(1, 1, cost=1.0)]
            return run_dispatch(
                make_sqs([f"c{i}" for i in range(6)]), servers, policy
            ).makespan

        assert run(SharedQueueDispatch()) < run(RoundRobinDispatch())


class TestHashing:
    def test_same_chunk_same_server(self):
        servers = make_servers(4)
        sqs = make_sqs(["cA", "cB", "cA", "cA", "cB"])
        outcome = run_dispatch(sqs, servers, HashingDispatch())
        by_chunk = {}
        for idx, server_id in outcome.assignments.items():
            chunk = sqs[idx].chunk_id
            by_chunk.setdefault(chunk, set()).add(server_id)
        assert all(len(s) == 1 for s in by_chunk.values())

    def test_consistent_across_queries(self):
        servers = make_servers(4)
        a = run_dispatch(make_sqs(["cA"]), servers, HashingDispatch())
        b = run_dispatch(make_sqs(["cA"]), servers, HashingDispatch())
        assert a.assignments[0] == b.assignments[0]


class TestLada:
    def locality(self, chunk_id, node_id):
        # chunk "cN" lives on node N (single replica).
        return node_id == int(chunk_id[1:]) % 4

    def test_prefers_colocated_server(self):
        servers = make_servers(4)
        outcome = run_dispatch(
            make_sqs(["c0", "c1", "c2", "c3"]),
            servers,
            LadaDispatch(self.locality),
        )
        for idx, server_id in outcome.assignments.items():
            assert server_id == idx  # each server takes its local chunk

    def test_consistent_preferences_across_queries(self):
        servers = make_servers(4)
        policy = LadaDispatch(lambda c, n: False)  # no locality: pure cache
        first = run_dispatch(make_sqs(["cX", "cY"]), servers, policy)
        second = run_dispatch(make_sqs(["cX", "cY"]), servers, policy)
        assert first.assignments == second.assignments

    def test_load_balance_with_many_subqueries(self):
        servers = make_servers(4)
        outcome = run_dispatch(
            make_sqs([f"c{i}" for i in range(16)]),
            servers,
            LadaDispatch(self.locality),
        )
        counts = [len(s.executed) for s in servers]
        assert max(counts) - min(counts) <= 1
        assert outcome.makespan == pytest.approx(4.0)

    def test_all_work_done_when_local_server_busy(self):
        # Every chunk local to node 0 only; other servers must still help.
        servers = make_servers(4)
        outcome = run_dispatch(
            make_sqs([f"c{i * 4}" for i in range(8)]),  # all map to node 0
            servers,
            LadaDispatch(self.locality),
        )
        assert all(r is not None for r in outcome.results)
        assert len(servers[0].executed) < 8  # others stole work


class TestFailureMidQuery:
    def test_mid_run_death_requeues(self):
        class DyingServer(FakeServer):
            def execute(self, sq):
                if len(self.executed) >= 1:
                    self.alive = False
                    from repro.core.query_server import ServerDownError

                    raise ServerDownError("boom")
                return super().execute(sq)

        servers = [DyingServer(0, 0), FakeServer(1, 1)]
        outcome = run_dispatch(
            make_sqs([f"c{i}" for i in range(6)]), servers, SharedQueueDispatch()
        )
        assert all(r is not None for r in outcome.results)
        assert outcome.retried >= 1
        assert len(servers[1].executed) >= 5
