"""Concurrency tests for the latched template B+ tree (real threads)."""

import random
import threading

from repro.btree.latched import LatchedTemplateBTree, RWLock
from repro.core.model import DataTuple


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        acquired = []

        def reader():
            with lock.read_locked():
                acquired.append(1)
                barrier.wait(timeout=5)

        barrier = threading.Barrier(3)
        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert acquired == [1, 1, 1]

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                order.append("read")

        t = threading.Thread(target=reader)
        t.start()
        order.append("write-held")
        lock.release_write()
        t.join(timeout=5)
        assert order == ["write-held", "read"]

    def test_write_guard(self):
        lock = RWLock()
        with lock.write_locked():
            pass
        with lock.read_locked():
            pass  # lock fully released by the guard


class TestConcurrentInserts:
    def test_parallel_inserts_lose_nothing(self):
        tree = LatchedTemplateBTree(0, 10_000, n_leaves=16, fanout=8)
        n_threads, per_thread = 6, 800
        errors = []

        def worker(worker_id):
            rng = random.Random(worker_id)
            try:
                for i in range(per_thread):
                    tree.insert(
                        DataTuple(
                            rng.randrange(0, 10_000),
                            float(i),
                            payload=(worker_id, i),
                        )
                    )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(tree) == n_threads * per_thread
        payloads = sorted(t.payload for t in tree.all_tuples())
        assert payloads == sorted(
            (w, i) for w in range(n_threads) for i in range(per_thread)
        )

    def test_concurrent_inserts_and_queries(self):
        tree = LatchedTemplateBTree(0, 1000, n_leaves=8, fanout=8)
        stop = threading.Event()
        errors = []

        def inserter():
            rng = random.Random(1)
            for i in range(3000):
                tree.insert(DataTuple(rng.randrange(0, 1000), float(i), payload=i))

        def querier():
            try:
                while not stop.is_set():
                    got = tree.range_query(100, 900)
                    # Results are internally consistent (sorted per scan).
                    keys = [t.key for t in got]
                    assert keys == sorted(keys)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        ins = threading.Thread(target=inserter)
        qry = threading.Thread(target=querier)
        ins.start()
        qry.start()
        ins.join(timeout=30)
        stop.set()
        qry.join(timeout=10)
        assert not errors
        assert len(tree) == 3000

    def test_updates_under_contention(self):
        tree = LatchedTemplateBTree(
            0, 100_000, n_leaves=16, fanout=8,
            skew_threshold=0.5, check_every=512,
        )
        errors = []

        def hot_inserter(worker_id):
            rng = random.Random(worker_id)
            try:
                for i in range(2000):
                    tree.insert(
                        DataTuple(rng.randrange(0, 500), float(i), payload=i)
                    )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=hot_inserter, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(tree) == 8000
        assert tree.stats.template_updates >= 1
        assert tree.skewness() < 2.0

    def test_explicit_update_preserves_data(self):
        tree = LatchedTemplateBTree(0, 1000, n_leaves=8, fanout=8)
        for i in range(500):
            tree.insert(DataTuple(i % 100, float(i), payload=i))
        tree.update_template()
        assert len(tree) == 500
        got = tree.range_query(0, 1000)
        assert sorted(t.payload for t in got) == list(range(500))

    def test_reset_leaves_thread_safe_surface(self):
        tree = LatchedTemplateBTree(0, 1000, n_leaves=8, fanout=8)
        for i in range(100):
            tree.insert(DataTuple(i, float(i)))
        tree.reset_leaves()
        assert len(tree) == 0
        tree.insert(DataTuple(5, 0.0, payload="after"))
        assert [t.payload for t in tree.point_read(5)] == ["after"]
