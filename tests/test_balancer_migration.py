"""Rebalance / live-migration correctness: install protocol, failover,
actual-region metadata and the rebalancing on/off equivalence property.

These are the regression tests for the adaptive-repartitioning subsystem:

* the balancer *defers* (never reassigns) while a server is dead or
  quarantined, and no acknowledged tuple is lost across kill -> skew ->
  recover;
* partition + epoch swap atomically (no torn reads under the threaded
  transport), and the committed metastore state always matches;
* a reassign that fails mid-install (RPC fault surviving the edge's
  retries -- a server dying mid-rebalance) rolls back cleanly: no
  half-installed partition on either transport;
* ingest-then-query results are identical with rebalancing enabled and
  disabled, across skew drift, flush points, compaction and a
  kill/recover cycle.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.compaction import ChunkCompactor
from repro.core.config import small_config
from repro.core.dispatcher import SharedPartition
from repro.core.model import KeyInterval
from repro.core.partitioning import KeyPartition
from repro.core.system import Waterwheel
from repro.core.verify import verify_system
from repro.workloads import DriftingKeyGenerator, NormalKeyGenerator

TRANSPORTS = ("inline", "threaded")


def _skewed_records(n, seed=11, mu=1500, sigma=300):
    """A hot-cluster stream that trips the 20% deviation trigger."""
    gen = NormalKeyGenerator(
        key_lo=0, key_hi=10_000, mu=mu, sigma=sigma, seed=seed
    )
    return gen.records(n)


def _build(transport="inline", adaptive=True, **overrides):
    cfg = small_config(rebalance_check_every=500, **overrides)
    return Waterwheel(
        cfg, adaptive_partitioning=adaptive, transport=transport
    )


def _full_query(ww, records):
    t_hi = max(t.ts for t in records) + ww.config.late_delta + 1.0
    return ww.query(0, ww.config.key_hi - 1, 0.0, t_hi)


class TestInstallProtocol:
    def test_rebalance_fires_and_results_complete(self):
        ww = _build()
        try:
            records = _skewed_records(2000)
            ww.insert_batch(records)
            assert ww.balancer.rebalance_count >= 1
            got = {(t.key, t.ts) for t in _full_query(ww, records).tuples}
            assert got == {(t.key, t.ts) for t in records}
            assert verify_system(ww).ok
        finally:
            ww.close()

    def test_epoch_committed_with_boundaries(self):
        ww = _build()
        try:
            assert ww.shared_partition.epoch == 0
            assert ww.metastore.get("/partition/epoch") == 0
            ww.insert_batch(_skewed_records(2000))
            assert ww.balancer.rebalance_count >= 1
            assert (
                ww.metastore.get("/partition/epoch")
                == ww.shared_partition.epoch
            )
            assert ww.metastore.get("/partition/boundaries") == list(
                ww.shared_partition.current.boundaries
            )
        finally:
            ww.close()

    def test_pause_defers_and_resume_releases(self):
        ww = _build()
        try:
            ww.balancer.pause()
            ww.insert_batch(_skewed_records(2000))
            assert ww.balancer.rebalance_count == 0
            assert ww.balancer.deferred_count >= 1
            assert ww.balancer.last_deferral == "paused"
            ww.balancer.resume()
            assert ww.balancer.maybe_rebalance() is not None
        finally:
            ww.close()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_mid_install_failure_rolls_back(self, transport):
        """A reassign failing past the edge's retries (= a server dying
        mid-rebalance) must leave no half-installed partition."""
        ww = _build(transport)
        try:
            records = _skewed_records(2000)
            # Stay below the trigger stride so the install is manual.
            ww.insert_batch(records[:400])
            victim = len(ww.indexing_servers) - 1
            # Default EdgePolicy retries twice, so 3 consecutive faults
            # are needed to make the call fail through.
            ww.faults.inject(
                edge="balancer->indexing", target=victim, fail=True, times=3
            )
            before = ww.shared_partition.snapshot()
            assigned_before = [s.assigned for s in ww.indexing_servers]
            assert ww.balancer.maybe_rebalance() is None
            assert ww.balancer.aborted_count == 1
            assert ww.balancer.rebalance_count == 0
            # Nothing moved: shared partition, epoch, metastore and every
            # server's assignment are exactly the pre-install state.
            assert ww.shared_partition.snapshot() == before
            assert [s.assigned for s in ww.indexing_servers] == assigned_before
            assert ww.metastore.get("/partition/epoch") == before[1]
            assert ww.metastore.get("/partition/boundaries") == list(
                before[0].boundaries
            )
            # Healed plane: the very next trigger installs.
            assert ww.balancer.maybe_rebalance() is not None
            assert ww.shared_partition.epoch == before[1] + 1
            got = {(t.key, t.ts) for t in _full_query(ww, records).tuples}
            assert got == {(t.key, t.ts) for t in records[:400]}
        finally:
            ww.close()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_mid_rebalance_then_recover(self, transport):
        """Abort by fault, then really kill the victim, recover, and prove
        zero acknowledged-tuple loss plus a consistent end state."""
        ww = _build(transport)
        try:
            records = _skewed_records(3000, seed=23)
            ww.insert_batch(records[:400])
            victim = 0
            ww.faults.inject(
                edge="balancer->indexing", target=victim, fail=True, times=3
            )
            assert ww.balancer.maybe_rebalance() is None
            assert ww.balancer.aborted_count == 1
            ww.faults.clear()
            ww.kill_indexing_server(victim)
            # Skewed ingest continues; the victim's interval quarantines
            # (tuples acked via the durable log) and every trigger defers.
            ww.insert_batch(records[400:2000])
            assert ww.balancer.rebalance_count == 0
            assert f"server {victim} unavailable" == ww.balancer.last_deferral
            replayed = ww.recover_indexing_server(victim)
            assert replayed > 0
            # Healthy again: skew is still there, the rebalance lands now.
            ww.insert_batch(records[2000:])
            assert ww.balancer.rebalance_count >= 1
            got = {(t.key, t.ts) for t in _full_query(ww, records).tuples}
            assert got == {(t.key, t.ts) for t in records}
            assert verify_system(ww).ok
        finally:
            ww.close()


class TestActualRegions:
    def test_overlap_migration_keeps_data_and_publishes_region(self):
        ww = _build()
        try:
            records = _skewed_records(2000)
            # Stay below the trigger stride, then install manually: the
            # overlap is *transient* (it closes at the next flush), so it
            # must be observed right after the install.
            ww.insert_batch(records[:400])
            assert ww.balancer.maybe_rebalance() is not None
            # At least one server still holds in-flight data outside its
            # new assignment: its actual interval is a strict superset,
            # and the metadata server publishes it.
            overlapping = [
                s
                for s in ww.indexing_servers
                if s.actual.lo < s.assigned.lo or s.actual.hi > s.assigned.hi
            ]
            assert overlapping
            for s in ww.indexing_servers:
                assert ww.metastore.get(f"/partition/actual/{s.server_id}") == [
                    s.actual.lo,
                    s.actual.hi,
                ]
            # The moved keys are still fully queryable mid-overlap.
            got = {(t.key, t.ts) for t in _full_query(ww, records).tuples}
            assert got == {(t.key, t.ts) for t in records[:400]}
        finally:
            ww.close()

    def test_overlap_collapses_at_flush(self):
        ww = _build()
        try:
            ww.insert_batch(_skewed_records(2000))
            assert ww.balancer.rebalance_count >= 1
            ww.flush_all()
            for s in ww.indexing_servers:
                # Empty trees: the actual interval is the assignment again
                # (an empty assignment collapses to empty).
                assert s.actual == s.assigned or (
                    s.assigned.is_empty() and s.actual.is_empty()
                )
        finally:
            ww.close()

    def test_flush_migration_closes_overlap_immediately(self):
        ww = _build(rebalance_migration="flush")
        try:
            records = _skewed_records(2000)
            ww.insert_batch(records)
            assert ww.balancer.rebalance_count >= 1
            assert ww.balancer.migrated_tuples > 0
            got = {(t.key, t.ts) for t in _full_query(ww, records).tuples}
            assert got == {(t.key, t.ts) for t in records}
            assert verify_system(ww).ok
        finally:
            ww.close()


class TestThreadedAtomicity:
    def test_snapshot_never_torn(self):
        """Concurrent readers must never observe a (partition, epoch) pair
        that update() did not publish together."""
        p_even = KeyPartition(0, 10_000, [5000])
        p_odd = KeyPartition(0, 10_000, [2000])
        shared = SharedPartition(p_even)
        stop = threading.Event()
        torn = []

        def writer():
            flip = 0
            while not stop.is_set():
                # epoch 2k+1 always installs p_odd, 2k+2 always p_even.
                shared.update(p_odd if flip % 2 == 0 else p_even)
                flip += 1

        def reader():
            while not stop.is_set():
                part, epoch = shared.snapshot()
                expect = p_odd if epoch % 2 == 1 else p_even
                if part is not expect:
                    torn.append((epoch, part))
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for th in threads:
            th.start()
        stop.wait(0.3)
        stop.set()
        for th in threads:
            th.join()
        assert torn == []

    def test_concurrent_ingest_and_rebalance(self):
        """One thread ingests, another fires trigger checks: the committed
        state stays consistent and every tuple remains queryable."""
        ww = _build("threaded")
        try:
            records = _skewed_records(4000, seed=31)
            done = threading.Event()
            errors = []

            def ingest():
                try:
                    for start in range(0, len(records), 200):
                        ww.insert_batch(records[start : start + 200])
                finally:
                    done.set()

            def balance():
                while not done.is_set():
                    try:
                        ww.balancer.maybe_rebalance()
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            threads = [
                threading.Thread(target=ingest),
                threading.Thread(target=balance),
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert errors == []
            # Committed metastore state, shared partition and every
            # server's assignment agree after the dust settles.
            assert ww.metastore.get("/partition/boundaries") == list(
                ww.shared_partition.current.boundaries
            )
            assert (
                ww.metastore.get("/partition/epoch")
                == ww.shared_partition.epoch
            )
            expected = ww.shared_partition.current.padded_intervals(
                len(ww.indexing_servers)
            )
            for s in ww.indexing_servers:
                assert s.assigned == expected[s.server_id]
            got = {(t.key, t.ts) for t in _full_query(ww, records).tuples}
            assert got == {(t.key, t.ts) for t in records}
            assert verify_system(ww).ok
        finally:
            ww.close()


class TestEquivalence:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_rebalancing_on_off_equivalence(self, transport):
        """Property: rebalancing is invisible to queries.  The same stream
        ingested with rebalancing enabled and disabled yields identical
        results across skew drift, flush points, compaction and a
        kill/recover cycle."""
        records = DriftingKeyGenerator(
            key_lo=0,
            key_hi=10_000,
            mu=1500.0,
            sigma=250.0,
            drift_per_record=2.0,
            seed=9,
        ).records(3000)
        on = _build(transport, adaptive=True)
        off = _build(transport, adaptive=False)
        both = (on, off)
        windows = [
            (0, 9_999),
            (1_000, 3_000),
            (4_000, 8_000),
            (7_000, 7_400),
        ]

        def snapshots(t_hi):
            per_system = []
            for ww in both:
                per_system.append(
                    [
                        sorted(
                            (t.key, t.ts)
                            for t in ww.query(lo, hi, 0.0, t_hi).tuples
                        )
                        for lo, hi in windows
                    ]
                )
            return per_system

        try:
            seg = len(records) // 5
            for i in range(5):
                part = records[i * seg :] if i == 4 else (
                    records[i * seg : (i + 1) * seg]
                )
                if i == 2:
                    for ww in both:
                        ww.kill_indexing_server(1)
                for ww in both:
                    if i % 2:
                        ww.insert_batch(part)
                    else:
                        for t in part:
                            ww.insert(t)
                if i == 1:
                    for ww in both:
                        ww.flush_all()
                if i == 2:
                    for ww in both:
                        assert ww.recover_indexing_server(1) >= 0
                if i == 3:
                    for ww in both:
                        ChunkCompactor(ww).rollup()
                t_hi = part[-1].ts + on.config.late_delta + 1.0
                got_on, got_off = snapshots(t_hi)
                assert got_on == got_off, f"diverged after segment {i}"
            # The property is only meaningful if rebalancing really ran.
            assert on.balancer.rebalance_count >= 1
            assert off.balancer.rebalance_count == 0
            offered = {(t.key, t.ts) for t in records}
            for ww in both:
                got = {(t.key, t.ts) for t in _full_query(ww, records).tuples}
                assert got == offered
                assert verify_system(ww).ok
        finally:
            for ww in both:
                ww.close()
