"""Ranged DFS reads + pipelined leaf fetching: equivalence and accounting.

The ``ranged_reads`` knob rewires the query read path from whole-blob
chunk fetches to a prefix read plus coalesced leaf-span batches, with an
optional in-flight pipeline (``fetch_pipeline_depth``) and an
assignment-aware prefetcher (``prefetch_lookahead``) on concurrent
transports.  The equivalence contract under test: for the same workload,
ranged on/off -- at any pipeline depth, on either transport, at any cache
size, across compaction, corruption, and server kill/recover -- must
produce identical query results, partial flags, and chunk-cache hit/miss
counts.  Costs and bytes legitimately differ (that is the point), but
with ranged reads on every byte charged by the cost model must actually
have crossed the wire: ``SimulatedDFS.total_bytes_served`` is the wire
truth the charged ``total_bytes_read`` is audited against.
"""

from __future__ import annotations

import time

import pytest

from conftest import make_tuples
from repro import Waterwheel, obs, small_config
from repro.core.compaction import ChunkCompactor
from repro.simulation import Cluster, CostModel
from repro.storage import (
    ChunkReader,
    ChunkUnavailable,
    SimulatedDFS,
    coalesce_entries,
    prefix_length,
)
from repro.storage.chunk import LeafEntry, serialize_chunk
from repro.supervision import run_chaos

#: The three I/O-path modes the query path supports.  ``ranged_pipelined``
#: exercises both the span pipeline and the prefetcher (both no-op on the
#: inline transport, by design -- nothing can overlap there).
MODES = {
    "whole_blob": dict(ranged_reads=False),
    "ranged": dict(
        ranged_reads=True, fetch_pipeline_depth=0, prefetch_lookahead=0
    ),
    "ranged_pipelined": dict(
        ranged_reads=True, fetch_pipeline_depth=2, prefetch_lookahead=1
    ),
}

#: Mixed shapes: full scan, selective key over deep time, mid-size boxes.
QUERY_SPECS = [
    (0, 10_000, 0.0, 10.0),
    (1_200, 1_500, 0.0, 10.0),
    (4_000, 7_000, 1.0, 3.5),
    (9_000, 9_999, 0.5, 9.0),
]


def _entry(index, offset, length):
    return LeafEntry(
        index=index,
        first_key=0,
        last_key=0,
        n_tuples=0,
        block_offset=offset,
        block_length=length,
        sketch_offset=0,
        sketch_length=0,
        block_crc32=0,
    )


def _sample_chunk(n_leaves=4, per_leaf=50, compress=False):
    tuples = make_tuples(n_leaves * per_leaf, seed=7)
    tuples.sort(key=lambda t: t.key)
    leaves = []
    for i in range(n_leaves):
        run = tuples[i * per_leaf : (i + 1) * per_leaf]
        leaves.append(([t.key for t in run], run))
    return serialize_chunk(leaves, compress=compress)


class TestCoalesce:
    def test_adjacent_entries_merge(self):
        spans = coalesce_entries([_entry(0, 0, 100), _entry(1, 100, 50)])
        assert len(spans) == 1
        assert (spans[0].offset, spans[0].length) == (0, 150)
        assert [e.index for e in spans[0].entries] == [0, 1]

    def test_gap_splits_without_budget(self):
        spans = coalesce_entries(
            [_entry(0, 0, 100), _entry(1, 150, 10)], gap_bytes=49
        )
        assert [(s.offset, s.length) for s in spans] == [(0, 100), (150, 10)]

    def test_gap_merges_within_budget(self):
        spans = coalesce_entries(
            [_entry(0, 0, 100), _entry(1, 150, 10)], gap_bytes=50
        )
        assert [(s.offset, s.length) for s in spans] == [(0, 160)]
        assert spans[0].end == 160

    def test_input_order_is_irrelevant(self):
        forward = coalesce_entries([_entry(0, 0, 10), _entry(1, 200, 10)])
        backward = coalesce_entries([_entry(1, 200, 10), _entry(0, 0, 10)])
        assert [(s.offset, s.length) for s in forward] == [
            (s.offset, s.length) for s in backward
        ]

    def test_empty(self):
        assert coalesce_entries([]) == []


class TestPrefixLength:
    def test_matches_reader_prefix(self):
        blob = _sample_chunk()
        assert prefix_length(blob) == ChunkReader(blob).prefix_bytes
        assert 0 < prefix_length(blob) < len(blob)

    def test_empty_chunk_prefix_is_whole_blob(self):
        blob = serialize_chunk([])
        assert prefix_length(blob) == len(blob)


@pytest.fixture
def dfs():
    return SimulatedDFS(Cluster(6, seed=1), CostModel(), replication=3)


@pytest.fixture
def obs_on():
    """Metric-asserting tests flip the observability switch on."""
    obs.enable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestDfsRangedReads:
    def test_get_prefix_serves_exact_prefix(self, dfs):
        blob = _sample_chunk()
        dfs.put("c1", blob)
        served = dfs.total_bytes_served
        prefix = dfs.get_prefix("c1")
        assert prefix == blob[: prefix_length(blob)]
        assert dfs.total_bytes_served - served == len(prefix)

    def test_get_range_slices(self, dfs):
        dfs.put("c1", b"0123456789")
        assert dfs.get_range("c1", 2, 5) == b"23456"
        assert dfs.get_range("c1", 0, 10) == b"0123456789"

    def test_get_range_bounds(self, dfs):
        dfs.put("c1", b"0123456789")
        with pytest.raises(ValueError):
            dfs.get_range("c1", -1, 2)
        with pytest.raises(ValueError):
            dfs.get_range("c1", 8, 3)
        with pytest.raises(ValueError):
            dfs.get_range("c1", 0, -1)

    def test_get_ranges_one_access_many_spans(self, dfs, obs_on):
        dfs.put("c1", b"abcdefghij")
        served = dfs.total_bytes_served
        ranged = dfs._m_ranged_reads.value
        spans = dfs._m_coalesced_spans.value
        out = dfs.get_ranges("c1", [(0, 2), (4, 3), (9, 1)])
        assert out == [b"ab", b"efg", b"j"]
        assert dfs.total_bytes_served - served == 6
        # One ranged access serving three spans.
        assert dfs._m_ranged_reads.value - ranged == 1
        assert dfs._m_coalesced_spans.value - spans == 3

    def test_get_ranges_bounds(self, dfs):
        dfs.put("c1", b"abcd")
        with pytest.raises(ValueError):
            dfs.get_ranges("c1", [(0, 2), (3, 2)])

    def test_ranged_read_repairs_corrupt_replica(self, dfs):
        blob = _sample_chunk()
        dfs.put("c1", blob)
        node = dfs.corrupt_replica("c1")
        assert dfs.get_prefix("c1") == blob[: prefix_length(blob)]
        assert node not in dfs.corrupted_replicas("c1")
        assert dfs.get_range("c1", 0, len(blob)) == blob

    def test_ranged_read_unavailable_when_all_replicas_dead(self, dfs):
        dfs.put("c1", b"data")
        for node in dfs.location("c1").replicas:
            dfs._cluster.kill(node)
        with pytest.raises(ChunkUnavailable):
            dfs.get_range("c1", 0, 2)
        with pytest.raises(ChunkUnavailable):
            dfs.get_prefix("c1")


# --- whole-system equivalence -------------------------------------------------


def _build(transport="inline", n=3_000, **overrides):
    ww = Waterwheel(small_config(**overrides), transport=transport)
    ww.insert_many(make_tuples(n))
    return ww


def _observe(ww, *, cold=True, passes=2):
    """Run the query battery ``passes`` times (cold then warm) and return
    the comparable signature: results, partial flags, cache hit/miss."""
    if cold:
        for server in ww.query_servers:
            server.clear_cache()
    out = []
    for _ in range(passes):
        for spec in QUERY_SPECS:
            r = ww.query(*spec)
            out.append(
                {
                    "tuples": sorted((t.key, t.ts, t.payload) for t in r.tuples),
                    "partial": r.partial,
                    "cache_hits": r.cache_hits,
                    "cache_misses": r.cache_misses,
                }
            )
    return out


def _strip_cache_counts(sig):
    return [
        {"tuples": row["tuples"], "partial": row["partial"]} for row in sig
    ]


class TestModeEquivalence:
    @pytest.mark.parametrize("cache_bytes", [1 << 20, 4096, 64])
    def test_inline_modes_identical_with_cache_accounting(self, cache_bytes):
        """Ranged on/off x pipeline depth produce identical results AND
        identical cache hit/miss counts at every cache size -- including
        tiny caches where every prefix rides the transient-reader slot."""
        signatures = {}
        for mode, overrides in MODES.items():
            ww = _build(cache_bytes=cache_bytes, **overrides)
            try:
                signatures[mode] = _observe(ww)
            finally:
                ww.close()
        assert signatures["ranged"] == signatures["whole_blob"]
        assert signatures["ranged_pipelined"] == signatures["whole_blob"]
        assert any(row["tuples"] for row in signatures["whole_blob"])

    def test_threaded_modes_identical_results(self):
        """Same battery under the threaded plane: results and partial
        flags must match whole-blob exactly (cache hit totals are
        assignment-dependent there, so only the cold-pass miss totals --
        one per subquery -- are comparable)."""
        signatures = {}
        for mode, overrides in MODES.items():
            ww = _build(transport="threaded", **overrides)
            try:
                signatures[mode] = _observe(ww)
            finally:
                ww.close()
        base = _strip_cache_counts(signatures["whole_blob"])
        assert _strip_cache_counts(signatures["ranged"]) == base
        assert _strip_cache_counts(signatures["ranged_pipelined"]) == base

    def test_equivalence_survives_compaction(self):
        signatures = {}
        for mode, overrides in MODES.items():
            ww = _build(**overrides)
            try:
                ChunkCompactor(ww).rollup()
                signatures[mode] = _observe(ww)
            finally:
                ww.close()
        assert signatures["ranged"] == signatures["whole_blob"]
        assert signatures["ranged_pipelined"] == signatures["whole_blob"]

    def test_equivalence_survives_corruption_with_read_repair(self):
        signatures = {}
        for mode, overrides in MODES.items():
            ww = _build(**overrides)
            try:
                chunk_ids = [
                    key[len("/chunks/"):]
                    for key in ww.metastore.list_prefix("/chunks/")
                ]
                for chunk_id in chunk_ids:
                    ww.dfs.corrupt_replica(chunk_id)
                signatures[mode] = _observe(ww)
                for chunk_id in chunk_ids:
                    assert ww.dfs.corrupted_replicas(chunk_id) == []
            finally:
                ww.close()
        assert signatures["ranged"] == signatures["whole_blob"]
        assert signatures["ranged_pipelined"] == signatures["whole_blob"]

    def test_equivalence_across_server_kill_and_recover(self):
        signatures = {}
        for mode, overrides in MODES.items():
            ww = _build(**overrides)
            try:
                sig = []
                ww.kill_query_server(0)
                sig.append(_observe(ww, cold=False, passes=1))
                ww.recover_query_server(0)
                sig.append(_observe(ww, passes=1))
                signatures[mode] = [_strip_cache_counts(s) for s in sig]
                # Recovered cluster serves complete results again.
                assert not any(row["partial"] for row in sig[-1])
            finally:
                ww.close()
        assert signatures["ranged"] == signatures["whole_blob"]
        assert signatures["ranged_pipelined"] == signatures["whole_blob"]


class TestWireAccounting:
    def test_ranged_bytes_on_wire_equal_bytes_charged(self):
        """With ranged reads on (and the prefetcher off), every read on
        the query path is exact: the DFS serves precisely the bytes the
        cost model charges."""
        ww = _build(ranged_reads=True, fetch_pipeline_depth=0,
                    prefetch_lookahead=0)
        try:
            for server in ww.query_servers:
                server.clear_cache()
            served = ww.dfs.total_bytes_served
            charged = ww.dfs.total_bytes_read
            for spec in QUERY_SPECS:
                ww.query(*spec)
            assert (
                ww.dfs.total_bytes_served - served
                == ww.dfs.total_bytes_read - charged
                > 0
            )
        finally:
            ww.close()

    def test_whole_blob_overserves(self):
        """The legacy path ships entire blobs while charging only for the
        prefix and scanned leaves -- the accounting gap ranged reads
        close."""
        ww = _build(ranged_reads=False)
        try:
            for server in ww.query_servers:
                server.clear_cache()
            served = ww.dfs.total_bytes_served
            charged = ww.dfs.total_bytes_read
            ww.query(1_200, 1_500, 0.0, 10.0)  # selective: few leaves
            assert (
                ww.dfs.total_bytes_served - served
                > ww.dfs.total_bytes_read - charged
                > 0
            )
        finally:
            ww.close()

    def test_tiny_cache_does_not_churn_prefix_fetches(self):
        """Transient-reader regression: with a cache too small to admit
        even the prefix, back-to-back subqueries against the same chunk
        reuse the parsed reader instead of re-fetching the prefix from
        the DFS on every call."""
        ww = _build(n=800, cache_bytes=64, ranged_reads=True,
                    fetch_pipeline_depth=0, prefetch_lookahead=0)
        try:
            spec = QUERY_SPECS[1]
            ww.query(*spec)  # parse prefixes once (transient slot warm)
            served = ww.dfs.total_bytes_served
            first = ww.query(*spec)
            if ww.chunk_count == 1:
                # Single chunk: the transient reader alone absorbs the
                # repeat -- no prefix bytes move at all.
                assert ww.dfs.total_bytes_served == served
                assert first.cache_hits > 0
        finally:
            ww.close()


class TestPipelineAndPrefetch:
    def test_prefetch_noop_inline_and_whole_blob(self):
        ww = _build(n=500)
        try:
            chunk_ids = [
                key[len("/chunks/"):]
                for key in ww.metastore.list_prefix("/chunks/")
            ]
            assert ww.query_servers[0].prefetch_prefixes(chunk_ids) == 0
        finally:
            ww.close()
        ww = _build(n=500, transport="threaded", ranged_reads=False)
        try:
            assert ww.query_servers[0].prefetch_prefixes(["c"]) == 0
        finally:
            ww.close()

    def test_prefetched_prefix_is_consumed(self):
        """A landed prefetch satisfies the next prefix fetch without a
        second data-plane read, and the results are unchanged."""
        baseline = _build(n=1_500)
        try:
            expected = _strip_cache_counts(_observe(baseline, passes=1))
        finally:
            baseline.close()

        ww = _build(n=1_500, transport="threaded", ranged_reads=True,
                    fetch_pipeline_depth=2, prefetch_lookahead=1)
        try:
            for server in ww.query_servers:
                server.clear_cache()
            chunk_ids = [
                key[len("/chunks/"):]
                for key in ww.metastore.list_prefix("/chunks/")
            ]
            server = ww.query_servers[0]
            issued = server.prefetch_prefixes(chunk_ids)
            assert issued == len(chunk_ids) > 0
            deadline = time.time() + 5.0
            while time.time() < deadline:
                with server._prefetch_lock:
                    if all(c.done() for c in server._prefetch_inflight.values()):
                        break
                time.sleep(0.005)
            served = ww.dfs.total_bytes_served
            for chunk_id in chunk_ids:
                server.prefetch_prefix(chunk_id)
            assert server.prefetch_hits_total == len(chunk_ids)
            # Consuming landed prefetches moves no further bytes.
            assert ww.dfs.total_bytes_served == served
            got = _strip_cache_counts(_observe(ww, cold=False, passes=1))
            assert got == expected
        finally:
            ww.close()

    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_pipeline_depths_agree(self, depth):
        base = _build(n=2_000, ranged_reads=True, fetch_pipeline_depth=0,
                      prefetch_lookahead=0, transport="threaded")
        try:
            expected = _strip_cache_counts(_observe(base, passes=1))
        finally:
            base.close()
        ww = _build(n=2_000, ranged_reads=True, fetch_pipeline_depth=depth,
                    prefetch_lookahead=0, transport="threaded")
        try:
            got = _strip_cache_counts(_observe(ww, passes=1))
            assert got == expected
        finally:
            ww.close()


class TestChaosWithRangedReads:
    """The chaos harness's full fault palette (crashes, bit-flips, RPC
    weather) with the ranged read path, pipeline and prefetcher all on."""

    @staticmethod
    def _config():
        return small_config(
            n_nodes=5,
            rebalance_check_every=500,
            ranged_reads=True,
            fetch_pipeline_depth=2,
            prefetch_lookahead=1,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_chaos_inline(self, seed):
        report = run_chaos(
            seed=seed, records=1_200, steps=6, events=5, config=self._config()
        )
        assert report.ok, report.problems

    @pytest.mark.parametrize("seed", range(3))
    def test_chaos_threaded(self, seed):
        report = run_chaos(
            seed=seed,
            records=1_200,
            steps=6,
            events=5,
            transport="threaded",
            config=self._config(),
        )
        assert report.ok, report.problems
