"""Tests for metadata-store journaling and the query explain facility."""

import random

import pytest

from repro import Waterwheel, small_config
from repro.metastore import MetadataStore


class TestJournal:
    def test_recover_replays_mutations(self, tmp_path):
        path = str(tmp_path / "meta.journal")
        store = MetadataStore(journal_path=path)
        store.put("/a", {"x": 1})
        store.put("/b", [1, 2, 3])
        store.put("/a", {"x": 2})
        store.delete("/b")
        store.close()

        recovered = MetadataStore.recover(path, continue_journaling=False)
        assert recovered.get("/a") == {"x": 2}
        assert not recovered.exists("/b")
        assert recovered.get_entry("/a").version == 2

    def test_recover_continues_journaling(self, tmp_path):
        path = str(tmp_path / "meta.journal")
        store = MetadataStore(journal_path=path)
        store.put("/a", 1)
        store.close()
        second = MetadataStore.recover(path)
        second.put("/c", 3)
        second.close()
        third = MetadataStore.recover(path, continue_journaling=False)
        assert third.get("/a") == 1
        assert third.get("/c") == 3

    def test_recover_missing_file_yields_empty(self, tmp_path):
        store = MetadataStore.recover(
            str(tmp_path / "nothing.journal"), continue_journaling=False
        )
        assert len(store) == 0

    def test_corrupt_journal_raises(self, tmp_path):
        path = tmp_path / "bad.journal"
        path.write_text('{"op":"put","key":"/a","value":1}\ngarbage\n')
        with pytest.raises(ValueError, match="bad.journal:2"):
            MetadataStore.recover(str(path), continue_journaling=False)

    def test_unjournaled_store_never_writes(self, tmp_path):
        store = MetadataStore()
        store.put("/a", 1)
        store.close()  # no-op
        assert list(tmp_path.iterdir()) == []

    def test_full_system_metadata_survives_restart(self, tmp_path):
        path = str(tmp_path / "system.journal")
        ww = Waterwheel(small_config(metastore_journal=path))
        rng = random.Random(1)
        for i in range(2000):
            ww.insert_record(rng.randrange(0, 10_000), i * 0.01, size=32)
        ww.flush_all()
        chunk_keys = ww.metastore.list_prefix("/chunks/")
        offsets = ww.metastore.items_prefix("/indexing/")
        ww.metastore.close()

        recovered = MetadataStore.recover(path, continue_journaling=False)
        assert recovered.list_prefix("/chunks/") == chunk_keys
        assert recovered.items_prefix("/indexing/") == offsets


class TestExplain:
    def _system(self):
        ww = Waterwheel(small_config())
        rng = random.Random(2)
        for i in range(3000):
            ww.insert_record(rng.randrange(0, 10_000), i * 0.01, payload=i, size=32)
        return ww

    def test_plan_matches_execution_targets(self):
        ww = self._system()
        plan = ww.explain(1000, 6000, 5.0, 25.0)
        res = ww.query(1000, 6000, 5.0, 25.0)
        assert plan["subquery_count"] == res.subquery_count
        assert plan["chunks"]  # historical regions involved
        assert plan["fresh"]  # and live trees

    def test_plan_metadata_fields(self):
        ww = self._system()
        plan = ww.explain(0, 10_000, 0.0, 30.0)
        for chunk in plan["chunks"]:
            assert chunk["n_tuples"] > 0
            assert chunk["bytes"] > 0
            assert chunk["replica_nodes"]

    def test_plan_prunes_by_key_and_time(self):
        ww = self._system()
        everything = ww.explain(0, 10_000, 0.0, 30.0)
        narrow = ww.explain(0, 200, 0.0, 2.0)
        assert len(narrow["chunks"]) < len(everything["chunks"])

    def test_render_plan(self):
        ww = self._system()
        plan = ww.explain(0, 500, 0.0, 10.0)
        text = ww.coordinator.render_plan(plan)
        assert "Query keys [0, 500]" in text
        assert "chunk subquery" in text

    def test_explain_has_no_side_effects(self):
        ww = self._system()
        executed_before = ww.coordinator.queries_executed
        ww.explain(0, 10_000, 0.0, 30.0)
        assert ww.coordinator.queries_executed == executed_before
        assert all(qs.subqueries_executed == 0 for qs in ww.query_servers)
