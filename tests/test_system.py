"""End-to-end tests of the Waterwheel facade: correctness, adaptivity,
fault tolerance."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataTuple, Waterwheel, small_config
from repro.core.model import KeyInterval, Query, TimeInterval, brute_force_query


def stream(n, key_hi=10_000, seed=1, dt=0.01, key_fn=None):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        key = key_fn(rng) if key_fn else rng.randrange(0, key_hi)
        out.append(DataTuple(key, i * dt, payload=i, size=32))
    return out


def reference(data, key_lo, key_hi, t_lo, t_hi):
    q = Query(KeyInterval.closed(key_lo, key_hi), TimeInterval(t_lo, t_hi))
    return sorted(t.payload for t in brute_force_query(data, q))


class TestEndToEnd:
    def test_query_spanning_chunks_and_fresh_data(self):
        ww = Waterwheel(small_config())
        data = stream(5000)
        ww.insert_many(data)
        assert ww.chunk_count > 0
        assert ww.in_memory_tuples > 0
        res = ww.query(1000, 4000, 10.0, 40.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 1000, 4000, 10.0, 40.0
        )
        assert res.latency > 0
        assert res.subquery_count > 1

    def test_fresh_only_query(self):
        ww = Waterwheel(small_config())
        data = stream(100)
        ww.insert_many(data)
        assert ww.chunk_count == 0  # nothing flushed yet
        res = ww.query(0, 10_000, 0.0, 10.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 0, 10_000, 0.0, 10.0
        )

    def test_historical_only_query(self):
        ww = Waterwheel(small_config())
        data = stream(3000)
        ww.insert_many(data)
        ww.flush_all()
        assert ww.in_memory_tuples == 0
        res = ww.query(0, 10_000, 5.0, 15.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 0, 10_000, 5.0, 15.0
        )

    def test_empty_result(self):
        ww = Waterwheel(small_config())
        ww.insert_many(stream(500))
        res = ww.query(0, 10_000, 1e6, 2e6)
        assert len(res) == 0

    def test_predicate_pushdown(self):
        ww = Waterwheel(small_config())
        ww.insert_many(stream(2000))
        res = ww.query(0, 10_000, 0.0, 20.0, predicate=lambda t: t.payload % 5 == 0)
        assert res.tuples
        assert all(t.payload % 5 == 0 for t in res.tuples)

    def test_repeated_queries_consistent(self):
        ww = Waterwheel(small_config())
        data = stream(3000)
        ww.insert_many(data)
        first = ww.query(500, 6000, 0.0, 25.0)
        second = ww.query(500, 6000, 0.0, 25.0)
        assert sorted(t.payload for t in first.tuples) == sorted(
            t.payload for t in second.tuples
        )

    def test_insert_record_convenience(self):
        ww = Waterwheel(small_config())
        ww.insert_record(key=5, ts=1.0, payload="x")
        res = ww.query(5, 5, 0.0, 2.0)
        assert [t.payload for t in res.tuples] == ["x"]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_property_random_streams_and_queries(self, seed):
        rng = random.Random(seed)
        ww = Waterwheel(small_config(seed=seed % 1000 + 1))
        data = stream(rng.randrange(200, 1500), seed=seed)
        ww.insert_many(data)
        if rng.random() < 0.5:
            ww.flush_all()
        for _ in range(3):
            k1, k2 = sorted((rng.randrange(0, 10_000), rng.randrange(0, 10_000)))
            t1, t2 = sorted((rng.uniform(0, 15), rng.uniform(0, 15)))
            res = ww.query(k1, k2, t1, t2)
            assert sorted(t.payload for t in res.tuples) == reference(
                data, k1, k2, t1, t2
            )


class TestOutOfOrderArrival:
    def test_late_tuples_visible_within_delta(self):
        cfg = small_config(late_delta=5.0)
        ww = Waterwheel(cfg)
        for i in range(100):
            ww.insert_record(key=i, ts=100.0 + i * 0.01)
        # A tuple 3 seconds late (within delta).
        ww.insert_record(key=5000, ts=98.0, payload="late")
        res = ww.query(5000, 5000, 97.0, 99.0)
        assert [t.payload for t in res.tuples] == ["late"]

    def test_out_of_order_stream_correct(self):
        ww = Waterwheel(small_config())
        rng = random.Random(3)
        data = []
        for i in range(2000):
            # Timestamps mostly increasing with +-1s jitter.
            ts = i * 0.01 + rng.uniform(-1.0, 1.0)
            data.append(DataTuple(rng.randrange(0, 10_000), max(0.0, ts), payload=i, size=32))
        ww.insert_many(data)
        res = ww.query(0, 10_000, 5.0, 12.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 0, 10_000, 5.0, 12.0
        )


class TestAdaptivePartitioning:
    def test_rebalance_fires_under_skew(self):
        cfg = small_config(n_nodes=4)
        ww = Waterwheel(cfg)
        # Hotspot: 90% of keys in the first 5% of the domain.
        def hot(rng):
            if rng.random() < 0.9:
                return rng.randrange(0, 500)
            return rng.randrange(0, 10_000)

        ww.insert_many(stream(25_000, key_fn=hot))
        assert ww.balancer.rebalance_count >= 1
        deviation = ww.balancer.current_deviation()
        assert deviation < 1.0

    def test_queries_correct_across_rebalance(self):
        cfg = small_config(n_nodes=4)
        ww = Waterwheel(cfg)

        def hot(rng):
            return rng.randrange(0, 300) if rng.random() < 0.8 else rng.randrange(0, 10_000)

        data = stream(25_000, key_fn=hot)
        ww.insert_many(data)
        assert ww.balancer.rebalance_count >= 1
        res = ww.query(0, 600, 100.0, 200.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 0, 600, 100.0, 200.0
        )

    def test_disabled_balancer_never_rebalances(self):
        ww = Waterwheel(small_config(n_nodes=4), adaptive_partitioning=False)

        def hot(rng):
            return rng.randrange(0, 100)

        ww.insert_many(stream(15_000, key_fn=hot))
        assert ww.balancer.rebalance_count == 0


class TestFaultTolerance:
    def test_indexing_server_recovery_no_data_loss(self):
        ww = Waterwheel(small_config())
        data = stream(3000)
        ww.insert_many(data)
        victim = 0
        ww.kill_indexing_server(victim)
        replayed = ww.recover_indexing_server(victim)
        assert replayed > 0
        res = ww.query(0, 10_000, 0.0, 30.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 0, 10_000, 0.0, 30.0
        )

    def test_query_server_failure_transparent(self):
        ww = Waterwheel(small_config())
        data = stream(4000)
        ww.insert_many(data)
        ww.flush_all()
        for qs in range(len(ww.query_servers) - 1):
            ww.kill_query_server(qs)
        res = ww.query(0, 10_000, 0.0, 40.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 0, 10_000, 0.0, 40.0
        )

    def test_coordinator_failover_rebuilds_catalog(self):
        ww = Waterwheel(small_config())
        data = stream(4000)
        ww.insert_many(data)
        before = ww.coordinator.catalog_size
        assert before > 0
        ww.crash_coordinator()
        assert ww.coordinator.catalog_size == before
        res = ww.query(0, 10_000, 0.0, 40.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 0, 10_000, 0.0, 40.0
        )

    def test_new_chunks_visible_after_coordinator_failover(self):
        ww = Waterwheel(small_config())
        ww.insert_many(stream(1000))
        ww.crash_coordinator()
        more = stream(2000, seed=9, dt=0.01)
        shifted = [DataTuple(t.key, t.ts + 100.0, t.payload, t.size) for t in more]
        ww.insert_many(shifted)
        ww.flush_all()
        res = ww.query(0, 10_000, 100.0, 110.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            shifted, 0, 10_000, 100.0, 110.0
        )


class TestMetrics:
    def test_query_metrics_populated(self):
        ww = Waterwheel(small_config())
        ww.insert_many(stream(4000))
        ww.flush_all()
        res = ww.query(0, 10_000, 0.0, 40.0)
        assert res.bytes_read > 0
        assert res.leaves_read > 0
        assert res.latency > 0

    def test_chunk_count_and_tuples_tracked(self):
        ww = Waterwheel(small_config())
        ww.insert_many(stream(3000))
        assert ww.tuples_inserted == 3000
        total = ww.in_memory_tuples + sum(
            ww.metastore.get(f"/chunks/{cid}")["n_tuples"]
            for cid in ww.dfs.chunk_ids()
        )
        assert total == 3000


class TestBulkLoad:
    def test_bulk_loaded_data_queryable(self):
        ww = Waterwheel(small_config())
        data = stream(5000, seed=41)
        chunk_ids = ww.bulk_load(data)
        assert chunk_ids
        assert ww.in_memory_tuples == 0  # straight to chunks
        res = ww.query(1000, 6000, 10.0, 40.0)
        assert sorted(t.payload for t in res.tuples) == reference(
            data, 1000, 6000, 10.0, 40.0
        )

    def test_bulk_load_then_live_stream(self):
        ww = Waterwheel(small_config())
        historical = stream(3000, seed=42)
        ww.bulk_load(historical)
        live = [
            DataTuple(t.key, t.ts + 100.0, t.payload, t.size)
            for t in stream(1000, seed=43)
        ]
        ww.insert_many(live)
        res = ww.query(0, 10_000, 0.0, 200.0)
        assert len(res) == 4000

    def test_bulk_load_regions_time_bounded(self):
        ww = Waterwheel(small_config())
        ww.bulk_load(stream(4000, seed=44))
        # Regions partition time per server: a narrow window query touches
        # a small fraction of the chunks.
        narrow = ww.query(0, 10_000, 3.0, 4.0)
        assert narrow.subquery_count < ww.chunk_count
        assert sorted(t.payload for t in narrow.tuples) == reference(
            stream(4000, seed=44), 0, 10_000, 3.0, 4.0
        )

    def test_bulk_load_passes_fsck(self):
        from repro.core.verify import verify_system

        ww = Waterwheel(small_config())
        ww.bulk_load(stream(3000, seed=45))
        report = verify_system(ww)
        # The durable log is empty (bulk load bypasses it); region and
        # catalog audits must still hold.
        non_conservation = [
            p for p in report.problems if "conservation" not in p
        ]
        assert not non_conservation, non_conservation

    def test_bulk_load_empty(self):
        ww = Waterwheel(small_config())
        assert ww.bulk_load([]) == []
