"""Tests for the durable log (replayable input streams)."""

import pytest

from repro.messaging import DurableLog


@pytest.fixture
def log():
    log = DurableLog()
    log.create_topic("tuples", partitions=3)
    return log


class TestTopics:
    def test_create_duplicate_rejected(self, log):
        with pytest.raises(ValueError):
            log.create_topic("tuples", 1)

    def test_zero_partitions_rejected(self, log):
        with pytest.raises(ValueError):
            log.create_topic("other", 0)

    def test_unknown_topic(self, log):
        with pytest.raises(KeyError):
            log.append("nope", 0, "x")

    def test_unknown_partition(self, log):
        with pytest.raises(KeyError):
            log.append("tuples", 99, "x")

    def test_listing(self, log):
        assert log.topics() == ["tuples"]
        assert log.partitions("tuples") == [0, 1, 2]


class TestAppendReplay:
    def test_offsets_monotonic(self, log):
        assert log.append("tuples", 0, "a") == 0
        assert log.append("tuples", 0, "b") == 1
        assert log.append("tuples", 1, "c") == 0  # independent per partition

    def test_latest_offset(self, log):
        assert log.latest_offset("tuples", 0) == 0
        log.append("tuples", 0, "a")
        assert log.latest_offset("tuples", 0) == 1

    def test_replay_from_zero(self, log):
        for item in "abc":
            log.append("tuples", 2, item)
        assert log.replay("tuples", 2) == [(0, "a"), (1, "b"), (2, "c")]

    def test_replay_from_offset(self, log):
        for item in "abcde":
            log.append("tuples", 0, item)
        assert log.replay("tuples", 0, from_offset=3) == [(3, "d"), (4, "e")]

    def test_replay_past_end_is_empty(self, log):
        log.append("tuples", 0, "a")
        assert log.replay("tuples", 0, from_offset=5) == []

    def test_negative_offset_rejected(self, log):
        with pytest.raises(ValueError):
            log.replay("tuples", 0, from_offset=-1)

    def test_replay_is_deterministic(self, log):
        for i in range(100):
            log.append("tuples", 1, i)
        assert log.replay("tuples", 1) == log.replay("tuples", 1)
