"""Observability subsystem: metrics registry, histograms, trace spans."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Waterwheel, obs, small_config
from repro.obs import metrics, tracing
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from conftest import make_tuples


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with observability off and zeroed."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# --- histogram percentile math ------------------------------------------------


class TestHistogram:
    def test_single_sample_is_exact(self):
        h = Histogram("h")
        h.observe(0.0371)
        for p in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert h.percentile(p) == 0.0371

    def test_empty_histogram_has_no_percentiles(self):
        h = Histogram("h")
        assert h.percentile(0.5) is None
        assert h.count == 0
        assert h.mean == 0.0

    def test_invalid_p_rejected(self):
        h = Histogram("h")
        h.observe(1.0)
        for bad in (0.0, -0.1, 1.01):
            with pytest.raises(ValueError):
                h.percentile(bad)

    def test_exact_at_bucket_bounds(self):
        # Values sitting exactly on bucket upper bounds are reported exactly:
        # with scale=1, the bounds are 1, 2, 4, 8, ...
        h = Histogram("h", scale=1.0, unit="x")
        for v in (1.0, 2.0, 4.0, 8.0):
            h.observe(v)
        assert h.percentile(0.25) == 1.0
        assert h.percentile(0.50) == 2.0
        assert h.percentile(0.75) == 4.0
        assert h.percentile(1.00) == 8.0

    def test_max_clamp(self):
        # 1.5 lands in the (1, 2] bucket whose bound is 2; the observed max
        # clamps the report back to the true value.
        h = Histogram("h", scale=1.0)
        h.observe(1.5)
        assert h.percentile(0.99) == 1.5

    def test_tiny_values_fall_in_bucket_zero(self):
        h = Histogram("h", scale=1e-6)
        h.observe(1e-9)
        h.observe(0.0)
        assert h.percentile(1.0) == 1e-9
        assert h.min == 0.0

    def test_stats_track_sum_min_max(self):
        h = Histogram("h")
        for v in (0.5, 1.5, 2.5):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(4.5)
        assert h.mean == pytest.approx(1.5)
        assert h.min == 0.5
        assert h.max == 2.5

    def test_bucket_index_covers_range_without_overflow(self):
        h = Histogram("h", scale=1e-6)
        h.observe(1e12)  # ~2**60 bucket units: inside the 64-bucket range
        assert h.percentile(1.0) == 1e12

    def test_as_dict_shape(self):
        h = Histogram("h", unit="bytes")
        h.observe(100.0)
        d = h.as_dict()
        assert d["type"] == "histogram"
        assert d["unit"] == "bytes"
        assert d["count"] == 1
        assert d["p50"] == d["p95"] == d["p99"] == 100.0

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-9, max_value=1e12,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=60,
        ),
        p=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_percentile_bounds_and_coverage(self, samples, p):
        h = Histogram("h")
        for s in samples:
            h.observe(s)
        pct = h.percentile(p)
        # Any percentile lies within the observed value range ...
        assert min(samples) <= pct <= max(samples)
        # ... and is a genuine upper bound on the p-quantile: at least
        # ceil(p * n) samples fall at or below it (1e-9 relative tolerance
        # for float rounding at bucket boundaries).
        rank = math.ceil(p * len(samples))
        covered = sum(1 for s in samples if s <= pct * (1 + 1e-9))
        assert covered >= rank

    @settings(max_examples=100, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-9, max_value=1e12,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_percentiles_monotonic_in_p(self, samples):
        h = Histogram("h")
        for s in samples:
            h.observe(s)
        ps = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        values = [h.percentile(p) for p in ps]
        assert values == sorted(values)


# --- registry -----------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_labels_are_canonicalized_sorted(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x", server=1, node=2)
        c2 = reg.counter("x", node=2, server=1)
        assert c1 is c2
        assert c1.name == "x{node=2,server=1}"
        assert reg.counter("x", server=3) is not c1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("dual")
        with pytest.raises(TypeError):
            reg.histogram("dual")

    def test_reset_zeroes_in_place(self):
        # Cached handles must survive reset: components resolve instruments
        # once at construction and never re-fetch them.
        reg = MetricsRegistry()
        c = reg.counter("c")
        h = reg.histogram("h")
        c.inc(5)
        h.observe(1.0)
        reg.reset()
        assert c is reg.counter("c")
        assert c.value == 0
        assert h.count == 0
        c.inc()
        assert reg.get("c").value == 1

    def test_snapshot_skips_zero_instruments(self):
        reg = MetricsRegistry()
        reg.counter("idle")
        reg.histogram("quiet")
        reg.counter("busy").inc()
        assert set(reg.snapshot()) == {"busy"}
        assert set(reg.snapshot(include_zero=True)) == {"idle", "quiet", "busy"}

    def test_gauge_last_value_wins(self):
        g = Gauge("g")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_counter_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42


# --- tracing ------------------------------------------------------------------


class TestTracing:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing.is_enabled()
        cm1 = tracing.span("a")
        cm2 = tracing.span("b", attr=1)
        assert cm1 is cm2  # the shared _NULL: no allocation when off
        with cm1 as sp:
            assert sp is None
        assert tracing.last_trace() is None

    def test_nesting_and_ordering(self):
        tracing.set_enabled(True)
        with tracing.span("root") as root:
            with tracing.span("first"):
                with tracing.span("inner"):
                    pass
            with tracing.span("second"):
                pass
        assert [c.name for c in root.children] == ["first", "second"]
        assert [c.name for c in root.child("first").children] == ["inner"]
        assert [s.name for s in root.walk()] == [
            "root", "first", "inner", "second",
        ]
        # Children's wall time nests inside the parent's.
        for child in root.children:
            assert child.start >= root.start
            assert child.end <= root.end
            assert child.duration <= root.duration

    def test_last_trace_is_completed_root(self):
        tracing.set_enabled(True)
        with tracing.span("q1"):
            assert tracing.current().name == "q1"
        with tracing.span("q2"):
            pass
        assert tracing.last_trace().name == "q2"
        tracing.clear()
        assert tracing.last_trace() is None

    def test_attrs_and_set_attr(self):
        tracing.set_enabled(True)
        with tracing.span("s", fixed=1) as sp:
            tracing.set_attr("live", 2)
            sp.set_attr("direct", 3)
        assert sp.attrs == {"fixed": 1, "live": 2, "direct": 3}

    def test_stage_coverage(self):
        root = tracing.Span("root")
        root.start, root.end = 0.0, 1.0
        a = tracing.Span("a")
        a.start, a.end = 0.0, 0.6
        b = tracing.Span("b")
        b.start, b.end = 0.6, 0.9
        root.children = [a, b]
        assert tracing.stage_coverage(root) == pytest.approx(0.9)

    def test_render_and_as_dict(self):
        tracing.set_enabled(True)
        with tracing.span("query", tuples=7):
            with tracing.span("stage"):
                pass
        root = tracing.last_trace()
        text = root.render()
        assert "query" in text and "stage" in text and "tuples=7" in text
        d = root.as_dict()
        assert d["name"] == "query"
        assert d["children"][0]["name"] == "stage"


# --- disabled no-op + end-to-end facade ---------------------------------------


class TestDisabledNoOp:
    def test_disabled_system_records_nothing(self):
        ww = Waterwheel(small_config())
        for t in make_tuples(300):
            ww.insert(t)
        ww.query(0, 10_000, 0.0, 10.0)
        assert metrics.registry().snapshot() == {}
        assert ww.last_trace() is None

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert metrics.is_enabled() and tracing.is_enabled()
        obs.disable()
        assert not metrics.is_enabled() and not tracing.is_enabled()
        obs.enable(metrics_on=True, tracing_on=False)
        assert metrics.is_enabled() and not tracing.is_enabled()


class TestWaterwheelObservability:
    def _run_workload(self, n=2_000, transport=None):
        ww = Waterwheel(small_config(chunk_bytes=16 * 1024), transport=transport)
        data = make_tuples(n)
        ww.insert_many(data)
        now = max(t.ts for t in data)
        res = ww.query(1_000, 8_000, 0.0, now)
        return ww, res

    def test_metrics_cover_ingest_and_query(self):
        obs.enable()
        ww, res = self._run_workload()
        snap = ww.metrics()
        assert snap["ingest.inserted"]["value"] == 2_000
        assert snap["coordinator.queries"]["value"] == 1
        assert snap["ingest.flushes"]["value"] == ww.chunk_count > 0
        assert snap["query.latency_wall"]["count"] == 1
        # Per-stage wall histograms decompose the query latency.
        for stage in ("decompose", "fresh", "dispatch", "merge"):
            assert snap[f"query.stage.{stage}_wall"]["count"] == 1

    def test_btree_insert_counter_exact_after_flush(self):
        obs.enable()
        ww, res = self._run_workload()
        snap = ww.metrics()
        # The batched counter syncs at every flush; remaining lag is each
        # tree's in-memory tail, bounded by the 1-in-64 sample stride per
        # indexing server.
        counted = snap["btree.inserts"]["value"]
        assert counted <= 2_000
        assert counted >= 2_000 - 64 * len(ww.indexing_servers)

    def test_trace_tree_shape_and_coverage(self):
        obs.enable()
        ww, res = self._run_workload()
        root = ww.last_trace()
        assert root.name == "query"
        stages = [c.name for c in root.children]
        assert stages == ["decompose", "fresh", "dispatch", "merge"]
        # Acceptance gauge: the stage spans explain the query latency --
        # their durations sum to within 10% of the root's wall time.
        assert tracing.stage_coverage(root) >= 0.9
        assert root.attrs["tuples"] == len(res)
        assert root.attrs["query_id"] == 1

    def test_trace_subquery_spans_carry_cache_attribution(self):
        # Pinned to the inline plane: under a threaded transport subquery
        # spans run on worker threads and form their own trace trees.
        obs.enable()
        ww, res = self._run_workload(transport="inline")
        root = ww.last_trace()
        dispatch = root.child("dispatch")
        assert dispatch is not None
        subqueries = [c for c in dispatch.children if c.name == "subquery"]
        assert subqueries, "chunked workload must produce chunk subqueries"
        for sq in subqueries:
            assert {"chunk", "server", "cache_hits", "cache_misses"} <= set(
                sq.attrs
            )
            assert [c.name for c in sq.children][:1] == ["chunk_prefix"]

    def test_registry_is_process_wide_across_instances(self):
        obs.enable()
        cfg = small_config()
        data = make_tuples(200)
        ww1 = Waterwheel(cfg)
        ww2 = Waterwheel(small_config())
        ww1.insert_many(data)
        ww2.insert_many(data)
        snap = ww1.metrics()
        assert snap["ingest.inserted"]["value"] == 400  # aggregated
