"""Tests for the bulk-loading B+ tree and the insertion-time breakdown."""

from repro.btree import BulkLoadedBTree, measure_insertion_breakdown
from repro.core.model import DataTuple

from conftest import make_tuples


class TestBulkLoadedBTree:
    def test_builds_from_unsorted_input(self, small_batch):
        tree = BulkLoadedBTree(small_batch, fanout=8, leaf_capacity=8)
        assert len(tree) == len(small_batch)
        keys = [k for leaf in tree.leaves() for k in leaf.keys]
        assert keys == sorted(keys)

    def test_query_matches_reference(self, small_batch):
        tree = BulkLoadedBTree(small_batch, fanout=8, leaf_capacity=8)
        got, _stats = tree.range_query(100, 900, 0.0, 0.3)
        expected = [
            t for t in small_batch if 100 <= t.key <= 900 and t.ts <= 0.3
        ]
        assert sorted(t.payload for t in got) == sorted(t.payload for t in expected)

    def test_empty_input(self):
        tree = BulkLoadedBTree([])
        assert len(tree) == 0
        got, _stats = tree.range_query(0, 10)
        assert got == []

    def test_presorted_skips_sort(self, small_batch):
        data = sorted(small_batch, key=lambda t: t.key)
        tree = BulkLoadedBTree(data, presorted=True)
        assert len(tree) == len(data)
        keys = [k for leaf in tree.leaves() for k in leaf.keys]
        assert keys == sorted(keys)

    def test_records_sort_and_build_time(self, medium_batch):
        tree = BulkLoadedBTree(medium_batch)
        assert tree.stats.sort_seconds > 0.0
        assert tree.stats.build_seconds > 0.0

    def test_single_leaf_case(self):
        tree = BulkLoadedBTree([DataTuple(5, 1.0, "a")], leaf_capacity=64)
        assert tree.height == 1
        assert [t.payload for t in tree.all_tuples()] == ["a"]

    def test_sketches_built_when_requested(self):
        data = [DataTuple(i, float(i), payload=i) for i in range(200)]
        tree = BulkLoadedBTree(data, leaf_capacity=16, sketch_granularity=10.0)
        _got, stats = tree.range_query(0, 199, 1e6, 1e6 + 1)
        assert stats.leaves_skipped > 0


class TestBreakdown:
    def test_breakdown_accounts_components(self, medium_batch):
        rows = measure_insertion_breakdown(medium_batch, 0, 10_000, fanout=16, leaf_capacity=16)
        by_name = {row.tree: row for row in rows}
        assert set(by_name) == {"concurrent", "bulk", "template"}
        assert by_name["concurrent"].node_split > 0.0
        assert by_name["concurrent"].pure_insert > 0.0
        assert by_name["bulk"].sort > 0.0
        assert by_name["bulk"].build > 0.0
        assert by_name["template"].pure_insert > 0.0
        # Template maintenance should be a small share of its total time --
        # the paper's core claim in Figure 7b.
        template = by_name["template"]
        assert template.template_update <= template.total * 0.5

    def test_breakdown_totals_positive(self, small_batch):
        rows = measure_insertion_breakdown(small_batch, 0, 10_000)
        assert all(row.total > 0.0 for row in rows)
