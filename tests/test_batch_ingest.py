"""Batched ingest fast path: equivalence with the looped one-tuple path.

``Waterwheel.insert_batch`` must be indistinguishable from calling
``insert`` per tuple -- same routing and durable-log contents, same
late-buffer classification, same flush points and checkpointed offsets,
same chunks and query results -- for any stream, including severely-late
tuples and batches that straddle flush and balance-check boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import small_config
from repro.core.model import DataTuple
from repro.core.system import Waterwheel
from repro.storage import ChunkReader

_TOPIC = "tuples"


def _build_stream(steps):
    """Materialize a (key, ts_delta, late_by) step list into tuples.

    ``late_by`` > 0 rewinds that tuple's timestamp below the running clock;
    values beyond 4 * late_delta (= 8.0 for small_config) make it severely
    late and exercise the late buffer.
    """
    tuples = []
    clock = 100.0
    for i, (key, delta, late_by) in enumerate(steps):
        clock += delta
        tuples.append(DataTuple(key, clock - late_by, payload=i))
    return tuples


def _ingest_loop(stream):
    ww = Waterwheel(small_config())
    ww.insert_many(stream)
    return ww


def _ingest_batched(stream, batch_size):
    ww = Waterwheel(small_config())
    for i in range(0, len(stream), batch_size):
        ww.insert_batch(stream[i : i + batch_size])
    return ww


def _chunk_tuples(ww, chunk_id):
    reader = ChunkReader(ww.dfs.get_bytes(chunk_id))
    return sorted((t.key, t.ts, t.payload) for t in reader.all_tuples())


def _assert_equivalent(a, b):
    assert [s.flush_count for s in a.indexing_servers] == [
        s.flush_count for s in b.indexing_servers
    ]
    assert a.in_memory_tuples == b.in_memory_tuples
    assert a.tuples_inserted == b.tuples_inserted
    chunks_a = sorted(a.metastore.list_prefix("/chunks/"))
    chunks_b = sorted(b.metastore.list_prefix("/chunks/"))
    assert chunks_a == chunks_b
    for key in chunks_a:
        chunk_id = key[len("/chunks/") :]
        assert _chunk_tuples(a, chunk_id) == _chunk_tuples(b, chunk_id)
    # Durable-log contents and flush checkpoints drive recovery; both must
    # match record-for-record.
    for partition in range(len(a.indexing_servers)):
        recs_a = a.log._partition(_TOPIC, partition).records
        recs_b = b.log._partition(_TOPIC, partition).records
        assert [(t.key, t.ts, t.payload) for t in recs_a] == [
            (t.key, t.ts, t.payload) for t in recs_b
        ]
    assert [s._last_offset for s in a.indexing_servers] == [
        s._last_offset for s in b.indexing_servers
    ]
    cfg = a.config
    result_a = a.query(cfg.key_lo, cfg.key_hi - 1, float("-inf"), float("inf"))
    result_b = b.query(cfg.key_lo, cfg.key_hi - 1, float("-inf"), float("inf"))
    assert sorted((t.key, t.ts, t.payload) for t in result_a.tuples) == sorted(
        (t.key, t.ts, t.payload) for t in result_b.tuples
    )


step_strategy = st.tuples(
    st.integers(0, 9_999),  # key
    st.floats(0.0, 3.0, allow_nan=False),  # clock advance
    st.sampled_from([0.0, 0.0, 0.0, 1.0, 12.0, 50.0]),  # lateness
)


class TestBatchedLoopEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(step_strategy, min_size=1, max_size=300),
        st.integers(1, 64),
    )
    def test_property_batched_equals_looped(self, steps, batch_size):
        stream = _build_stream(steps)
        _assert_equivalent(_ingest_loop(stream), _ingest_batched(stream, batch_size))

    def test_flushes_and_late_buffer_deterministic(self):
        # Enough volume for several flushes per server plus severely-late
        # tuples sprinkled in (50 >> 4 * late_delta).
        steps = [
            (i * 37 % 10_000, 0.5, 50.0 if i % 19 == 0 else 0.0)
            for i in range(2_000)
        ]
        stream = _build_stream(steps)
        a = _ingest_loop(stream)
        b = _ingest_batched(stream, batch_size=128)
        assert sum(s.flush_count for s in a.indexing_servers) > 0
        assert sum(s._late_bytes for s in a.indexing_servers) > 0
        _assert_equivalent(a, b)

    def test_batch_size_one_equals_loop(self):
        steps = [(i * 91 % 10_000, 0.25, 0.0) for i in range(300)]
        stream = _build_stream(steps)
        _assert_equivalent(_ingest_loop(stream), _ingest_batched(stream, 1))

    def test_single_oversized_batch(self):
        # One batch spanning several flush and balance-check windows.
        steps = [(i * 53 % 10_000, 0.5, 0.0) for i in range(1_500)]
        stream = _build_stream(steps)
        a = _ingest_loop(stream)
        b = Waterwheel(small_config())
        b.insert_batch(stream)
        _assert_equivalent(a, b)

    def test_empty_batch_is_noop(self):
        ww = Waterwheel(small_config())
        assert ww.insert_batch([]) == []
        assert ww.tuples_inserted == 0

    def test_insert_batch_reports_flushed_chunk_ids(self):
        steps = [(i * 37 % 10_000, 0.5, 0.0) for i in range(1_200)]
        stream = _build_stream(steps)
        ww = Waterwheel(small_config())
        chunk_ids = []
        for i in range(0, len(stream), 200):
            chunk_ids.extend(ww.insert_batch(stream[i : i + 200]))
        registered = {
            key[len("/chunks/") :] for key in ww.metastore.list_prefix("/chunks/")
        }
        assert chunk_ids  # volume above guarantees at least one flush
        assert set(chunk_ids) == registered
