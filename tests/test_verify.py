"""Tests for the consistency checker (fsck)."""

import random

from repro import Waterwheel, small_config
from repro.core.verify import verify_system


def loaded_system(n=4000, seed=1):
    ww = Waterwheel(small_config())
    rng = random.Random(seed)
    for i in range(n):
        ww.insert_record(rng.randrange(0, 10_000), i * 0.01, payload=i, size=32)
    return ww


class TestHealthySystems:
    def test_clean_system_verifies(self):
        ww = loaded_system()
        report = verify_system(ww)
        assert report.ok, report.problems
        assert report.tuples_in_log == 4000
        assert report.tuples_in_chunks + report.tuples_in_memory == 4000
        assert report.chunks_checked == ww.chunk_count
        assert "OK" in report.summary()

    def test_verifies_after_flush_all(self):
        ww = loaded_system()
        ww.flush_all()
        report = verify_system(ww)
        assert report.ok, report.problems
        assert report.tuples_in_memory == 0
        assert report.tuples_in_chunks == 4000

    def test_verifies_after_recovery(self):
        ww = loaded_system()
        ww.kill_indexing_server(0)
        ww.recover_indexing_server(0)
        report = verify_system(ww)
        assert report.ok, report.problems

    def test_verifies_after_coordinator_failover(self):
        ww = loaded_system()
        ww.crash_coordinator()
        report = verify_system(ww)
        assert report.ok, report.problems

    def test_skips_conservation_when_log_truncated(self):
        ww = loaded_system()
        ww.compact_log()
        report = verify_system(ww)
        # Conservation can't be checked against a truncated log, but the
        # remaining audits still pass.
        assert report.ok, report.problems

    def test_verifies_with_secondary_indexes(self):
        from repro.secondary import AttributeSpec

        ww = Waterwheel(
            small_config(
                secondary_specs=(AttributeSpec("p", lambda p: p % 5),),
                chunk_bytes=4096,
            )
        )
        for i in range(2000):
            ww.insert_record(i % 10_000, i * 0.01, payload=i, size=32)
        ww.flush_all()
        report = verify_system(ww)
        assert report.ok, report.problems
        assert report.sidecars_checked == report.chunks_checked


class TestDetectsDamage:
    def test_detects_lost_in_memory_data(self):
        ww = loaded_system()
        # A dead server's in-memory tuples are gone until recovery; the log
        # retains them -> conservation holds only for alive servers, so the
        # checker skips it.  Drop log entries instead to force a mismatch.
        ww.indexing_servers[0]._tree.reset_leaves()  # simulate silent loss
        report = verify_system(ww)
        assert not report.ok
        assert any("conservation" in p for p in report.problems)

    def test_detects_corrupted_chunk(self):
        ww = loaded_system()
        ww.flush_all()
        chunk_id = next(c for c in ww.dfs.chunk_ids() if not c.endswith(".sidx"))
        blob = bytearray(ww.dfs.get_bytes(chunk_id))
        blob[len(blob) // 2] ^= 0xFF
        ww.dfs._blocks[chunk_id] = bytes(blob)
        report = verify_system(ww)
        assert not report.ok

    def test_detects_all_replicas_dead(self):
        ww = loaded_system()
        ww.flush_all()
        chunk_id = next(c for c in ww.dfs.chunk_ids() if not c.endswith(".sidx"))
        for node in ww.dfs.location(chunk_id).replicas:
            ww.cluster.kill(node)
        report = verify_system(ww)
        assert not report.ok
        assert any("replica" in p or "unavailable" in p for p in report.problems)

    def test_detects_lying_region_metadata(self):
        ww = loaded_system()
        ww.flush_all()
        key = ww.metastore.list_prefix("/chunks/")[0]
        info = dict(ww.metastore.get(key))
        info["key_hi"] = info["key_lo"] + 1  # claim a far narrower region
        ww.metastore._entries[key] = type(ww.metastore._entries[key])(
            info, ww.metastore._entries[key].version
        )  # bypass watch (metadata silently wrong, catalog unchanged)
        report = verify_system(ww)
        assert not report.ok
        assert any("key region" in p for p in report.problems)

    def test_detects_catalog_drift(self):
        ww = loaded_system()
        ww.flush_all()
        # Remove a region from the coordinator's R-tree behind its back.
        chunk_id, region = next(iter(ww.coordinator._catalog_regions.items()))
        ww.coordinator._catalog.delete(region, chunk_id)
        report = verify_system(ww)
        assert not report.ok
        assert any("catalog" in p for p in report.problems)
