"""Tests for key partitioning, frequency sampling and load math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import (
    FrequencySampler,
    KeyPartition,
    aggregate_histograms,
    load_deviation,
    partition_loads,
)


class TestKeyPartition:
    def test_uniform_covers_domain(self):
        p = KeyPartition.uniform(0, 1000, 4)
        intervals = p.intervals()
        assert intervals[0].lo == 0
        assert intervals[-1].hi == 1000
        for left, right in zip(intervals, intervals[1:]):
            assert left.hi == right.lo

    def test_server_for_consistent_with_intervals(self):
        p = KeyPartition.uniform(0, 1000, 7)
        for key in range(0, 1000, 13):
            server = p.server_for(key)
            assert key in p.interval(server)

    def test_single_server(self):
        p = KeyPartition.uniform(0, 100, 1)
        assert p.n_intervals == 1
        assert p.server_for(50) == 0

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            KeyPartition(0, 100, [50, 20])  # unsorted
        with pytest.raises(ValueError):
            KeyPartition(0, 100, [50, 50])  # duplicate
        with pytest.raises(ValueError):
            KeyPartition(0, 100, [0])  # on the edge
        with pytest.raises(ValueError):
            KeyPartition(100, 100, [])  # empty domain

    def test_from_frequencies_balances_skewed_load(self):
        # All traffic in the first 10% of the domain.
        histogram = [100.0] * 10 + [0.0] * 90
        p = KeyPartition.from_frequencies(0, 1000, 4, histogram)
        loads = partition_loads(p, histogram)
        assert load_deviation(loads) < 0.6  # far better than uniform
        uniform_loads = partition_loads(KeyPartition.uniform(0, 1000, 4), histogram)
        assert load_deviation(loads) < load_deviation(uniform_loads)

    def test_from_frequencies_uniform_traffic_stays_uniform(self):
        histogram = [10.0] * 100
        p = KeyPartition.from_frequencies(0, 1000, 5, histogram)
        widths = [len(iv) for iv in p.intervals()]
        assert max(widths) - min(widths) <= 2 * (1000 // 100)

    def test_from_frequencies_empty_histogram_falls_back(self):
        p = KeyPartition.from_frequencies(0, 1000, 4, [0.0] * 10)
        assert p == KeyPartition.uniform(0, 1000, 4)

    def test_from_frequencies_hot_bucket_still_yields_full_partition(self):
        # Regression: one bucket holding nearly all the mass absorbs
        # several cut targets; the owed cuts must carry forward to the
        # next distinct bucket edges instead of being silently dropped
        # (which left some servers owning empty key ranges).
        histogram = [1000.0] + [1.0] * 9
        p = KeyPartition.from_frequencies(0, 1000, 4, histogram)
        assert len(p.boundaries) == 3
        assert p.n_intervals == 4

    def test_from_frequencies_hot_bucket_cuts_land_on_next_edges(self):
        histogram = [1000.0] + [1.0] * 9
        p = KeyPartition.from_frequencies(0, 1000, 4, histogram)
        # First cut at the hot bucket's right edge, the carried-forward
        # cuts at the following bucket edges.
        assert p.boundaries == [100, 200, 300]

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(1.0, 1e6, allow_nan=False),
        st.integers(8, 64),
        st.integers(2, 8),
    )
    def test_property_hot_head_bucket_yields_full_partition(
        self, mass, n_buckets, n
    ):
        # All mass in the first bucket absorbs every cut target at once;
        # with n <= n_buckets there are enough distinct bucket edges for
        # the owed cuts, so exactly n - 1 boundaries must come out.
        if n > n_buckets:
            return
        histogram = [mass] + [0.0] * (n_buckets - 1)
        p = KeyPartition.from_frequencies(0, 1000 * n_buckets, n, histogram)
        assert len(p.boundaries) == n - 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=8, max_size=64),
        st.integers(1, 8),
    )
    def test_property_every_key_routed_to_valid_server(self, histogram, n):
        p = KeyPartition.from_frequencies(0, 10_000, n, histogram)
        for key in range(0, 10_000, 997):
            server = p.server_for(key)
            assert 0 <= server < p.n_intervals
            assert key in p.interval(server)


class TestFrequencySampler:
    def test_records_into_buckets(self):
        sampler = FrequencySampler(0, 100, n_buckets=10)
        sampler.record(5)
        sampler.record(95)
        hist = sampler.histogram()
        assert hist[0] == 1.0
        assert hist[9] == 1.0

    def test_out_of_domain_keys_clamped(self):
        sampler = FrequencySampler(0, 100, n_buckets=10)
        sampler.record(-5)
        sampler.record(200)
        hist = sampler.histogram()
        assert hist[0] == 1.0 and hist[9] == 1.0

    def test_rotation_ages_out_after_two_windows(self):
        sampler = FrequencySampler(0, 100, n_buckets=10)
        sampler.record(5)
        sampler.rotate()
        assert sampler.histogram()[0] == 1.0  # previous window still counts
        sampler.rotate()
        assert sampler.histogram()[0] == 0.0

    def test_weighted_samples(self):
        sampler = FrequencySampler(0, 100, n_buckets=10)
        sampler.record(5, weight=64.0)
        assert sampler.histogram()[0] == 64.0


class TestLoadMath:
    def test_aggregate_histograms(self):
        assert aggregate_histograms([[1, 2], [3, 4]]) == [4, 6]

    def test_aggregate_rejects_mismatched(self):
        with pytest.raises(ValueError):
            aggregate_histograms([[1], [1, 2]])

    def test_aggregate_empty(self):
        assert aggregate_histograms([]) == []

    def test_load_deviation_balanced(self):
        assert load_deviation([10, 10, 10]) == 0.0

    def test_load_deviation_skewed(self):
        assert load_deviation([30, 0, 0]) == pytest.approx(2.0)

    def test_load_deviation_empty(self):
        assert load_deviation([]) == 0.0

    def test_partition_loads_attributes_buckets(self):
        p = KeyPartition(0, 100, [50])
        loads = partition_loads(p, [10.0, 0.0, 0.0, 30.0])
        assert loads == [10.0, 30.0]
