"""Tests for the template-based B+ tree (skew detection, template update)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import TemplateBTree
from repro.core.model import DataTuple

from conftest import make_tuples


class TestBasicOperation:
    def test_insert_and_query(self, small_batch):
        tree = TemplateBTree(0, 10_000, n_leaves=32, fanout=8)
        for t in small_batch:
            tree.insert(t)
        got, _stats = tree.range_query(2000, 4000)
        expected = [t for t in small_batch if 2000 <= t.key <= 4000]
        assert sorted(t.payload for t in got) == sorted(t.payload for t in expected)

    def test_no_structure_change_without_skew(self):
        tree = TemplateBTree(
            0, 1000, n_leaves=16, fanout=8, skew_threshold=10.0, check_every=10
        )
        before = tree.separators
        rng = random.Random(1)
        for i in range(2000):
            tree.insert(DataTuple(rng.randrange(0, 1000), float(i)))
        assert tree.separators == before
        assert tree.stats.template_updates == 0

    def test_accepts_keys_outside_declared_interval(self):
        # After adaptive repartitioning an indexing server can receive keys
        # outside its original interval (Section III-D); routing clamps.
        tree = TemplateBTree(100, 200, n_leaves=8, fanout=4)
        tree.insert(DataTuple(5, 0.0, "low"))
        tree.insert(DataTuple(10_000, 1.0, "high"))
        assert [t.payload for t in tree.point_read(5)] == ["low"]
        assert [t.payload for t in tree.point_read(10_000)] == ["high"]

    def test_duplicate_keys(self):
        tree = TemplateBTree(0, 100, n_leaves=8, fanout=4)
        for i in range(30):
            tree.insert(DataTuple(42, float(i), payload=i))
        assert sorted(t.payload for t in tree.point_read(42)) == list(range(30))

    def test_time_and_key_bounds(self):
        tree = TemplateBTree(0, 1000, n_leaves=8, fanout=4)
        assert tree.time_bounds() is None
        assert tree.key_bounds() is None
        tree.insert(DataTuple(10, 5.0))
        tree.insert(DataTuple(900, 2.0))
        assert tree.time_bounds() == (2.0, 5.0)
        assert tree.key_bounds() == (10, 900)


class TestSkewnessAndTemplateUpdate:
    def test_skewness_zero_when_uniform(self):
        tree = TemplateBTree(0, 160, n_leaves=16, fanout=4)
        for k in range(160):
            tree.insert(DataTuple(k, float(k)))
        assert tree.skewness() < 0.2

    def test_skewness_high_when_hotspot(self):
        tree = TemplateBTree(
            0, 1600, n_leaves=16, fanout=4, skew_threshold=100.0
        )
        for i in range(320):
            tree.insert(DataTuple(5, float(i)))  # everything in one leaf
        assert tree.skewness() > 5.0

    def test_update_template_balances_leaves(self):
        tree = TemplateBTree(
            0, 100_000, n_leaves=16, fanout=4, skew_threshold=100.0
        )
        rng = random.Random(2)
        # Keys concentrated in a narrow hotspot of the interval.
        for i in range(1600):
            tree.insert(DataTuple(rng.randrange(0, 100), float(i), payload=i))
        assert tree.skewness() > 1.0
        tree.update_template()
        assert tree.skewness() < 0.5
        # Data survives the rebuild.
        assert len(tree) == 1600
        got, _stats = tree.range_query(0, 100_000)
        assert sorted(t.payload for t in got) == list(range(1600))

    def test_automatic_update_on_drift(self):
        tree = TemplateBTree(
            0,
            1000,
            n_leaves=16,
            fanout=4,
            skew_threshold=0.5,
            check_every=100,
        )
        rng = random.Random(3)
        for i in range(500):
            tree.insert(DataTuple(rng.randrange(0, 1000), float(i)))
        # Shift the distribution into a hotspot; detector should fire.
        for i in range(3000):
            tree.insert(DataTuple(rng.randrange(0, 50), float(i)))
        assert tree.stats.template_updates >= 1
        assert tree.skewness() < 1.5

    def test_update_returns_elapsed_seconds(self):
        tree = TemplateBTree(0, 1000, n_leaves=8, fanout=4)
        for i in range(100):
            tree.insert(DataTuple(i % 50, float(i)))
        elapsed = tree.update_template()
        assert elapsed >= 0.0

    def test_update_on_empty_tree(self):
        tree = TemplateBTree(0, 1000, n_leaves=8, fanout=4)
        tree.update_template()
        assert len(tree) == 0
        tree.insert(DataTuple(5, 1.0, "x"))
        assert [t.payload for t in tree.point_read(5)] == ["x"]

    def test_queries_correct_after_many_updates(self):
        tree = TemplateBTree(0, 10_000, n_leaves=16, fanout=4)
        rng = random.Random(4)
        data = []
        for i in range(2000):
            t = DataTuple(rng.randrange(0, 10_000), rng.uniform(0, 100), payload=i)
            tree.insert(t)
            data.append(t)
            if i % 500 == 499:
                tree.update_template()
        for _ in range(10):
            k = rng.randrange(0, 9000)
            got, _stats = tree.range_query(k, k + 1000)
            expected = [t for t in data if k <= t.key <= k + 1000]
            assert sorted(t.payload for t in got) == sorted(
                t.payload for t in expected
            )


class TestResetLeaves:
    def test_reset_retains_template(self):
        tree = TemplateBTree(0, 1000, n_leaves=16, fanout=4)
        rng = random.Random(5)
        for i in range(500):
            tree.insert(DataTuple(rng.randrange(0, 1000), float(i)))
        separators = tree.separators
        tree.reset_leaves()
        assert len(tree) == 0
        assert tree.separators == separators
        assert tree.all_tuples() == []
        # Tree remains usable after reset (the template recycle).
        tree.insert(DataTuple(500, 0.0, "fresh"))
        assert [t.payload for t in tree.point_read(500)] == ["fresh"]

    def test_reset_clears_sketches(self):
        tree = TemplateBTree(0, 100, n_leaves=4, fanout=4, sketch_granularity=1.0)
        tree.insert(DataTuple(50, 10.0))
        tree.reset_leaves()
        leaf = tree._leaf_for(50)
        assert not leaf.sketch.might_overlap(10.0, 10.0)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.floats(0, 100, allow_nan=False)),
            min_size=0,
            max_size=400,
        ),
        st.integers(0, 500),
        st.integers(0, 500),
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
    )
    def test_range_query_equals_reference(self, rows, k1, k2, ts1, ts2):
        k_lo, k_hi = min(k1, k2), max(k1, k2)
        t_lo, t_hi = min(ts1, ts2), max(ts1, ts2)
        tree = TemplateBTree(0, 500, n_leaves=8, fanout=4, check_every=50)
        data = [DataTuple(k, ts, payload=i) for i, (k, ts) in enumerate(rows)]
        for t in data:
            tree.insert(t)
        got, _stats = tree.range_query(k_lo, k_hi, t_lo, t_hi)
        expected = [
            t for t in data if k_lo <= t.key <= k_hi and t_lo <= t.ts <= t_hi
        ]
        assert sorted(t.payload for t in got) == sorted(t.payload for t in expected)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    def test_template_update_preserves_content_and_order(self, keys):
        tree = TemplateBTree(0, 1000, n_leaves=8, fanout=4)
        for i, k in enumerate(keys):
            tree.insert(DataTuple(k, float(i), payload=i))
        tree.update_template()
        flat = [k for leaf in tree.leaves() for k in leaf.keys]
        assert flat == sorted(keys)
        assert len(tree) == len(keys)
