"""Tests for workload persistence (JSONL/CSV save+load)."""

import pytest

from repro.core.model import DataTuple
from repro.workloads import (
    NetworkGenerator,
    load_csv,
    load_jsonl,
    load_sorted_check,
    save_csv,
    save_jsonl,
    uniform_records,
)


class TestJSONL:
    def test_roundtrip_with_payloads(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        data = [
            DataTuple(1, 0.5, {"a": [1, 2]}, 40),
            DataTuple(2, 1.5, "text", 50),
            DataTuple(3, 2.5, None, 36),
        ]
        assert save_jsonl(data, path) == 3
        back = list(load_jsonl(path))
        assert back == data

    def test_roundtrip_generated_workload(self, tmp_path):
        path = str(tmp_path / "u.jsonl")
        data = uniform_records(500, seed=3)
        save_jsonl(data, path)
        back = list(load_jsonl(path))
        assert [(t.key, t.ts, t.payload) for t in back] == [
            (t.key, t.ts, t.payload) for t in data
        ]

    def test_bad_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"key": 1, "ts": 0.0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(load_jsonl(str(path)))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"key": 1, "ts": 0.0}\n\n{"key": 2, "ts": 1.0}\n')
        assert len(list(load_jsonl(str(path)))) == 2


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "w.csv")
        data = uniform_records(200, seed=4)
        assert save_csv(data, path) == 200
        back = list(load_csv(path))
        assert [(t.key, t.ts, t.size) for t in back] == [
            (t.key, t.ts, t.size) for t in data
        ]

    def test_custom_column_names(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("src_ip,when\n100,0.5\n200,1.5\n")
        back = list(
            load_csv(str(path), key_column="src_ip", ts_column="when",
                     size_column=None, default_size=50)
        )
        assert [(t.key, t.ts, t.size) for t in back] == [
            (100, 0.5, 50), (200, 1.5, 50)
        ]

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="missing column"):
            list(load_csv(str(path)))

    def test_bad_value_raises_with_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("key,ts\n1,0.0\nfoo,1.0\n")
        with pytest.raises(ValueError, match="t.csv:3"):
            list(load_csv(str(path)))


class TestSortedCheck:
    def test_accepts_ordered(self):
        data = uniform_records(100)
        assert load_sorted_check(data) == data

    def test_accepts_bounded_disorder(self):
        data = [DataTuple(1, 1.0), DataTuple(2, 0.8), DataTuple(3, 2.0)]
        assert len(load_sorted_check(data, max_disorder=0.5)) == 3

    def test_rejects_excess_disorder(self):
        data = [DataTuple(1, 10.0), DataTuple(2, 1.0)]
        with pytest.raises(ValueError, match="disorder"):
            load_sorted_check(data, max_disorder=0.5)


class TestEndToEndViaFile(object):
    def test_network_workload_file_replay(self, tmp_path):
        from repro import Waterwheel, small_config

        gen = NetworkGenerator(seed=5)
        data = gen.records(1000)
        path = str(tmp_path / "net.csv")
        save_csv(data, path)
        key_lo, key_hi = gen.key_domain
        ww = Waterwheel(small_config(key_lo=key_lo, key_hi=key_hi, tuple_size=50))
        ww.insert_many(load_sorted_check(load_csv(path)))
        res = ww.query(key_lo, key_hi - 1, 0.0, 100.0)
        assert len(res) == 1000
